#!/usr/bin/env python
"""Run every example script as a subprocess and fail loudly.

The examples double as end-to-end documentation; CI runs this as a
named job (separate from the pytest wrapper in
``tests/test_examples.py``) so an example breaking is visible as
"examples smoke" going red, not a line inside the test job. Each
example honours ``REPRO_CACHE_DIR``, so passing a cache directory
exercises — and on repeat CI runs, warms from — the on-disk artifact
store::

    PYTHONPATH=src python scripts/examples_smoke.py [cache_dir]

Small input sizes keep the whole sweep under a minute on one core.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys
import time

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).resolve().parent.parent / "src"

# (script, argv, a line the output must contain)
EXAMPLES = [
    ("quickstart.py", [], "visit ratio: 0.50"),
    ("document_layout.py", ["4"], "first page"),
    ("ast_optimizer.py", [], "semantics preserved"),
    ("piecewise_functions.py", [], "integral ="),
    ("nbody_fmm.py", ["1000"], "total potential"),
]


def main(argv: list[str]) -> int:
    cache_dir = argv[1] if len(argv) > 1 else None
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    if cache_dir:
        env["REPRO_CACHE_DIR"] = cache_dir
    failures = 0
    for script, args, needle in EXAMPLES:
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script), *args],
            capture_output=True,
            text=True,
            env=env,
            timeout=600,
        )
        elapsed = time.perf_counter() - start
        ok = proc.returncode == 0 and needle in proc.stdout
        print(f"{'ok  ' if ok else 'FAIL'} {script:<28} {elapsed:6.1f}s")
        if not ok:
            failures += 1
            sys.stderr.write(proc.stdout[-2000:])
            sys.stderr.write(proc.stderr[-4000:])
    if failures:
        print(f"examples_smoke: {failures} failing", file=sys.stderr)
        return 1
    print("examples_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
