#!/usr/bin/env python
"""End-to-end smoke test of the tiered storage stack.

Four processes, one shared workload (``examples/fig2.grafter``):

1. **Process A** populates a store (``repro compile --cache-dir A``)
   and exports the emitted fused module as the byte-identity baseline.
2. **Process B** compiles *warm through A as a PeerTier*: its own
   empty store plus ``--peer A``, with ``--explain`` so every pass
   demonstrably re-runs unit by unit. The fusion row of the unit
   report must show **zero recomputation** (no misses, every plan
   served), and B's emitted module must be byte-identical to A's.
3. ``repro store gc`` drops A's fusion units (per-pass GC; other
   passes' units and the full results must survive).
4. **Process C** compiles against the gc'd store with ``--explain``:
   fusion recomputes (its units are gone), everything else stays warm,
   and the output is **still byte-identical** — GC can reclaim space
   but can never change what the compiler produces.

Exits non-zero on any failure. Run locally with::

    PYTHONPATH=src python scripts/storage_smoke.py [workdir]
"""

from __future__ import annotations

import os
import pathlib
import re
import subprocess
import sys
import tempfile

SOURCE = os.path.join("examples", "fig2.grafter")


def run(*argv: str) -> str:
    """One ``repro`` CLI invocation in a fresh process; returns stdout."""
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"FAIL: repro {' '.join(argv)} exited "
                         f"{proc.returncode}")
    return proc.stdout


def explain_row(output: str, pass_name: str) -> tuple[int, int, int]:
    """(hits, misses, peer_hits) from one unit-report row."""
    match = re.search(
        rf"^  {pass_name}\s+(\d+)\s+(\d+)\s+(\d+)\s+(\d+)\s+(\d+)\s*$",
        output,
        re.MULTILINE,
    )
    if not match:
        print(output)
        raise SystemExit(f"FAIL: no unit-report row for {pass_name!r}")
    _, hits, misses, _, peer = (int(g) for g in match.groups())
    return hits, misses, peer


def main(argv: list[str]) -> int:
    workdir = argv[1] if len(argv) > 1 else tempfile.mkdtemp(
        prefix="repro-storage-smoke-"
    )
    store_a = os.path.join(workdir, "store-a")
    store_b = os.path.join(workdir, "store-b")
    store_c = os.path.join(workdir, "store-c")
    module_a = os.path.join(workdir, "fused-a.py")
    module_b = os.path.join(workdir, "fused-b.py")
    module_c = os.path.join(workdir, "fused-c.py")

    # 1. process A populates its store and exports the baseline module
    run("compile", SOURCE, "--cache-dir", store_a,
        "--emit-python", module_a)
    print(f"storage_smoke: store A populated at {store_a}")

    # 2. process B: empty local store, A as a read-only peer. --explain
    # bypasses the whole-result cache so the per-pass reuse is visible.
    out_b = run("compile", SOURCE, "--cache-dir", store_b,
                "--peer", store_a, "--explain",
                "--emit-python", module_b)
    print(out_b)
    hits, misses, peer = explain_row(out_b, "fusion")
    if misses != 0 or hits == 0:
        raise SystemExit(
            f"FAIL: expected zero fusion recomputation through the "
            f"peer, got {hits} hits / {misses} misses"
        )
    if peer == 0:
        raise SystemExit("FAIL: no fusion unit was served by the peer")
    baseline = open(module_a).read()
    if open(module_b).read() != baseline:
        raise SystemExit("FAIL: peer-served compile is not "
                         "byte-identical to the baseline")
    print("storage_smoke: B compiled warm through the peer "
          f"(fusion {hits} hits, {peer} from peer, 0 recomputed)")

    # 3. per-pass GC on A: fusion units go, everything else stays
    print(run("store", "gc", "--cache-dir", store_a, "--pass", "fusion"),
          end="")
    remaining = [
        str(path) for path in pathlib.Path(store_a).rglob("*.pkl")
    ]
    if any("/units/fusion/" in path for path in remaining):
        raise SystemExit("FAIL: gc left fusion units behind")
    if not any("/units/emit/" in path for path in remaining):
        raise SystemExit("FAIL: gc was not pass-scoped (emit units gone)")

    # 4. process C compiles against the gc'd store: fusion recomputes,
    # output byte-identical
    out_c = run("compile", SOURCE, "--cache-dir", store_c,
                "--peer", store_a, "--explain",
                "--emit-python", module_c)
    print(out_c)
    hits, misses, _ = explain_row(out_c, "fusion")
    if misses == 0:
        raise SystemExit(
            "FAIL: fusion should have recomputed after gc dropped its "
            "units"
        )
    if open(module_c).read() != baseline:
        raise SystemExit("FAIL: post-GC compile is not byte-identical")
    print(f"storage_smoke: post-GC compile recomputed {misses} fusion "
          "units, output byte-identical")
    print("storage_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
