#!/usr/bin/env python
"""End-to-end smoke test of the observability layer.

In-process (no server): enables tracing, runs a traced compile +
batched execution of the render workload, and then asserts the three
things a trace consumer relies on:

1. the Chrome trace_event export is loadable JSON with one event per
   span;
2. the span tree is connected and covers every layer — the root,
   pipeline passes, storage-tier lookups, and executor dispatch;
3. the Prometheus ``/metrics`` text parses line by line and names the
   pipeline/storage/executor instrument families.

Exits non-zero on any failure. Run locally with::

    PYTHONPATH=src python scripts/trace_smoke.py
"""

from __future__ import annotations

import json
import sys
import tempfile


def fail(message: str) -> int:
    print(f"FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    from repro import obs
    from repro.service.api import WORKLOADS, TraversalService

    obs.enable()
    spec = WORKLOADS["render"]
    with TraversalService(workers=2, backend="thread") as service:
        with obs.span("trace_smoke", force=True) as root:
            trace_id = root.trace_id
            results = service.executor.run(
                [spec.make_request(trees=4, size=2)]
            )
    if not results[0].ok:
        return fail(f"execution failed: {results[0].error}")

    spans = obs.get_tracer().spans(trace_id)
    print(f"trace_smoke: trace {trace_id}, {len(spans)} spans")

    # 1. the Chrome export round-trips through a real file
    with tempfile.NamedTemporaryFile(
        "r", suffix=".json", delete=False
    ) as handle:
        obs.write_chrome_trace(spans, handle.name)
        document = json.load(open(handle.name))
    events = document.get("traceEvents", [])
    if len(events) != len(spans):
        return fail(
            f"chrome export has {len(events)} events for "
            f"{len(spans)} spans"
        )
    if not all(e["ph"] == "X" and "ts" in e and "dur" in e
               for e in events):
        return fail("chrome events are not complete ('X') events")
    print(f"trace_smoke: chrome export OK ({len(events)} events)")

    # 2. one connected tree covering pass -> tier -> exec
    ids = {record["span_id"] for record in spans}
    orphans = [
        record["name"] for record in spans
        if record["parent_id"] is not None
        and record["parent_id"] not in ids
    ]
    if orphans:
        return fail(f"unresolvable parents: {orphans}")
    names = {record["name"] for record in spans}
    for required in (
        "trace_smoke", "exec.wave", "exec.group", "exec.shard",
        "pipeline.compile", "pass.fusion", "pass.emit",
        "storage.result",
    ):
        if required not in names:
            return fail(
                f"span {required!r} missing from {sorted(names)}"
            )
    lookups = [r for r in spans if r["name"] == "storage.result"]
    if not all("hit" in r["attrs"] for r in lookups):
        return fail("storage spans lack hit/miss attributes")
    print(
        f"trace_smoke: span tree OK "
        f"({len(names)} distinct span names, "
        f"{len(lookups)} tier lookups)"
    )

    # 3. the metrics exposition parses and names the subsystems
    text = obs.REGISTRY.render_prometheus()
    samples = 0
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        float(value)
        samples += 1
    for family in (
        "repro_pass_seconds", "repro_storage_lookups_total",
        "repro_exec_trees_total",
    ):
        if f"# TYPE {family}" not in text:
            return fail(f"metric family {family!r} missing")
    print(f"trace_smoke: metrics OK ({samples} samples)")
    print("trace_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
