#!/usr/bin/env python
"""End-to-end smoke test of the tree-layout subsystem, cross-process.

One shared artifact store, fresh processes throughout (the CI job
caches the store directory, so consecutive CI runs also exercise the
warm cross-process path):

1. Compile ``examples/fig2.grafter`` under ``--layout object`` and
   ``--layout pooled`` into the *same* store. The pooled compile must
   be **cold** (a warm object store never serves a pooled run — the
   layout participates in every key) and the two emitted fused modules
   must differ (the pooled one carries its ``bind_fused`` closure).
2. Fresh processes recompile both layouts: each must **hit** its own
   entries and re-emit byte-identical modules.
3. Run a render batch under each layout (``repro exec --layout ...``)
   and, in two more fresh processes, execute one identical fused
   render forest per layout — their result summaries (snapshot hash +
   heap footprint) must match exactly.

Exits non-zero on any failure. Run locally with::

    PYTHONPATH=src python scripts/layout_smoke.py [workdir]
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import textwrap

SOURCE = os.path.join("examples", "fig2.grafter")

_PARITY_CHILD = textwrap.dedent(
    """
    import json, sys
    from repro.pipeline import CompileOptions
    from repro.pipeline import compile as pipeline_compile
    from repro.runtime import Heap
    from repro.service.batching import default_collect
    from repro.workloads.render import render_workload

    layout, cache_dir = sys.argv[1], sys.argv[2]
    workload = render_workload()
    result = pipeline_compile(
        workload,
        options=CompileOptions(cache_dir=cache_dir, layout=layout),
    )
    program = result.program
    heap = Heap(program)
    root = workload.build_tree(
        program, heap, workload.make_spec(pages=2)
    )
    result.compiled_fused.run_fused(
        heap, root, dict(workload.globals_map or {})
    )
    print(json.dumps(default_collect(program, heap, root)))
    """
)


def run(*argv: str) -> str:
    """One CLI/child invocation in a fresh process; returns stdout."""
    proc = subprocess.run(
        [sys.executable, *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    if proc.returncode != 0:
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(
            f"FAIL: {' '.join(argv[:4])} ... exited {proc.returncode}"
        )
    return proc.stdout


def repro(*argv: str) -> str:
    return run("-m", "repro", *argv)


def compile_layout(store: str, layout: str, module_path: str) -> str:
    return repro(
        "compile", SOURCE, "--cache-dir", store,
        "--layout", layout, "--emit-python", module_path,
    )


def main(argv: list[str]) -> int:
    workdir = argv[1] if len(argv) > 1 else tempfile.mkdtemp(
        prefix="repro-layout-smoke-"
    )
    store = os.path.join(workdir, "store")
    modules = {
        name: os.path.join(workdir, f"{name}.py")
        for name in (
            "object-cold", "pooled-cold", "object-warm", "pooled-warm",
        )
    }

    # 1. one store, both layouts; the pooled compile must not be
    # served by the object artifacts that are already in the store.
    # (A CI-cached store makes round one warm — that's the point of
    # the cache — so only the *relative* claim is asserted here: the
    # two layouts never alias.)
    out_object = compile_layout(store, "object", modules["object-cold"])
    out_pooled = compile_layout(store, "pooled", modules["pooled-cold"])
    print(out_object, end="")
    print(out_pooled, end="")
    object_module = open(modules["object-cold"]).read()
    pooled_module = open(modules["pooled-cold"]).read()
    if pooled_module == object_module:
        raise SystemExit(
            "FAIL: pooled compile emitted the object module — the "
            "layouts are aliasing in the store"
        )
    if "def bind_fused(" not in pooled_module:
        raise SystemExit("FAIL: pooled module has no bind_fused closure")
    if "def bind_fused(" in object_module:
        raise SystemExit("FAIL: object module grew a bind_fused closure")
    print("layout_smoke: object and pooled modules differ as required")

    # 2. fresh processes: each layout must hit its own entries and
    # reproduce its module byte for byte
    for layout in ("object", "pooled"):
        out = compile_layout(store, layout, modules[f"{layout}-warm"])
        if "cache hit" not in out:
            print(out)
            raise SystemExit(
                f"FAIL: warm {layout} recompile missed the store"
            )
        cold = open(modules[f"{layout}-cold"]).read()
        warm = open(modules[f"{layout}-warm"]).read()
        if warm != cold:
            raise SystemExit(
                f"FAIL: warm {layout} module is not byte-identical"
            )
    print("layout_smoke: both layouts recompiled warm, byte-identical")

    # 3. batched execution under each layout, then cross-process
    # result parity on one identical fused forest
    for layout in ("object", "pooled"):
        out = repro(
            "exec", "--workload", "render", "--trees", "4",
            "--size", "2", "--layout", layout,
            "--backend", "inline", "--workers", "1",
            "--cache-dir", store,
        )
        print(out, end="")
        if "4 trees executed" not in out:
            raise SystemExit(f"FAIL: {layout} exec did not complete")
    summaries = {
        layout: json.loads(run("-c", _PARITY_CHILD, layout, store))
        for layout in ("object", "pooled")
    }
    if summaries["object"] != summaries["pooled"]:
        raise SystemExit(
            f"FAIL: layouts disagree on the render forest: "
            f"{summaries['object']} vs {summaries['pooled']}"
        )
    print("layout_smoke: object and pooled runs agree "
          f"({summaries['object']['snapshot_sha'][:12]}..., "
          f"{summaries['object']['tree_bytes']} bytes)")
    print("layout_smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
