#!/usr/bin/env python
"""End-to-end smoke test of ``repro serve``.

Starts the HTTP traversal service as a subprocess (ephemeral port),
submits a render batch, polls the stats endpoint until the batch
completes, then shuts the server down over HTTP. Exits non-zero on any
failure. CI runs this with a cached ``--cache-dir`` so consecutive runs
exercise the warm-store path; run it locally with::

    PYTHONPATH=src python scripts/serve_smoke.py [cache_dir]
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.request

TREES = 8
PAGES = 2
TIMEOUT_SECONDS = 120


def call(base: str, path: str, payload=None):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json"},
        method="POST" if payload is not None else "GET",
    )
    with urllib.request.urlopen(request, timeout=30) as resp:
        return json.loads(resp.read())


def main(argv: list[str]) -> int:
    cache_dir = argv[1] if len(argv) > 1 else None
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", "0", "--workers", "2",
    ]
    if cache_dir:
        command += ["--cache-dir", cache_dir]
    server = subprocess.Popen(
        command, stdout=subprocess.PIPE, text=True
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"listening on http://[^:]+:(\d+)", line)
        if not match:
            print(f"FAIL: unexpected banner {line!r}", file=sys.stderr)
            return 1
        base = f"http://127.0.0.1:{match.group(1)}"
        print(f"serve_smoke: {base} (cache_dir={cache_dir})")

        assert call(base, "/healthz")["ok"]
        submitted = call(
            base, "/submit",
            {"workload": "render", "trees": TREES, "pages": PAGES},
        )
        request_id = submitted["request_id"]
        print(f"serve_smoke: submitted request {request_id}")

        deadline = time.monotonic() + TIMEOUT_SECONDS
        state = {"state": "pending"}
        while time.monotonic() < deadline and state["state"] == "pending":
            state = call(base, f"/result/{request_id}")
            time.sleep(0.1)
        if state.get("state") != "done" or state.get("trees") != TREES:
            print(f"FAIL: result state {state}", file=sys.stderr)
            return 1

        stats = call(base, "/stats")
        executor = stats["executor"]
        if executor["completed_requests"] < 1:
            print(f"FAIL: no completions in {executor}", file=sys.stderr)
            return 1
        if executor["completed_trees"] < TREES:
            print(f"FAIL: tree count {executor}", file=sys.stderr)
            return 1
        print(
            "serve_smoke: completed "
            f"{executor['completed_trees']} trees, p99 "
            f"{executor['tree_latency']['p99'] * 1e3:.2f} ms"
        )
        if cache_dir:
            store = stats.get("store", {})
            print(
                f"serve_smoke: store entries={store.get('entries')} "
                f"loads={store.get('loads')} spills={store.get('spills')}"
            )
            if store.get("entries", 0) < 1:
                print("FAIL: store is empty", file=sys.stderr)
                return 1

        call(base, "/shutdown", {})
        server.wait(timeout=30)
        if server.returncode != 0:
            print(f"FAIL: server exit {server.returncode}", file=sys.stderr)
            return 1
        print("serve_smoke: OK")
        return 0
    finally:
        if server.poll() is None:
            server.kill()
            server.wait()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
