"""CI smoke: the differential fuzzing campaign must find nothing.

Runs the committed seed corpus (``tests/fuzz/seeds.json``) plus a
200-case sweep of consecutive seeds. Each case executes six ways —
reference interpreter, fused, and unfused compiled modules, under both
the object-graph and forest-pool layouts — and diffs snapshot + final
globals + derived write-set against the interpreter/object baseline.

Any divergence fails the job and prints the minimized replayable repro
(also written to ``fuzz-repro-<seed>.json`` for download), which is the
artifact a fix should commit as a named regression test.

Usage: python scripts/fuzz_smoke.py [cases] [start_seed]
"""

import json
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.fuzz import (  # noqa: E402
    generate_case,
    minimize_case,
    run_case,
    save_repro,
)


def main() -> int:
    cases = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    start = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    corpus = json.loads(
        (
            pathlib.Path(__file__).resolve().parent.parent
            / "tests"
            / "fuzz"
            / "seeds.json"
        ).read_text()
    )
    seeds = list(dict.fromkeys(
        corpus["seeds"] + list(range(start, start + cases))
    ))
    print(
        f"fuzz smoke: {len(corpus['seeds'])} corpus seeds + "
        f"{cases} sweep seeds from {start} "
        f"({len(seeds)} unique cases, 6 executions each)"
    )
    began = time.time()
    failures = 0
    for count, seed in enumerate(seeds, 1):
        result = run_case(
            generate_case(seed, max_depth=corpus["max_depth"])
        )
        if not result.ok:
            failures += 1
            small = minimize_case(result.case)
            minimized = run_case(small)
            if minimized.ok:
                small, minimized = result.case, result
            print(minimized.report())
            out = f"fuzz-repro-{seed}.json"
            save_repro(small, out)
            print(f"minimized repro written to {out}")
        if count % 50 == 0:
            print(
                f"  {count}/{len(seeds)} cases, {failures} divergences, "
                f"{time.time() - began:.1f}s"
            )
    print(
        f"fuzz smoke: {len(seeds)} cases in {time.time() - began:.1f}s, "
        f"{failures} divergence(s)"
    )
    if failures:
        print("FAIL: executions diverged — commit the repro as a "
              "regression test alongside the fix")
        return 1
    print("OK: interpreter, fused, and unfused agree under both layouts")
    return 0


if __name__ == "__main__":
    sys.exit(main())
