"""Reference IR interpreter: the executable specification.

Nothing in this package compiles anything. A :class:`RefInterpreter`
walks :mod:`repro.ir` programs directly — dynamic dispatch, truncation,
topology mutation, globals, parameters, pure calls, entry schedules —
against either tree layout (object graph or ``ForestPool`` columns, via
:mod:`repro.interp.views`), producing the same snapshots, global
states, and write-sets the compiled backends produce. The compiled
fused/unfused modules are *measured against it* (:mod:`repro.fuzz`),
and the service uses it as the zero-compile-latency fallback tier
(``ExecRequest.mode == "interpret"``).
"""

from repro.interp.diff import (
    Divergence,
    ExecutionRecord,
    diff_report,
    first_divergence,
    first_snapshot_divergence,
    make_record,
    write_set,
)
from repro.interp.machine import RefInterpreter
from repro.interp.module import (
    InterpretedModule,
    interpret_workload,
    interpreted_module,
    resolve_program,
)
from repro.interp.views import (
    ObjectTreeView,
    PooledTreeView,
    view_for,
)

__all__ = [
    "Divergence",
    "ExecutionRecord",
    "InterpretedModule",
    "ObjectTreeView",
    "PooledTreeView",
    "RefInterpreter",
    "diff_report",
    "first_divergence",
    "first_snapshot_divergence",
    "interpret_workload",
    "interpreted_module",
    "make_record",
    "resolve_program",
    "view_for",
    "write_set",
]
