"""The interpreter packaged like a compiled module.

:class:`InterpretedModule` exposes the compiled backends' external
contract — ``run_entry(heap, root, globals_map) -> RuntimeContext`` —
so the executor, the session, and the service can treat "interpret" as
just another execution tier: zero compile latency (resolving a program
is a parse, not a pipeline run), identical observable results.

Observability: every run records an ``interp.run`` span (nested under
whatever request trace is active) and bumps the ``repro_interp_*``
registry metrics, keeping the fallback tier inside the same
tracing/metrics layer the compiled path uses.
"""

from __future__ import annotations

import time
from typing import Optional, Union

from repro import obs
from repro.codegen.python_backend import RuntimeContext
from repro.interp.machine import RefInterpreter
from repro.interp.views import view_for
from repro.ir.program import Program
from repro.ir.validate import LanguageMode
from repro.runtime.heap import Heap
from repro.runtime.node import Node

_INTERP_RUNS = obs.REGISTRY.counter(
    "repro_interp_runs_total",
    "reference-interpreter entry runs (one per tree)",
    labels=("layout",),
)
_INTERP_WRITES = obs.REGISTRY.counter(
    "repro_interp_writes_total",
    "tree/global writes performed by the reference interpreter",
)
_INTERP_SECONDS = obs.REGISTRY.histogram(
    "repro_interp_run_seconds",
    "per-tree reference-interpreter wall time",
)


def resolve_program(
    source: Union[str, Program],
    *,
    name: str = "program",
    pure_impls: Optional[dict] = None,
    mode: LanguageMode = LanguageMode.GRAFTER,
) -> Program:
    """The interpret tier's whole 'compile': parse (binding pure impls)
    when given source text, finalize when given a built program. No
    analysis, fusion, or emission runs — this is what makes the tier's
    first-request latency negligible."""
    if isinstance(source, Program):
        return source.finalize()
    from repro.frontend import parse_program

    with obs.span("interp.parse", name=name):
        return parse_program(
            source, name=name, pure_impls=pure_impls, mode=mode
        )


class InterpretedModule:
    """A drop-in execution module backed by :class:`RefInterpreter`.

    Mirrors ``CompiledProgram``/``CompiledPooledProgram`` externally:
    ``run_entry`` takes ``(heap, root, globals_map)`` and returns the
    :class:`RuntimeContext` holding the final globals; with
    ``layout='pooled'`` the tree round-trips through a
    :class:`~repro.layout.pool.ForestPool` (ingest → interpret over
    columns → write back), exactly like the pooled compiled modules.
    Always original (unfused) semantics — the spec both compiled forms
    must match.
    """

    def __init__(self, program: Program, layout: str = "object"):
        self.program = program.finalize()
        self.layout = layout
        # fail on unknown layout names at construction, not first run
        view_for(layout, program, None)
        self.last_stats: Optional[dict] = None

    def run_entry(
        self, heap: Heap, root: Node, globals_map=None
    ) -> RuntimeContext:
        context = RuntimeContext(self.program, heap, globals_map)
        start = time.perf_counter()
        with obs.span(
            "interp.run",
            program=self.program.name,
            layout=self.layout,
        ) as span:
            view = view_for(self.layout, self.program, heap)
            ref = view.ingest(root)
            machine = RefInterpreter(self.program, view, context.globals)
            machine.run_entry(ref)
            view.finish()
            span.set(
                node_visits=machine.node_visits,
                truncations=machine.truncations,
                writes=machine.writes,
            )
        seconds = time.perf_counter() - start
        _INTERP_RUNS.labels(layout=self.layout).inc()
        _INTERP_WRITES.inc(machine.writes)
        _INTERP_SECONDS.observe(seconds)
        self.last_stats = {
            "node_visits": machine.node_visits,
            "truncations": machine.truncations,
            "writes": machine.writes,
            "seconds": seconds,
        }
        return context


def interpreted_module(
    source: Union[str, Program],
    *,
    layout: str = "object",
    name: str = "program",
    pure_impls: Optional[dict] = None,
    mode: LanguageMode = LanguageMode.GRAFTER,
) -> InterpretedModule:
    """Resolve + wrap in one call (the ``repro exec --interp`` path)."""
    return InterpretedModule(
        resolve_program(
            source, name=name, pure_impls=pure_impls, mode=mode
        ),
        layout=layout,
    )


def interpret_workload(
    workload,
    *,
    layout: str = "object",
    spec=None,
    globals_map: Optional[dict] = None,
    **spec_kwargs,
):
    """Run one workload tree through the reference interpreter.

    Returns ``(program, heap, root, context)`` — the same handles a
    compiled run leaves behind, so callers can snapshot/collect
    identically. ``spec_kwargs`` feed the workload's ``make_spec``
    (``pages=2``, ``depth=4``, ...) when no explicit ``spec`` is given.
    """
    program = resolve_program(
        workload.source,
        name=workload.name,
        pure_impls=dict(workload.pure_impls or {}) or None,
    )
    heap = Heap(program)
    tree_spec = spec if spec is not None else workload.spec(**spec_kwargs)
    root = workload.build_tree(program, heap, tree_spec)
    module = InterpretedModule(program, layout=layout)
    merged_globals = dict(workload.globals_map or {})
    if globals_map:
        merged_globals.update(globals_map)
    context = module.run_entry(heap, root, merged_globals)
    return program, heap, root, context
