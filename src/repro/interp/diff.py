"""Execution records, write-set derivation, and readable divergence
reports.

Every executor in the repository — the reference interpreter, the
object-graph compiled modules, the pooled compiled modules — can be
summarized as an :class:`ExecutionRecord`: the final tree snapshot
(:meth:`repro.runtime.node.Node.snapshot` format), the final global
state, and the **write-set** — the sorted dotted paths of everything
the run changed, derived uniformly by diffing the before/after
snapshots and globals (compiled code has no native write tracking, so
deriving the set the same way for every executor is what makes it
comparable across them).

:func:`diff_report` is the shared divergence printer: instead of a bare
``assert snap_a == snap_b`` it names the first diverging node path,
field, or global and shows both values — used by the fuzzer
(:mod:`repro.fuzz`), the interpreter parity tests, and the layout
differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class Divergence:
    """One observed difference between two executions."""

    kind: str  # 'type' | 'field' | 'shape' | 'global' | 'write_set'
    path: str  # dotted node path, e.g. 'root.c0.c1'
    name: str  # field or global name ('' for whole-node differences)
    left: object
    right: object

    def describe(self, left_label: str = "left",
                 right_label: str = "right") -> str:
        where = f"{self.path}.{self.name}" if self.name else self.path
        return (
            f"first divergence at {where} ({self.kind}): "
            f"{left_label}={self.left!r} vs {right_label}={self.right!r}"
        )


@dataclass
class ExecutionRecord:
    """One execution's observable outcome."""

    label: str
    snapshot: dict
    globals: dict
    write_set: tuple[str, ...] = field(default_factory=tuple)


def make_record(
    label: str,
    before_snapshot: dict,
    after_snapshot: dict,
    globals_before: dict,
    globals_after: dict,
) -> ExecutionRecord:
    """Bundle a run's outcome, deriving its write-set from the
    before/after states."""
    return ExecutionRecord(
        label=label,
        snapshot=after_snapshot,
        globals=dict(globals_after),
        write_set=write_set(
            before_snapshot, after_snapshot, globals_before, globals_after
        ),
    )


# ===========================================================================
# snapshot walking
# ===========================================================================


def _is_node(value) -> bool:
    return isinstance(value, dict)


def _fields_of(snapshot: dict) -> list[str]:
    return sorted(name for name in snapshot if name != "__type__")


def first_snapshot_divergence(
    left: dict, right: dict, path: str = "root"
) -> Optional[Divergence]:
    """The first place two snapshots disagree, in deterministic
    (preorder, sorted-field) order — or ``None`` when identical.
    Iterative, like the snapshot builders, so deep trees never hit the
    recursion limit."""
    stack: list[tuple[dict, dict, str]] = [(left, right, path)]
    while stack:
        a, b, where = stack.pop()
        if a.get("__type__") != b.get("__type__"):
            return Divergence(
                "type", where, "__type__",
                a.get("__type__"), b.get("__type__"),
            )
        names = sorted(set(_fields_of(a)) | set(_fields_of(b)))
        children: list[tuple[dict, dict, str]] = []
        for name in names:
            va, vb = a.get(name), b.get(name)
            if _is_node(va) and _is_node(vb):
                children.append((va, vb, f"{where}.{name}"))
            elif _is_node(va) or _is_node(vb):
                return Divergence(
                    "shape", where, name,
                    _shape_of(va), _shape_of(vb),
                )
            elif va != vb:
                return Divergence("field", where, name, va, vb)
        stack.extend(reversed(children))
    return None


def _shape_of(value) -> str:
    if value is None:
        return "<null child>"
    if _is_node(value):
        return f"<{value.get('__type__')} subtree>"
    return repr(value)


def first_divergence(
    left: ExecutionRecord, right: ExecutionRecord
) -> Optional[Divergence]:
    """The first divergence between two execution records: snapshot
    first (node paths read best), then globals, then the derived
    write-sets (a redundancy check over the same data — it can only
    fire independently if recording itself went wrong)."""
    snap = first_snapshot_divergence(left.snapshot, right.snapshot)
    if snap is not None:
        return snap
    for name in sorted(set(left.globals) | set(right.globals)):
        if left.globals.get(name) != right.globals.get(name):
            return Divergence(
                "global", "globals", name,
                left.globals.get(name), right.globals.get(name),
            )
    if tuple(left.write_set) != tuple(right.write_set):
        only_left = sorted(set(left.write_set) - set(right.write_set))
        only_right = sorted(set(right.write_set) - set(left.write_set))
        return Divergence(
            "write_set", "write_set", "",
            f"extra={only_left}", f"extra={only_right}",
        )
    return None


def diff_report(
    left: ExecutionRecord, right: ExecutionRecord
) -> Optional[str]:
    """A readable one-stop divergence report, or ``None`` when the two
    executions agree on snapshot, globals, and write-set."""
    divergence = first_divergence(left, right)
    if divergence is None:
        return None
    lines = [
        f"{left.label} and {right.label} diverged:",
        "  " + divergence.describe(left.label, right.label),
        f"  {left.label} write-set ({len(left.write_set)}): "
        f"{_preview(left.write_set)}",
        f"  {right.label} write-set ({len(right.write_set)}): "
        f"{_preview(right.write_set)}",
    ]
    return "\n".join(lines)


def _preview(paths: tuple[str, ...], limit: int = 12) -> str:
    shown = ", ".join(paths[:limit])
    if len(paths) > limit:
        shown += f", ... +{len(paths) - limit} more"
    return shown or "(empty)"


# ===========================================================================
# write-set derivation
# ===========================================================================


def write_set(
    before: dict,
    after: dict,
    globals_before: Optional[dict] = None,
    globals_after: Optional[dict] = None,
) -> tuple[str, ...]:
    """Sorted dotted paths of everything that changed between two tree
    states (plus changed globals, reported by bare name).

    Topology changes report the whole slot: a replaced or newly
    allocated subtree contributes ``<path>.<field>`` (and nothing
    beneath it — its interior is new, not written), a type change
    contributes ``<path>.__type__``.
    """
    writes: set[str] = set()
    stack: list[tuple[dict, dict, str]] = [(before, after, "root")]
    while stack:
        a, b, where = stack.pop()
        if a.get("__type__") != b.get("__type__"):
            writes.add(f"{where}.__type__")
        for name in set(_fields_of(a)) | set(_fields_of(b)):
            va, vb = a.get(name), b.get(name)
            if _is_node(va) and _is_node(vb):
                stack.append((va, vb, f"{where}.{name}"))
            elif va != vb:
                writes.add(f"{where}.{name}")
    for name in set(globals_before or {}) | set(globals_after or {}):
        if (globals_before or {}).get(name) != (
            globals_after or {}
        ).get(name):
            writes.add(name)
    return tuple(sorted(writes))
