"""Layout views: one interpreter, two tree representations.

The reference interpreter (:mod:`repro.interp.machine`) never touches a
tree directly — every representation operation goes through a *view*,
so the same statement/expression semantics execute against the ``Node``
object graph and against :class:`~repro.layout.pool.ForestPool`
structure-of-arrays columns. A view's node *references* are opaque to
the interpreter: ``Node`` objects for the object graph, integer row
indices for the pool. The interpreter always knows statically (from the
resolved :class:`~repro.ir.access.AccessPath` field metadata) whether a
value it reads is a child reference or a data value, so the two
reference kinds never need runtime disambiguation.

Both views share the compiled backends' external contract: ``ingest`` a
root ``Node``, run, ``finish`` — after which the original ``Node``
objects hold the final tree state (the pooled view writes its columns
back, exactly like :class:`repro.codegen.pooled_backend._PooledRunMixin`).
"""

from __future__ import annotations

from repro.errors import RuntimeFailure
from repro.ir.program import Program
from repro.layout.pool import ForestPool
from repro.runtime.heap import Heap
from repro.runtime.node import Node

VIEW_NAMES = ("object", "pooled")


class ObjectTreeView:
    """The identity view: references are :class:`Node` objects."""

    name = "object"

    def __init__(self, program: Program, heap: Heap):
        self.program = program
        self.heap = heap

    def ingest(self, root: Node):
        return root

    def type_of(self, ref) -> str:
        return ref.type_name

    def get(self, ref, field_name: str):
        return ref.get(field_name)

    def set(self, ref, field_name: str, value) -> None:
        ref.set(field_name, value)

    def new(self, type_name: str):
        return Node.new(self.program, self.heap, type_name)

    def snapshot(self, ref) -> dict:
        return ref.snapshot(self.program)

    def finish(self) -> None:
        pass


class PooledTreeView:
    """References are integer row indices into a :class:`ForestPool`.

    ``ingest`` serializes the tree into a fresh pool (DFS preorder, the
    same ingest the pooled compiled modules perform); ``finish`` writes
    every row back into its backing ``Node`` so callers observe the run
    through the same object graph an object-layout run leaves behind.
    """

    name = "pooled"

    def __init__(self, program: Program, heap: Heap):
        self.program = program
        self.heap = heap
        self.pool: ForestPool | None = None

    def ingest(self, root: Node) -> int:
        self.pool = ForestPool.from_tree(self.program, root)
        return self.pool.roots[0]

    def type_of(self, ref: int) -> str:
        return self.pool.type_name(ref)

    def get(self, ref: int, field_name: str):
        column = self.pool.columns.get(field_name)
        if column is None:
            raise RuntimeFailure(
                f"pool has no column {field_name!r}"
            )
        return column[ref]

    def set(self, ref: int, field_name: str, value) -> None:
        column = self.pool.columns.get(field_name)
        if column is None:
            raise RuntimeFailure(
                f"pool has no column {field_name!r}"
            )
        column[ref] = value

    def new(self, type_name: str) -> int:
        return self.pool.new(type_name)

    def snapshot(self, ref: int) -> dict:
        return self.pool.snapshot(ref)

    def finish(self) -> None:
        if self.pool is not None:
            self.pool.write_back(self.heap)


def view_for(layout: str, program: Program, heap: Heap):
    """The view implementing one layout name ('object' | 'pooled')."""
    if layout == "object":
        return ObjectTreeView(program, heap)
    if layout == "pooled":
        return PooledTreeView(program, heap)
    raise RuntimeFailure(
        f"unknown tree layout {layout!r}; have {VIEW_NAMES}"
    )
