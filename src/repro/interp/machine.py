"""The reference IR interpreter: direct, layout-agnostic execution of
*original* (unfused) traversal semantics.

This is the repository's executable specification. It walks the
:mod:`repro.ir` statement and expression forms directly — dynamic
dispatch on each node's runtime type, truncation via ``return;``,
topology mutation (``new``/``delete``), globals, by-value parameters,
pure calls, and the entry schedule — with no cost metering, no fusion
awareness, and no generated code. Fusion is an optimization whose
correctness claim is observational equivalence with exactly this
execution, so the fused and unfused compiled backends are both measured
against it (see :mod:`repro.fuzz`).

It differs from :class:`repro.runtime.interpreter.Interpreter` (the
paper's cost-model stand-in) in three ways: it charges nothing, it runs
against any :mod:`repro.interp.views` layout view (object graph or
``ForestPool`` columns) rather than ``Node`` + ``Heap`` addresses, and
it counts its writes so the serving tier can report
``repro_interp_*`` metrics.

C++ value semantics match the other executors exactly: ``/`` truncates
toward zero, ``%`` takes the dividend's sign, ``&&``/``||``
short-circuit to bools, and object values copy on assignment and
parameter passing.
"""

from __future__ import annotations

from repro.errors import RuntimeFailure
from repro.ir.access import AccessPath
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, PureCall, UnaryOp
from repro.ir.program import Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)
from repro.runtime.interpreter import _cxx_div, _cxx_mod
from repro.runtime.values import copy_value, default_value


class _ReturnSignal(Exception):
    """Raised by ``return;`` — truncates the current traversal frame."""


_RETURN = _ReturnSignal()

# same non-termination backstop as the metering interpreter: traversal
# loops iterate over bounded local computations, so a huge trip count is
# an input-program bug, not a workload
_LOOP_LIMIT = 1_000_000


class _Frame:
    """One method activation: local values plus which names are tree
    aliases. Aliases are tracked explicitly (by ``_alias_`` definition)
    rather than sniffed with ``isinstance`` because pooled-view node
    references are plain ints — indistinguishable from data locals."""

    __slots__ = ("vars", "aliases")

    def __init__(self):
        self.vars: dict[str, object] = {}
        self.aliases: set[str] = set()


class RefInterpreter:
    """Execute a program's original entry schedule against a layout view.

    ``globals`` is shared with the caller (typically a
    :class:`repro.codegen.python_backend.RuntimeContext`'s dict) so the
    final global state is observable the same way compiled runs expose
    it. ``stats`` counts node visits, truncations, and writes (tree
    fields, topology slots, and globals) for the interp metrics.
    """

    def __init__(self, program: Program, view, globals_dict: dict):
        program.finalize()
        self.program = program
        self.view = view
        self.globals = globals_dict
        self.node_visits = 0
        self.truncations = 0
        self.writes = 0

    # ==================================================================
    # entry
    # ==================================================================

    def run_entry(self, root) -> None:
        """The original entry sequence: each call in ``main`` runs to
        completion over the whole tree before the next starts."""
        for call in self.program.entry:
            frame = _Frame()
            args = [self.eval_expr(a, root, frame) for a in call.args]
            self.call_method(root, call.method_name, args)

    def call_method(self, node, method_name: str, args: list) -> None:
        if node is None:
            raise RuntimeFailure(
                f"traversal {method_name!r} called on null"
            )
        method = self.program.resolve_method(
            self.view.type_of(node), method_name
        )
        self.node_visits += 1
        frame = _Frame()
        for param, value in zip(method.params, args):
            frame.vars[param.name] = copy_value(value)
        try:
            for stmt in method.body:
                self.exec_stmt(stmt, node, frame)
        except _ReturnSignal:
            self.truncations += 1

    # ==================================================================
    # statements
    # ==================================================================

    def exec_stmt(self, stmt: Stmt, this, frame: _Frame) -> None:
        if isinstance(stmt, Assign):
            value = self.eval_expr(stmt.value, this, frame)
            self.write_path(stmt.target, this, frame, value)
        elif isinstance(stmt, If):
            branch = (
                stmt.then_body
                if self.eval_expr(stmt.cond, this, frame)
                else stmt.else_body
            )
            for sub in branch:
                self.exec_stmt(sub, this, frame)
        elif isinstance(stmt, While):
            iterations = 0
            while self.eval_expr(stmt.cond, this, frame):
                for sub in stmt.body:
                    self.exec_stmt(sub, this, frame)
                iterations += 1
                if iterations > _LOOP_LIMIT:
                    raise RuntimeFailure(
                        f"while loop exceeded {_LOOP_LIMIT} iterations "
                        "(likely non-terminating)"
                    )
        elif isinstance(stmt, TraverseStmt):
            args = [self.eval_expr(a, this, frame) for a in stmt.args]
            if stmt.receiver.is_this:
                target = this
            else:
                target = self.view.get(this, stmt.receiver.child.name)
            self.call_method(target, stmt.method_name, args)
        elif isinstance(stmt, LocalDef):
            if stmt.init is not None:
                frame.vars[stmt.name] = copy_value(
                    self.eval_expr(stmt.init, this, frame)
                )
            else:
                frame.vars[stmt.name] = default_value(
                    self.program, stmt.type_name
                )
            frame.aliases.discard(stmt.name)
        elif isinstance(stmt, AliasDef):
            frame.vars[stmt.name] = self._walk_tree_node(
                stmt.target, this, frame
            )
            frame.aliases.add(stmt.name)
        elif isinstance(stmt, Return):
            raise _RETURN
        elif isinstance(stmt, New):
            parent, field_name = self._locate_child_slot(
                stmt.target, this, frame
            )
            self.writes += 1
            self.view.set(parent, field_name, self.view.new(stmt.type_name))
        elif isinstance(stmt, Delete):
            parent, field_name = self._locate_child_slot(
                stmt.target, this, frame
            )
            self.writes += 1
            self.view.set(parent, field_name, None)
        elif isinstance(stmt, PureStmt):
            self.eval_expr(stmt.call, this, frame)
        else:  # pragma: no cover - defensive
            raise RuntimeFailure(
                f"unknown statement {type(stmt).__name__}"
            )

    # ==================================================================
    # paths
    # ==================================================================

    def _read_child(self, node, field_name: str):
        child = self.view.get(node, field_name)
        if child is None:
            raise RuntimeFailure(
                f"null child {field_name!r} on "
                f"{self.view.type_of(node)}"
            )
        return child

    def _walk_tree_node(self, path: AccessPath, this, frame: _Frame):
        node = self._base_node(path, this, frame)
        for step in path.steps:
            node = self._read_child(node, step.field.name)
        return node

    def _locate_child_slot(
        self, path: AccessPath, this, frame: _Frame
    ) -> tuple[object, str]:
        node = self._base_node(path, this, frame)
        for step in path.steps[:-1]:
            node = self._read_child(node, step.field.name)
        return node, path.steps[-1].field.name

    def _base_node(self, path: AccessPath, this, frame: _Frame):
        if path.base == "this":
            return this
        if path.is_local:
            if path.base_name not in frame.aliases:
                raise RuntimeFailure(
                    f"local {path.base_name!r} is not a tree alias"
                )
            return frame.vars[path.base_name]
        raise RuntimeFailure(f"path {path} cannot start at a global")

    def read_path(self, path: AccessPath, this, frame: _Frame):
        if path.is_global:
            value = self.globals[path.base_name]
            for step in path.steps:
                value = value.get(step.field.name)
            return value
        if path.is_local and path.base_name not in frame.aliases:
            value = frame.vars[path.base_name]
            for step in path.steps:
                value = value.get(step.field.name)
            return value
        # on-tree: this-based or through an alias
        node = self._base_node(path, this, frame)
        index = 0
        steps = path.steps
        while index < len(steps) and steps[index].field.is_child:
            node = self._read_child(node, steps[index].field.name)
            index += 1
        remaining = steps[index:]
        if not remaining:
            return node
        value = self.view.get(node, remaining[0].field.name)
        for step in remaining[1:]:
            value = value.get(step.field.name)
        return value

    def write_path(
        self, path: AccessPath, this, frame: _Frame, value
    ) -> None:
        if path.is_global:
            self.writes += 1
            if not path.steps:
                self.globals[path.base_name] = copy_value(value)
                return
            container = self.globals[path.base_name]
            for step in path.steps[:-1]:
                container = container.get(step.field.name)
            container.set(path.steps[-1].field.name, value)
            return
        if path.is_local and path.base_name not in frame.aliases:
            if not path.steps:
                frame.vars[path.base_name] = copy_value(value)
                return
            container = frame.vars[path.base_name]
            for step in path.steps[:-1]:
                container = container.get(step.field.name)
            container.set(path.steps[-1].field.name, value)
            return
        node = self._base_node(path, this, frame)
        index = 0
        steps = path.steps
        while index < len(steps) and steps[index].field.is_child:
            if index == len(steps) - 1:
                raise RuntimeFailure(f"assignment to tree node {path}")
            node = self._read_child(node, steps[index].field.name)
            index += 1
        remaining = steps[index:]
        self.writes += 1
        if len(remaining) == 1:
            self.view.set(node, remaining[0].field.name, copy_value(value))
            return
        container = self.view.get(node, remaining[0].field.name)
        for step in remaining[1:-1]:
            container = container.get(step.field.name)
        container.set(remaining[-1].field.name, value)

    # ==================================================================
    # expressions
    # ==================================================================

    def eval_expr(self, expr: Expr, this, frame: _Frame):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, DataAccess):
            return self.read_path(expr.path, this, frame)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, this, frame)
        if isinstance(expr, UnaryOp):
            operand = self.eval_expr(expr.operand, this, frame)
            if expr.op == "-":
                return -operand
            return not operand
        if isinstance(expr, PureCall):
            func = self.program.pure_functions[expr.func_name]
            args = [
                copy_value(self.eval_expr(a, this, frame))
                for a in expr.args
            ]
            return func(*args)
        raise RuntimeFailure(
            f"unknown expression {type(expr).__name__}"
        )

    def _eval_binop(self, expr: BinOp, this, frame: _Frame):
        op = expr.op
        if op == "&&":
            return bool(
                self.eval_expr(expr.lhs, this, frame)
                and self.eval_expr(expr.rhs, this, frame)
            )
        if op == "||":
            return bool(
                self.eval_expr(expr.lhs, this, frame)
                or self.eval_expr(expr.rhs, this, frame)
            )
        lhs = self.eval_expr(expr.lhs, this, frame)
        rhs = self.eval_expr(expr.rhs, this, frame)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return _cxx_div(lhs, rhs)
        if op == "%":
            return _cxx_mod(lhs, rhs)
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        raise RuntimeFailure(f"unknown operator {op!r}")
