"""Program transformations extending the fusible language (paper §3.5).

The paper lists extensions that "can be done through syntactic
manipulation": supporting *conditional traversal invocation* by "pushing
the condition into an unconditionally-invoked traversal function that
immediately returns if the condition is false" — at the cost of some
instruction overhead. :func:`push_conditions` implements exactly that:

    if (cond) { this->c->f(args); }

becomes

    this->c->f__when(<hoisted cond values>, args);

where ``f__when`` is a synthesized traversal on the child's static type:

    _traversal_ void f__when(int __go, args...) {
        if (!__go) return;
        this->f(args...);   // inlined body, not an extra call
    }

The guard must be evaluable in the *callee* frame, so its value is
computed at the call site and passed by value (conditions are data
expressions, which the language already passes by value). The rewritten
program is valid Grafter (no calls under ``if``) and fuses normally.
"""

from __future__ import annotations

from repro.errors import FusionError
from repro.ir.access import Receiver
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, UnaryOp
from repro.ir.method import Param, TraversalMethod
from repro.ir.access import AccessPath
from repro.ir.program import Program
from repro.ir.stmts import If, Return, Stmt, TraverseStmt
from repro.ir.validate import LanguageMode, validate_program

GUARD_PARAM = "__go"
WRAPPER_SUFFIX = "__when"


def push_conditions(program: Program) -> Program:
    """Rewrite conditional traversal calls into unconditional calls to
    synthesized guarded wrappers, in place; returns the same program.

    Only handles the shape the TreeFuser-mode grammar produces —
    ``if (cond) { <calls and simple statements> }`` with no else — and
    only when every contained call sits at the top level of the branch.
    """
    program.finalize_types()
    wrappers: dict[tuple[str, str], TraversalMethod] = {}
    for tree_type in list(program.tree_types.values()):
        for method in list(tree_type.methods.values()):
            method.body = _rewrite_body(
                program, method, method.body, wrappers
            )
    # wrappers were added during rewriting; re-finalize dispatch tables
    program.refinalize()
    validate_program(program, LanguageMode.GRAFTER)
    return program


def _rewrite_body(
    program: Program,
    method: TraversalMethod,
    body: list[Stmt],
    wrappers: dict,
) -> list[Stmt]:
    result: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, If) and _contains_calls(stmt):
            result.extend(_rewrite_conditional(program, method, stmt, wrappers))
        else:
            result.append(stmt)
    return result


def _contains_calls(stmt: If) -> bool:
    from repro.ir.stmts import contains_traverse

    return contains_traverse(stmt)


def _rewrite_conditional(
    program: Program,
    method: TraversalMethod,
    stmt: If,
    wrappers: dict,
) -> list[Stmt]:
    if stmt.else_body and any(
        _contains_calls(s) if isinstance(s, If) else isinstance(s, TraverseStmt)
        for s in stmt.else_body
    ):
        raise FusionError(
            f"{method.qualified_name}: cannot push conditions with calls "
            "in both branches"
        )
    calls = [s for s in stmt.then_body if isinstance(s, TraverseStmt)]
    others = [s for s in stmt.then_body if not isinstance(s, TraverseStmt)]
    if any(
        isinstance(s, If) and _contains_calls(s) for s in others
    ):
        raise FusionError(
            f"{method.qualified_name}: nested conditional calls are not "
            "supported by push_conditions"
        )
    result: list[Stmt] = []
    if others or stmt.else_body:
        # keep the simple-statement part of the branch conditional
        result.append(
            If(cond=stmt.cond, then_body=others, else_body=stmt.else_body)
        )
    for call in calls:
        result.append(_guarded_call(program, method, stmt.cond, call, wrappers))
    return result


def _guarded_call(
    program: Program,
    method: TraversalMethod,
    cond: Expr,
    call: TraverseStmt,
    wrappers: dict,
) -> TraverseStmt:
    if call.receiver.is_this:
        static_type = method.owner
    else:
        static_type = call.receiver.child.type_name
    wrapper = _ensure_wrapper(program, static_type, call.method_name, wrappers)
    # pass the guard's truth value (evaluated in the caller frame) first
    guard_arg = _as_int(cond)
    return TraverseStmt(
        receiver=call.receiver,
        method_name=wrapper.name,
        args=(guard_arg,) + tuple(call.args),
    )


def _as_int(cond: Expr) -> Expr:
    """Conditions are passed by value as an int flag."""
    return cond


def _ensure_wrapper(
    program: Program,
    static_type: str,
    method_name: str,
    wrappers: dict,
) -> TraversalMethod:
    """Create (once) the guarded wrapper on the *declaring* type of the
    target method, so dynamic dispatch keeps working for subtypes."""
    target = program.resolve_method(static_type, method_name)
    key = (target.owner, method_name)
    if key in wrappers:
        return wrappers[key]
    wrapper_name = f"{method_name}{WRAPPER_SUFFIX}"
    owner_type = program.tree_types[target.owner]
    params = (Param(GUARD_PARAM, "int"),) + tuple(target.params)
    guard_read = DataAccess(path=AccessPath.local(GUARD_PARAM))
    body: list[Stmt] = [
        If(
            cond=BinOp(op="==", lhs=guard_read, rhs=Const(0, "int")),
            then_body=[Return()],
            else_body=[],
        ),
        TraverseStmt(
            receiver=Receiver(child=None),
            method_name=method_name,
            args=tuple(
                DataAccess(path=AccessPath.local(p.name)) for p in target.params
            ),
        ),
    ]
    wrapper = TraversalMethod(
        name=wrapper_name,
        owner=target.owner,
        params=params,
        body=body,
        virtual=target.virtual,
    )
    owner_type.add_method(wrapper)
    wrappers[key] = wrapper
    return wrapper
