"""Dependence-respecting scheduling of the contracted graph.

After grouping, the fused function body is a topological order of the
contracted dependence graph (paper §3.4: "A topological order of the
nodes in the graph G is then obtained"). We use Kahn's algorithm with a
min-heap keyed on original program position, so:

* the order is deterministic,
* independent statements keep their source order (least surprise), and
* grouped calls come out adjacent by construction (they are one
  contracted vertex).
"""

from __future__ import annotations

import heapq

from repro.analysis.dependence import DependenceGraph
from repro.fusion.grouping import Group


def schedule(
    graph: DependenceGraph,
    groups: list[Group],
    assignment: dict[int, int],
) -> list[list[int]]:
    """Return the fused body order as a list of *units*: each unit is a
    list of vertex indices — singleton for plain statements, the full
    member list for a contracted group."""
    group_members: dict[int, list[int]] = {
        assignment[g.vertex_indices[0]]: g.vertex_indices for g in groups
    }
    # contracted nodes and edges
    nodes = sorted(set(assignment.values()))
    successors: dict[int, set[int]] = {node: set() for node in nodes}
    indegree: dict[int, int] = {node: 0 for node in nodes}
    for src, dsts in graph.succ.items():
        src_rep = assignment[src]
        for dst in dsts:
            dst_rep = assignment[dst]
            if src_rep != dst_rep and dst_rep not in successors[src_rep]:
                successors[src_rep].add(dst_rep)
                indegree[dst_rep] += 1
    ready = [node for node in nodes if indegree[node] == 0]
    heapq.heapify(ready)
    order: list[list[int]] = []
    while ready:
        node = heapq.heappop(ready)
        members = group_members.get(node, [node])
        order.append(sorted(members))
        for nxt in successors[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                heapq.heappush(ready, nxt)
    scheduled = sum(len(unit) for unit in order)
    if scheduled != len(graph.vertices):  # pragma: no cover - invariant
        raise AssertionError(
            f"scheduling dropped vertices: {scheduled}/{len(graph.vertices)}"
        )
    return order
