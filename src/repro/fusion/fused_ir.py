"""The synthesized (fused) program representation.

Mirrors the paper's generated code (Fig. 6):

* a :class:`FusedUnit` is one ``_fuse__F...`` function: it carries several
  *member* traversals executing together on one node;
* :class:`GuardedStmt` is a statement of member *i*, executed only while
  bit *i* of ``active_flags`` is set (a member's ``return`` clears its
  bit — traversals truncate independently);
* :class:`GroupCall` is a group of member calls on the same receiver,
  lowered to one virtual ``__stub`` dispatch: the runtime reads the
  child's dynamic type, picks the fused unit for the *concrete* member
  sequence (type-specific fusion), packs ``call_flags`` from the members'
  active bits, and performs a single fused invocation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ir.access import Receiver
from repro.ir.exprs import Expr
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import Stmt


@dataclass
class GuardedStmt:
    """Execute ``stmt`` in member ``member``'s frame if its bit is set."""

    member: int
    stmt: Stmt

    def __str__(self) -> str:
        return f"[m{self.member}] {self.stmt}"


@dataclass
class MemberCall:
    """One original traversal call bundled into a group.

    ``guard`` is only used by the TreeFuser baseline mode, whose language
    allows conditionally-invoked traversals: the member's call fires only
    if the guard (evaluated in the member's frame) is true.
    """

    member: int
    method_name: str
    args: tuple[Expr, ...] = ()
    guard: Optional[Expr] = None


@dataclass
class GroupCall:
    """A fused call: members' traversals continue together on a child."""

    receiver: Receiver
    calls: list[MemberCall]
    dispatch: dict[str, "FusedUnit"] = field(default_factory=dict)

    def __str__(self) -> str:
        names = "+".join(f"m{c.member}:{c.method_name}" for c in self.calls)
        return f"{self.receiver}->__stub[{names}]"


BodyItem = GuardedStmt | GroupCall


@dataclass
class FusedUnit:
    """One synthesized fused traversal function."""

    label: str
    key: tuple[str, ...]  # qualified member names (the sequence label L)
    members: list[TraversalMethod]
    this_type: str  # common supertype of member owners (paper §3.4)
    body: list[BodyItem] = field(default_factory=list)

    @property
    def width(self) -> int:
        """Number of member traversals (bits in active_flags)."""
        return len(self.members)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FusedUnit({self.label}, width={self.width})"


@dataclass
class EntryGroup:
    """One chunk of the entry sequence, dispatched on the root's type."""

    method_names: list[str]
    args_per_member: list[tuple[Expr, ...]]
    dispatch: dict[str, FusedUnit] = field(default_factory=dict)


@dataclass
class FusedProgram:
    """The output of fusion: entry dispatch plus all reachable units."""

    program: Program
    root_type: str
    entry_groups: list[EntryGroup]
    units: dict[tuple[str, ...], FusedUnit]

    @property
    def unit_count(self) -> int:
        return len(self.units)

    def stats(self) -> dict:
        """Static synthesis statistics (useful in reports)."""
        widths = [unit.width for unit in self.units.values()]
        return {
            "units": len(widths),
            "max_width": max(widths, default=0),
            "group_calls": sum(
                1
                for unit in self.units.values()
                for item in unit.body
                if isinstance(item, GroupCall)
            ),
        }


def print_fused_unit(unit: FusedUnit) -> str:
    """Human-readable rendering of a fused unit (the reproduction's
    analogue of the paper's Fig. 6 output)."""
    lines = [f"void {unit.label}({unit.this_type}* _r, int active_flags) {{"]
    for item in unit.body:
        if isinstance(item, GuardedStmt):
            lines.append(f"  if (active_flags & {1 << item.member:#b}) "
                         f"{{ {item.stmt} }}")
        else:
            mask = 0
            for call in item.calls:
                mask |= 1 << call.member
            targets = ", ".join(
                f"{t}→{u.label}" for t, u in sorted(item.dispatch.items())
            )
            lines.append(
                f"  if (active_flags & {mask:#b}) {{ {item} }}  // {targets}"
            )
    lines.append("}")
    return "\n".join(lines)


def print_fused_program(fused: FusedProgram) -> str:
    chunks = []
    for key in sorted(fused.units):
        chunks.append(print_fused_unit(fused.units[key]))
    return "\n\n".join(chunks)
