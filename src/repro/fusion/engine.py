"""The fusion driver (paper §3.3).

``fuse_program`` turns a validated program into a :class:`FusedProgram`:

1. The entry sequence (consecutive traversal calls on the root) seeds the
   process, chunked to the ``max_sequence`` cutoff.
2. For every possible dynamic type of the receiver, the virtual calls are
   resolved to a *concrete* sequence L (type-specific fusion).
3. ``fuse_sequence`` builds the fused unit for L: dependence graph →
   greedy grouping → topological schedule → guarded body. Groups become
   fused calls whose per-type dispatch recursively demands more fused
   units; a unit is registered under its label *before* its body is
   generated, so self-referential sequences become recursive calls
   (paper: "Grafter just inserts a recursive call to that function").
4. Memoization on the sequence label means each unit is synthesized once,
   and the cutoffs keep the label space finite, so fusion terminates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.call_automata import AnalysisContext
from repro.analysis.dependence import Vertex, build_dependence_graph
from repro.errors import FusionError
from repro.fusion.fused_ir import (
    EntryGroup,
    FusedProgram,
    FusedUnit,
    GroupCall,
    GuardedStmt,
    MemberCall,
)
from repro.fusion.grouping import (
    FusionLimits,
    conditional_call,
    greedy_group,
    group_key,
)
from repro.fusion.scheduling import schedule
from repro.ir.exprs import BinOp
from repro.ir.method import TraversalMethod
from repro.ir.program import Program


class FusionEngine:
    def __init__(
        self,
        program: Program,
        limits: FusionLimits | None = None,
    ):
        program.finalize()
        self.program = program
        self.limits = limits if limits is not None else FusionLimits()
        self.ctx = AnalysisContext(program)
        self.units: dict[tuple[str, ...], FusedUnit] = {}

    # ------------------------------------------------------------------

    def fuse_program(self) -> FusedProgram:
        if self.program.root_type_name is None or not self.program.entry:
            raise FusionError("program has no entry sequence to fuse")
        root_type = self.program.root_type_name
        entry_groups: list[EntryGroup] = []
        calls = self.program.entry
        chunk_size = self.limits.max_sequence
        for start in range(0, len(calls), chunk_size):
            chunk = calls[start : start + chunk_size]
            group = EntryGroup(
                method_names=[c.method_name for c in chunk],
                args_per_member=[c.args for c in chunk],
            )
            for type_name in self.program.concrete_subtypes(root_type):
                members = tuple(
                    self.program.resolve_method(type_name, c.method_name)
                    for c in chunk
                )
                group.dispatch[type_name] = self.fuse_sequence(members)
            entry_groups.append(group)
        return FusedProgram(
            program=self.program,
            root_type=root_type,
            entry_groups=entry_groups,
            units=self.units,
        )

    # ------------------------------------------------------------------

    def fuse_sequence(self, members: tuple[TraversalMethod, ...]) -> FusedUnit:
        key = tuple(m.qualified_name for m in members)
        existing = self.units.get(key)
        if existing is not None:
            return existing
        unit = FusedUnit(
            label=_label_for(key),
            key=key,
            members=list(members),
            this_type=self.program.common_supertype(m.owner for m in members),
        )
        # register before synthesizing the body: a group reaching the same
        # sequence becomes a recursive call to this very unit
        self.units[key] = unit
        graph = build_dependence_graph(self.ctx, list(members))
        groups, assignment = greedy_group(graph, self.limits)
        order = schedule(graph, groups, assignment)
        vertex_by_index = {v.index: v for v in graph.vertices}
        body = []
        for unit_indices in order:
            vertices = [vertex_by_index[i] for i in unit_indices]
            if group_key(vertices[0]) is None:
                body.append(GuardedStmt(vertices[0].member, vertices[0].stmt))
            else:
                body.append(self._make_group_call(unit, vertices))
        unit.body = body
        return unit

    # ------------------------------------------------------------------

    def _make_group_call(
        self, unit: FusedUnit, vertices: list[Vertex]
    ) -> GroupCall:
        """Build the fused call for one group.

        Conditional call blocks (TreeFuser mode) of the same member that
        invoke the same method with the same arguments under *mutually
        exclusive* tag guards collapse into one member slot with the
        guards OR-ed — the real TreeFuser's "one function per traversal"
        structure, which keeps the fused sequence from amplifying across
        type variants. Non-exclusive guards fall back to separate slots,
        which is always sound (each slot still fires per its own guard).
        """
        slots: dict[tuple, MemberCall] = {}
        receiver = None
        for vertex in vertices:
            if vertex.call is not None:
                call_stmt = vertex.call
                guard = None
            else:
                conditional = conditional_call(vertex)
                assert conditional is not None
                guard, call_stmt = conditional
            receiver = call_stmt.receiver
            member_call = MemberCall(
                member=vertex.member,
                method_name=call_stmt.method_name,
                args=call_stmt.args,
                guard=guard,
            )
            if guard is None:
                slots[("plain", vertex.index)] = member_call
                continue
            key = (
                "cond",
                vertex.member,
                call_stmt.method_name,
                tuple(str(a) for a in call_stmt.args),
            )
            existing = slots.get(key)
            if existing is None:
                slots[key] = member_call
            elif _guards_exclusive(existing.guard, guard):
                existing.guard = BinOp(op="||", lhs=existing.guard, rhs=guard)
            else:
                slots[key + (len(slots),)] = member_call
        calls = list(slots.values())
        assert receiver is not None
        if receiver.is_this:
            static_type = unit.this_type
        else:
            static_type = receiver.child.type_name
        group = GroupCall(receiver=receiver, calls=calls)
        for type_name in self.program.concrete_subtypes(static_type):
            target = tuple(
                self.program.resolve_method(type_name, call.method_name)
                for call in calls
            )
            group.dispatch[type_name] = self.fuse_sequence(target)
        return group


def _guards_exclusive(a, b) -> bool:
    """Provably mutually exclusive guards: both are disjunctions of
    equality tests of the *same* data path against constants, with
    disjoint constant sets — the exact shape the TreeFuser lowering
    produces for tag dispatch."""
    atoms_a = _tag_test_atoms(a)
    atoms_b = _tag_test_atoms(b)
    if atoms_a is None or atoms_b is None:
        return False
    path_a, consts_a = atoms_a
    path_b, consts_b = atoms_b
    return path_a == path_b and not (consts_a & consts_b)


def _tag_test_atoms(expr):
    """Decompose ``p == k1 || p == k2 || ...`` into (path text, {k...})."""
    from repro.ir.exprs import Const, DataAccess

    if isinstance(expr, BinOp) and expr.op == "==":
        if isinstance(expr.lhs, DataAccess) and isinstance(expr.rhs, Const):
            return str(expr.lhs.path), {expr.rhs.value}
        return None
    if isinstance(expr, BinOp) and expr.op == "||":
        left = _tag_test_atoms(expr.lhs)
        right = _tag_test_atoms(expr.rhs)
        if left is None or right is None or left[0] != right[0]:
            return None
        return left[0], left[1] | right[1]
    return None


def _label_for(key: tuple[str, ...]) -> str:
    """A readable unique label like ``_fuse__TextBox_computeWidth__...``."""
    short = "__".join(name.replace("::", "_") for name in key)
    if len(short) > 120:
        import hashlib

        digest = hashlib.sha1(short.encode()).hexdigest()[:10]
        short = f"{short[:100]}__{digest}"
    return f"_fuse__{short}"


@dataclass
class FusionReport:
    """Synthesis summary used by benchmarks and docs."""

    unit_count: int
    max_width: int
    group_count: int


def fuse_program(
    program: Program, limits: FusionLimits | None = None
) -> FusedProgram:
    """One-call convenience wrapper: program -> fused program."""
    return FusionEngine(program, limits=limits).fuse_program()
