"""The fusion driver (paper §3.3) — compatibility shim.

The monolithic engine that used to live here was decomposed into the
staged pipeline passes of :mod:`repro.pipeline.stages`:

* sequence discovery, greedy grouping and guard merging →
  :class:`repro.pipeline.stages.FusionPlanner` (the *fusion* pass),
* topological body ordering and unit assembly →
  :func:`repro.pipeline.stages.synthesize_fused` (the *schedule* pass).

:class:`FusionEngine` and :func:`fuse_program` remain as thin wrappers
with the original semantics (uncached, deterministic) so existing
callers and tests keep working; new code should use
``repro.pipeline.compile()``, which adds per-pass instrumentation and
the content-addressed compile cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.call_automata import AnalysisContext
from repro.fusion.fused_ir import FusedProgram, FusedUnit
from repro.fusion.grouping import FusionLimits
from repro.ir.method import TraversalMethod
from repro.ir.program import Program


def _stages():
    # lazy: repro.pipeline.stages imports repro.fusion submodules, so a
    # module-scope import here would cycle through the package __init__
    from repro.pipeline import stages

    return stages


class FusionEngine:
    """Thin shim over the pipeline's fusion + schedule passes.

    Like the old engine, one instance memoizes across calls: the planner
    and the ``units`` dict persist for the engine's lifetime, so a
    sequence fused once keeps its FusedUnit object identity in later
    ``fuse_sequence``/``fuse_program`` calls.
    """

    def __init__(
        self,
        program: Program,
        limits: FusionLimits | None = None,
    ):
        program.finalize()
        self.program = program
        self.limits = limits if limits is not None else FusionLimits()
        self.ctx = AnalysisContext(program)
        self.units: dict[tuple[str, ...], FusedUnit] = {}
        self._planner = None

    def _planner_for_life(self):
        if self._planner is None:
            self._planner = _stages().FusionPlanner(
                self.program, self.limits, self.ctx
            )
        return self._planner

    def fuse_program(self) -> FusedProgram:
        stages = _stages()
        planner = self._planner_for_life()
        entry_plans = planner.plan_entry()
        return stages.synthesize_fused(
            self.program, planner, entry_plans, units=self.units
        )

    def fuse_sequence(self, members: tuple[TraversalMethod, ...]) -> FusedUnit:
        """Fuse one concrete member sequence (and everything it reaches).

        Synthesized units accumulate in ``self.units`` across calls,
        exactly like the old engine's memoization.
        """
        stages = _stages()
        planner = self._planner_for_life()
        key = planner.plan_sequence(tuple(members))
        stages.synthesize_fused(self.program, planner, [], units=self.units)
        return self.units[key]


def _guards_exclusive(a, b) -> bool:
    return _stages()._guards_exclusive(a, b)


def _tag_test_atoms(expr):
    return _stages()._tag_test_atoms(expr)


def _label_for(key: tuple[str, ...]) -> str:
    return _stages()._label_for(key)


@dataclass
class FusionReport:
    """Synthesis summary used by benchmarks and docs."""

    unit_count: int
    max_width: int
    group_count: int


def fuse_program(
    program: Program, limits: FusionLimits | None = None
) -> FusedProgram:
    """One-call convenience wrapper: program -> fused program (uncached;
    ``repro.pipeline.compile`` adds caching and instrumentation)."""
    stages = _stages()
    return stages.plan_and_synthesize(program, limits)
