"""Traversal fusion (paper §3.3–3.4).

* :mod:`repro.fusion.fused_ir` — the synthesized program form: fused
  units (the paper's ``_fuse__F...`` functions) with active-flag-guarded
  statements and grouped, dispatch-table calls (the ``__stub`` methods).
* :mod:`repro.fusion.grouping` — greedy grouping of call vertices on the
  same receiver, with the contraction-acyclicity safety check.
* :mod:`repro.fusion.scheduling` — dependence-respecting topological
  ordering of the (contracted) dependence graph.
* :mod:`repro.fusion.engine` — the fixpoint driver: outline/inline,
  reorder, recurse on new sequences, memoize by sequence label, stop at
  the termination cutoffs.
"""

from repro.fusion.fused_ir import (
    EntryGroup,
    FusedProgram,
    FusedUnit,
    GroupCall,
    GuardedStmt,
    MemberCall,
)
from repro.fusion.engine import FusionEngine, FusionLimits, fuse_program

__all__ = [
    "EntryGroup",
    "FusedProgram",
    "FusedUnit",
    "GroupCall",
    "GuardedStmt",
    "MemberCall",
    "FusionEngine",
    "FusionLimits",
    "fuse_program",
]
