"""Greedy grouping of call vertices (paper §3.3 step 4 and §4).

A *group* is a set of call vertices on the same receiver that will be
scheduled adjacently and replaced by one fused call. Grouping two calls is
safe exactly when the dependence graph, with the group contracted to a
single vertex, stays acyclic — that is the necessary and sufficient
condition for a topological order in which the group members are adjacent.

The paper uses a greedy strategy: pick an arbitrary ungrouped call, then
accumulate other ungrouped calls while safe; we iterate in program order
for determinism. Two cutoffs bound the process (§4): the maximum fused
sequence length and the maximum number of occurrences of one static
function in a group.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dependence import DependenceGraph, Vertex
from repro.automata import intersects
from repro.ir.stmts import If, TraverseStmt


@dataclass(frozen=True)
class FusionLimits:
    """Termination cutoffs (paper §4). The paper gives no defaults; these
    exceed anything the case studies need while keeping synthesis finite."""

    max_sequence: int = 12
    max_repeat: int = 4


@dataclass
class Group:
    """Call vertices (indices into the dependence graph) fused together,
    in program order."""

    receiver_key: str
    vertex_indices: list[int]


def group_key(vertex: Vertex) -> str | None:
    """Vertices may group together iff they share this key.

    Plain traverse statements group by receiver. In TreeFuser mode, an
    ``if`` containing exactly one traverse call is a *conditional call
    block* (guarded recursion); blocks on the same receiver may group,
    with the guards carried into the fused call's member slots (mutually
    exclusive tag guards for the same member and method then merge into
    one slot — see engine synthesis). The dependence-graph contraction
    check makes any grouping safe regardless of the guards.
    """
    if vertex.call is not None:
        return f"call|{vertex.call.receiver.key}"
    conditional = conditional_call(vertex)
    if conditional is not None:
        _, call = conditional
        return f"cond|{call.receiver.key}"
    return None


def conditional_call(vertex: Vertex):
    """If the vertex is an ``if`` wrapping exactly one traverse call (and
    nothing else), return (guard expr, call); else None."""
    stmt = vertex.stmt
    if isinstance(stmt, If) and not stmt.else_body:
        if len(stmt.then_body) == 1 and isinstance(stmt.then_body[0], TraverseStmt):
            return stmt.cond, stmt.then_body[0]
    return None


def _argument_hazard(earlier: Vertex, candidate: Vertex) -> bool:
    """True when grouping would evaluate *candidate*'s call site too
    early.

    A fused call site evaluates every member's argument and guard
    expressions (the vertex's *site* accesses) before any member's
    callee runs; unfused execution evaluates a later call's site only
    after the earlier calls — and everything their subtree traversals
    wrote — completed. Hoisting is therefore unsound exactly when an
    earlier member's writes (its own or its callees', e.g. a global
    assignment deep in the traversal) may touch what the candidate's
    site reads (e.g. a global passed as an argument: ``this->c->f(G0)``
    after a call whose subtree writes ``G0`` — the seed-765 divergence).
    """
    site = candidate.site_summary
    if site is None:  # pragma: no cover - graphs always attach sites
        return True
    return intersects(earlier.summary.env_writes, site.env_reads) or intersects(
        earlier.summary.tree_writes, site.tree_reads
    )


def _contracted_has_cycle(
    graph: DependenceGraph, assignment: dict[int, int]
) -> bool:
    """Cycle check on the graph with vertices merged per *assignment*
    (vertex index -> group id; ungrouped vertices map to themselves)."""
    successors: dict[int, set[int]] = {}
    for src, dsts in graph.succ.items():
        src_group = assignment[src]
        for dst in dsts:
            dst_group = assignment[dst]
            if src_group != dst_group:
                successors.setdefault(src_group, set()).add(dst_group)
    WHITE, GRAY, BLACK = 0, 1, 2
    color: dict[int, int] = {}

    def visit(node: int) -> bool:
        color[node] = GRAY
        for nxt in successors.get(node, ()):
            state = color.get(nxt, WHITE)
            if state == GRAY:
                return True
            if state == WHITE and visit(nxt):
                return True
        color[node] = BLACK
        return False

    all_nodes = set(assignment.values())
    for node in all_nodes:
        if color.get(node, WHITE) == WHITE:
            if visit(node):
                return True
    return False


def greedy_group(
    graph: DependenceGraph, limits: FusionLimits
) -> tuple[list[Group], dict[int, int]]:
    """Group call vertices greedily.

    Returns the groups plus the final contraction assignment
    (vertex index -> representative id; grouped vertices share their
    group leader's index).
    """
    assignment = {v.index: v.index for v in graph.vertices}
    keys = {v.index: group_key(v) for v in graph.vertices}
    grouped: set[int] = set()
    groups: list[Group] = []
    for vertex in graph.vertices:
        index = vertex.index
        if keys[index] is None or index in grouped:
            continue
        members = [index]
        grouped.add(index)
        # the *effective* fused sequence length is the number of distinct
        # member slots (mutually-exclusive conditional calls of one member
        # merge into one slot), so the cutoffs count slots, not vertices
        slots: set[tuple] = {_slot_key(vertex)}
        method_counts: dict[str, int] = {}
        for call in _vertex_static_calls(vertex):
            method_counts[call] = method_counts.get(call, 0) + 1
        for candidate in graph.vertices:
            cand_index = candidate.index
            if cand_index <= index or cand_index in grouped:
                continue
            if keys[cand_index] != keys[index]:
                continue
            cand_slot = _slot_key(candidate)
            if cand_slot not in slots and len(slots) >= limits.max_sequence:
                continue
            candidate_calls = _vertex_static_calls(candidate)
            if cand_slot not in slots and any(
                method_counts.get(call, 0) >= limits.max_repeat
                for call in candidate_calls
            ):
                continue
            if any(
                _argument_hazard(graph.vertices[m], candidate)
                for m in members
            ):
                continue
            # tentative contraction
            assignment[cand_index] = index
            if _contracted_has_cycle(graph, assignment):
                assignment[cand_index] = cand_index
                continue
            members.append(cand_index)
            grouped.add(cand_index)
            if cand_slot not in slots:
                slots.add(cand_slot)
                for call in candidate_calls:
                    method_counts[call] = method_counts.get(call, 0) + 1
        groups.append(
            Group(receiver_key=keys[index], vertex_indices=members)
        )
    return groups, assignment


def _slot_key(vertex: Vertex) -> tuple:
    """Slot identity within a group: conditional calls of the same member
    invoking the same method with the same arguments share a slot; plain
    calls are always distinct slots."""
    conditional = conditional_call(vertex)
    if conditional is None:
        return ("plain", vertex.index)
    _, call = conditional
    return (
        "cond",
        vertex.member,
        call.method_name,
        tuple(str(a) for a in call.args),
    )


def _vertex_static_calls(vertex: Vertex) -> list[str]:
    """Static method names called by a (possibly conditional) call vertex,
    used for the max_repeat cutoff."""
    return [call.method_name for call in vertex.nested_calls]
