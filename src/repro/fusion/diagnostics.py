"""Fusion diagnostics: explain *why* calls did not fuse.

When Grafter leaves two calls on the same child unfused, the reason is
always a dependence chain that leaves the would-be group and returns to
it — contracting the group would create a cycle. This module surfaces
those chains in human-readable form, which is invaluable when massaging
a traversal into a fusible shape (the paper's §3.5 discussion of what
inhibits fusion).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.analysis.call_automata import AnalysisContext
from repro.analysis.dependence import DependenceGraph, build_dependence_graph
from repro.fusion.grouping import FusionLimits, greedy_group
from repro.ir.method import TraversalMethod
from repro.ir.program import Program


@dataclass
class BlockedPair:
    """Two same-receiver groups that could not merge, with a witness
    dependence chain (vertex descriptions, group members first/last)."""

    receiver: str
    first_group: list[str]
    second_group: list[str]
    chain: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"calls on {self.receiver} could not fuse:",
            f"  group A: {', '.join(self.first_group)}",
            f"  group B: {', '.join(self.second_group)}",
        ]
        if self.chain:
            lines.append("  blocking chain (A -> ... -> B):")
            for step in self.chain:
                lines.append(f"    {step}")
        return "\n".join(lines)


@dataclass
class FusionExplanation:
    members: list[str]
    groups: list[list[str]]
    blocked: list[BlockedPair]

    def describe(self) -> str:
        lines = [f"sequence: {' + '.join(self.members)}"]
        for index, group in enumerate(self.groups):
            lines.append(f"  group {index}: {', '.join(group)}")
        for pair in self.blocked:
            lines.append(pair.describe())
        if not self.blocked:
            lines.append("  (no blocked groupings)")
        return "\n".join(lines)


def explain_sequence(
    program: Program,
    members: list[TraversalMethod],
    limits: FusionLimits | None = None,
) -> FusionExplanation:
    """Group the sequence like the engine would, then, for every pair of
    same-receiver groups that stayed apart, find the blocking chain."""
    program.finalize()
    ctx = AnalysisContext(program)
    graph = build_dependence_graph(ctx, members)
    groups, assignment = greedy_group(graph, limits or FusionLimits())
    vertex_desc = {
        v.index: f"[m{v.member}] {v.stmt}" for v in graph.vertices
    }
    explanation = FusionExplanation(
        members=[m.qualified_name for m in members],
        groups=[
            [vertex_desc[i] for i in group.vertex_indices] for group in groups
        ],
        blocked=[],
    )
    by_receiver: dict[str, list] = {}
    for group in groups:
        by_receiver.setdefault(group.receiver_key, []).append(group)
    for receiver, same_receiver in by_receiver.items():
        for first, second in zip(same_receiver, same_receiver[1:]):
            chain = _blocking_chain(
                graph,
                first.vertex_indices,
                second.vertex_indices,
            )
            explanation.blocked.append(
                BlockedPair(
                    receiver=receiver,
                    first_group=[vertex_desc[i] for i in first.vertex_indices],
                    second_group=[vertex_desc[i] for i in second.vertex_indices],
                    chain=[vertex_desc[i] for i in chain],
                )
            )
    return explanation


def _blocking_chain(
    graph: DependenceGraph, group_a: list[int], group_b: list[int]
) -> list[int]:
    """A dependence path that forbids scheduling the union adjacently:
    it exits the merged set and re-enters it. Returns the witness path
    (entry vertex, intermediates, exit vertex), or [] if none is found
    (the merge failed on a cutoff instead)."""
    merged = set(group_a) | set(group_b)
    # BFS from the out-neighbors of the set, avoiding the set, until we
    # re-enter it; track predecessors for path reconstruction.
    parents: dict[int, int] = {}
    queue: deque[int] = deque()
    for src in merged:
        for dst in graph.succ[src]:
            if dst not in merged and dst not in parents:
                parents[dst] = src
                queue.append(dst)
    while queue:
        node = queue.popleft()
        for dst in graph.succ[node]:
            if dst in merged:
                # reconstruct: inside -> (outside chain) -> back inside
                outside = [node]
                current = node
                while parents[current] not in merged:
                    current = parents[current]
                    outside.append(current)
                entry = parents[current]
                return [entry] + list(reversed(outside)) + [dst]
            if dst not in parents and dst not in merged:
                parents[dst] = node
                queue.append(dst)
    return []
