"""A set-associative LRU cache model."""

from __future__ import annotations

from repro.errors import ReproError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class SetAssociativeCache:
    """Classic set-associative cache with LRU replacement.

    Addresses are byte addresses; the cache tracks lines of ``line_size``
    bytes. ``access`` returns True on hit. Writes are modeled as
    write-allocate / write-back (a store to a missing line fetches it), so
    reads and writes behave identically for miss counting, matching how
    the paper's hardware counters see traffic.
    """

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        if not _is_power_of_two(line_size):
            raise ReproError(f"{name}: line size must be a power of two")
        num_lines = size_bytes // line_size
        if num_lines % ways != 0:
            raise ReproError(f"{name}: {num_lines} lines not divisible by {ways} ways")
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = num_lines // ways
        self._line_shift = line_size.bit_length() - 1
        # per-set: dict tag -> recency counter (dicts preserve insertion
        # order; we track recency with a monotonic counter for O(1) hits)
        self._sets: list[dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch the line containing *address*; returns True on hit."""
        line = address >> self._line_shift
        set_index = line % self.num_sets
        tag = line // self.num_sets
        cache_set = self._sets[set_index]
        self._tick += 1
        if tag in cache_set:
            cache_set[tag] = self._tick
            self.hits += 1
            return True
        self.misses += 1
        if len(cache_set) >= self.ways:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[tag] = self._tick
        return False

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Empty the cache (used between experiment repetitions)."""
        for cache_set in self._sets:
            cache_set.clear()
        self.reset_counters()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{self.name}: {self.size_bytes >> 10}KB {self.ways}-way, "
            f"{self.hits} hits / {self.misses} misses"
        )
