"""Multi-level cache hierarchy + latency model (the paper's testbed)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.cache import SetAssociativeCache


@dataclass(frozen=True)
class LatencyModel:
    """Additional cycles paid per miss at each level.

    An L1 hit is folded into the instruction cost (1 unit per access in
    the cost model); each deeper miss adds latency on top. Values are in
    the ballpark of the paper's Xeon (L2 ~12, L3 ~40, DRAM ~200 cycles).
    """

    l1_miss: int = 12
    l2_miss: int = 28  # additional on top of the L2 latency already paid
    l3_miss: int = 160


class CacheHierarchy:
    """Inclusive-enough three-level hierarchy: an access missing a level
    is forwarded to the next one."""

    def __init__(self, levels: list[SetAssociativeCache], latency: LatencyModel):
        self.levels = levels
        self.latency = latency

    def access(self, address: int) -> None:
        for level in self.levels:
            if level.access(address):
                return

    def miss_counts(self) -> dict[str, int]:
        return {level.name: level.misses for level in self.levels}

    def penalty_cycles(self) -> int:
        """Total extra cycles implied by the recorded miss counts."""
        penalties = (self.latency.l1_miss, self.latency.l2_miss, self.latency.l3_miss)
        total = 0
        for level, penalty in zip(self.levels, penalties):
            total += level.misses * penalty
        return total

    def reset_counters(self) -> None:
        for level in self.levels:
            level.reset_counters()

    def flush(self) -> None:
        for level in self.levels:
            level.flush()


def paper_hierarchy(scale: int = 1, latency: LatencyModel | None = None) -> CacheHierarchy:
    """The evaluation platform's hierarchy (paper §5): 32 KB 8-way L1,
    256 KB 8-way L2, 20 MB 20-way L3, 64 B lines.

    ``scale`` divides every capacity by a power-of-two factor. Because the
    pure-Python interpreter cannot run the paper's 90 MB–1 GB trees in CI
    time, experiments optionally shrink the caches together with the trees
    — preserving the tree-size : cache-size ratios where the paper's
    crossovers live. ``scale=1`` is the faithful configuration.
    """
    if latency is None:
        latency = LatencyModel()
    l1 = SetAssociativeCache("L1", 32 * 1024 // scale, 8)
    l2 = SetAssociativeCache("L2", 256 * 1024 // scale, 8)
    l3 = SetAssociativeCache("L3", 20 * 1024 * 1024 // scale, 20)
    return CacheHierarchy([l1, l2, l3], latency)
