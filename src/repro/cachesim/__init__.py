"""Cache simulation substrate.

The paper evaluates on an Intel Xeon with 32 KB 8-way L1, 256 KB 8-way L2,
20 MB 20-way L3 and 64 B lines (§5, *Experimental platform*), reporting L2
and L3 miss counts from hardware counters. The reproduction replaces the
hardware with a deterministic set-associative LRU simulator fed by the
interpreter's address trace, configured with the same geometry, plus a
simple additive latency model that converts (instructions, misses) into
"modeled cycles" — the reproduction's *runtime* metric.
"""

from repro.cachesim.cache import SetAssociativeCache
from repro.cachesim.hierarchy import CacheHierarchy, LatencyModel, paper_hierarchy

__all__ = [
    "SetAssociativeCache",
    "CacheHierarchy",
    "LatencyModel",
    "paper_hierarchy",
]
