"""Statement IR (paper Fig. 3b).

A traversal body is a sequence of *top-level statements*; each becomes one
vertex in the dependence graph. Simple statements never recurse; traverse
statements are the (possibly virtual) calls that continue the traversal on
``this`` or a direct child.

``If`` bodies may contain only simple statements in Grafter mode (rule 12).
The TreeFuser baseline mode relaxes this — TreeFuser's language permitted
guarded recursion, and the relaxation is what forces its coarser dependence
summaries (see DESIGN.md).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dc_field
from typing import Optional, Union

from repro.ir.access import AccessPath, Receiver
from repro.ir.exprs import Expr, PureCall

_uid_counter = itertools.count()


def _next_uid() -> int:
    return next(_uid_counter)


@dataclass
class _StmtBase:
    uid: int = dc_field(default_factory=_next_uid, init=False, repr=False)


@dataclass
class Assign(_StmtBase):
    """``<data-access> = <expr>;`` — only data fields are assignable."""

    target: AccessPath
    value: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.value};"


@dataclass
class LocalDef(_StmtBase):
    """``<prim|class> name = <expr>;`` — a by-value local."""

    name: str
    type_name: str
    init: Optional[Expr] = None

    def __str__(self) -> str:
        if self.init is None:
            return f"{self.type_name} {self.name};"
        return f"{self.type_name} {self.name} = {self.init};"


@dataclass
class AliasDef(_StmtBase):
    """``t* const name = <tree-node>;`` — a constant alias to a descendant."""

    name: str
    type_name: str
    target: AccessPath

    def __str__(self) -> str:
        return f"{self.type_name}* const {self.name} = {self.target};"


@dataclass
class If(_StmtBase):
    cond: Expr
    then_body: list["Stmt"] = dc_field(default_factory=list)
    else_body: list["Stmt"] = dc_field(default_factory=list)

    def __str__(self) -> str:
        return f"if ({self.cond}) {{...}}" + (" else {...}" if self.else_body else "")


@dataclass
class Return(_StmtBase):
    """``return;`` — truncates the current traversal at this subtree."""

    def __str__(self) -> str:
        return "return;"


@dataclass
class While(_StmtBase):
    """``while (cond) { <simple stmts> }`` — §3.5 extension.

    The paper: "The dependence analysis can similarly be extended to
    support loops within traversal functions (that do not themselves
    invoke additional traversal functions)". Access-wise a loop is the
    union of its body's accesses (the same location *set* regardless of
    trip count), so the automaton machinery needs no changes; the
    validator rejects traverse statements inside loops in every mode.
    """

    cond: Expr
    body: list["Stmt"] = dc_field(default_factory=list)

    def __str__(self) -> str:
        return f"while ({self.cond}) {{...}}"


@dataclass
class New(_StmtBase):
    """``<tree-node> = new T();`` — leaf topology mutation (trivial ctor)."""

    target: AccessPath  # a tree-node path (all child steps)
    type_name: str

    def __str__(self) -> str:
        return f"{self.target} = new {self.type_name}();"


@dataclass
class Delete(_StmtBase):
    """``delete <tree-node>;`` — removes a subtree (trivial dtor)."""

    target: AccessPath

    def __str__(self) -> str:
        return f"delete {self.target};"


@dataclass
class PureStmt(_StmtBase):
    """A pure call in statement position (result discarded)."""

    call: PureCall

    def __str__(self) -> str:
        return f"{self.call};"


@dataclass
class TraverseStmt(_StmtBase):
    """``this[->c]->f(args);`` — continues the traversal (rule 7)."""

    receiver: Receiver
    method_name: str
    args: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.receiver}->{self.method_name}({rendered});"


SimpleStmt = Union[
    Assign, LocalDef, AliasDef, If, While, Return, New, Delete, PureStmt
]
Stmt = Union[SimpleStmt, TraverseStmt]


def contains_return(stmt: Stmt) -> bool:
    """Whether executing the statement may return from the enclosing
    traversal — the paper's control-dependence trigger (§3.2)."""
    if isinstance(stmt, Return):
        return True
    if isinstance(stmt, If):
        return any(contains_return(s) for s in stmt.then_body) or any(
            contains_return(s) for s in stmt.else_body
        )
    if isinstance(stmt, While):
        return any(contains_return(s) for s in stmt.body)
    return False


def contains_traverse(stmt: Stmt) -> bool:
    """Whether the statement contains a traversal call (possibly guarded —
    only legal in TreeFuser mode, and never inside loops)."""
    if isinstance(stmt, TraverseStmt):
        return True
    if isinstance(stmt, If):
        return any(contains_traverse(s) for s in stmt.then_body) or any(
            contains_traverse(s) for s in stmt.else_body
        )
    if isinstance(stmt, While):
        return any(contains_traverse(s) for s in stmt.body)
    return False


def nested_traversals(stmt: Stmt) -> list[TraverseStmt]:
    """All traverse statements syntactically inside *stmt* (incl. itself)."""
    if isinstance(stmt, TraverseStmt):
        return [stmt]
    result: list[TraverseStmt] = []
    if isinstance(stmt, If):
        for sub in list(stmt.then_body) + list(stmt.else_body):
            result.extend(nested_traversals(sub))
    elif isinstance(stmt, While):
        for sub in stmt.body:
            result.extend(nested_traversals(sub))
    return result


def walk_stmts(body: list[Stmt]):
    """Yield every statement in a body, recursing into branches/loops."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
