"""Access paths: the paper's central location abstraction (§3.1, Fig. 3c).

An access path is a base (``this``, a local/alias, or a global) followed by
a sequence of member steps. Steps through *child* fields move between tree
nodes; a trailing run of *data* steps reaches a primitive or opaque value.

The three classifications from the paper map to:

* ``<on-tree>``  — base is ``this`` (or an alias, which analysis inlines
  back to a ``this``-rooted path): child steps then data steps.
* ``<off-tree>`` — base is a global.
* ``<tree-node>``— base is ``this``/alias and *all* steps are child fields
  (the path denotes a node, not a data value); appears in ``new``/``delete``
  statements, alias definitions and traverse receivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ValidationError
from repro.ir.types import ChildField, DataField, Field

BASE_THIS = "this"


@dataclass(frozen=True)
class Step:
    """One member access. ``pre_cast`` records a ``static_cast`` applied to
    the value *before* this member was resolved (needed only for printing
    and validation; field identity is already resolved)."""

    field: Field
    pre_cast: Optional[str] = None


@dataclass(frozen=True)
class AccessPath:
    """A resolved access path.

    ``base`` is ``"this"``, ``("local", name)`` represented as the string
    ``"local:name"``, or ``("global", name)`` as ``"global:name"``. Strings
    keep the dataclass hashable and cheap to compare.
    """

    base: str
    steps: tuple[Step, ...] = ()

    # -- constructors -----------------------------------------------------

    @staticmethod
    def this(*steps: Step) -> "AccessPath":
        return AccessPath(BASE_THIS, tuple(steps))

    @staticmethod
    def local(name: str, *steps: Step) -> "AccessPath":
        return AccessPath(f"local:{name}", tuple(steps))

    @staticmethod
    def global_(name: str, *steps: Step) -> "AccessPath":
        return AccessPath(f"global:{name}", tuple(steps))

    # -- classification ---------------------------------------------------

    @property
    def is_on_tree(self) -> bool:
        return self.base == BASE_THIS

    @property
    def is_local(self) -> bool:
        return self.base.startswith("local:")

    @property
    def is_global(self) -> bool:
        return self.base.startswith("global:")

    @property
    def base_name(self) -> str:
        """Local or global name (without the kind prefix)."""
        if self.base == BASE_THIS:
            return BASE_THIS
        return self.base.split(":", 1)[1]

    @property
    def is_tree_node(self) -> bool:
        """True when the path denotes a tree node (all steps are children)."""
        return all(step.field.is_child for step in self.steps)

    @property
    def ends_in_data(self) -> bool:
        return bool(self.steps) and not self.steps[-1].field.is_child

    def child_prefix_length(self) -> int:
        """Number of leading child steps (the node-navigation part)."""
        count = 0
        for step in self.steps:
            if not step.field.is_child:
                break
            count += 1
        return count

    def check_well_formed(self) -> None:
        """Child steps must all precede data steps (grammar rules 17/20)."""
        seen_data = False
        for step in self.steps:
            if step.field.is_child:
                if seen_data:
                    raise ValidationError(
                        f"child access after data access in path {self}"
                    )
            else:
                seen_data = True

    # -- composition ------------------------------------------------------

    def extend(self, *steps: Step) -> "AccessPath":
        return AccessPath(self.base, self.steps + tuple(steps))

    def with_base_path(self, prefix: "AccessPath") -> "AccessPath":
        """Substitute this path's base with *prefix* (alias inlining)."""
        return AccessPath(prefix.base, prefix.steps + self.steps)

    # -- labels for automata ----------------------------------------------

    def labels(self) -> list[str]:
        return [step.field.label for step in self.steps]

    def __str__(self) -> str:
        text = "this" if self.base == BASE_THIS else self.base_name
        prev_was_node = self.base == BASE_THIS
        for step in self.steps:
            if step.pre_cast is not None:
                text = f"static_cast<{step.pre_cast}*>({text})"
                prev_was_node = True
            sep = "->" if prev_was_node else "."
            text += f"{sep}{step.field.name}"
            prev_was_node = step.field.is_child
        return text


@dataclass(frozen=True)
class Receiver:
    """The receiver of a traverse statement: ``this`` or ``this->child``.

    Fig. 3b rule 7 restricts traversal calls to the current node or a direct
    child; anything deeper has to be decomposed across traversal methods,
    which is exactly what makes the labeled call graph finite.
    """

    child: Optional[ChildField] = None  # None means `this`

    @property
    def is_this(self) -> bool:
        return self.child is None

    @property
    def key(self) -> str:
        """Grouping key: calls with the same key visit the same node."""
        return "this" if self.child is None else f"child:{self.child.label}"

    def __str__(self) -> str:
        if self.child is None:
            return "this"
        return f"this->{self.child.name}"
