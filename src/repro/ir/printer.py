"""Pretty printer: IR back to the Grafter surface syntax.

Round-trips with :mod:`repro.frontend`: ``parse(print(parse(text)))`` yields
the same program. Also used to render synthesized fused traversals in a
human-readable form (the reproduction's analogue of the paper's Fig. 6).
"""

from __future__ import annotations

from repro.ir.access import AccessPath
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, PureCall, UnaryOp
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)

_INDENT = "  "


def print_program(program: Program) -> str:
    """Render a full program as Grafter surface syntax."""
    chunks: list[str] = []
    for cls in program.opaque_classes.values():
        lines = [f"class {cls.name} {{"]
        for field in cls.fields.values():
            lines.append(f"{_INDENT}{field.type_name} {field.name};")
        lines.append("};")
        chunks.append("\n".join(lines))
    for var in program.globals.values():
        chunks.append(f"{var.type_name} {var.name};")
    for func in program.pure_functions.values():
        params = ", ".join(f"{p.type_name} {p.name}" for p in func.params)
        chunks.append(f"_pure_ {func.return_type} {func.name}({params});")
    for tree_type in program.tree_types.values():
        chunks.append(print_tree_type(tree_type))
    if program.root_type_name is not None:
        lines = ["int main() {", f"{_INDENT}{program.root_type_name}* root = ...;"]
        for call in program.entry:
            args = ", ".join(print_expr(a) for a in call.args)
            lines.append(f"{_INDENT}root->{call.method_name}({args});")
        lines.append("}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"


def print_tree_type(tree_type) -> str:
    header = f"_tree_ class {tree_type.name}"
    if tree_type.bases:
        header += " : " + ", ".join(f"public {b}" for b in tree_type.bases)
    if tree_type.abstract:
        header = "_abstract_ " + header
    lines = [header + " {"]
    for child in tree_type.children.values():
        lines.append(f"{_INDENT}_child_ {child.type_name}* {child.name};")
    for data in tree_type.data.values():
        lines.append(f"{_INDENT}{data.type_name} {data.name};")
    for method in tree_type.methods.values():
        lines.append(print_method(method, indent=1))
    lines.append("};")
    return "\n".join(lines)


def print_method(method: TraversalMethod, indent: int = 0) -> str:
    pad = _INDENT * indent
    params = ", ".join(f"{p.type_name} {p.name}" for p in method.params)
    virtual = "virtual " if method.virtual else ""
    lines = [f"{pad}_traversal_ {virtual}void {method.name}({params}) {{"]
    for stmt in method.body:
        lines.extend(print_stmt(stmt, indent + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def print_stmt(stmt: Stmt, indent: int) -> list[str]:
    pad = _INDENT * indent
    if isinstance(stmt, Assign):
        return [f"{pad}{print_path(stmt.target)} = {print_expr(stmt.value)};"]
    if isinstance(stmt, LocalDef):
        if stmt.init is None:
            return [f"{pad}{stmt.type_name} {stmt.name};"]
        return [f"{pad}{stmt.type_name} {stmt.name} = {print_expr(stmt.init)};"]
    if isinstance(stmt, AliasDef):
        return [
            f"{pad}{stmt.type_name}* const {stmt.name} = {print_path(stmt.target)};"
        ]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({print_expr(stmt.cond)}) {{"]
        for sub in stmt.then_body:
            lines.extend(print_stmt(sub, indent + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            for sub in stmt.else_body:
                lines.extend(print_stmt(sub, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({print_expr(stmt.cond)}) {{"]
        for sub in stmt.body:
            lines.extend(print_stmt(sub, indent + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, Return):
        return [f"{pad}return;"]
    if isinstance(stmt, New):
        return [f"{pad}{print_path(stmt.target)} = new {stmt.type_name}();"]
    if isinstance(stmt, Delete):
        return [f"{pad}delete {print_path(stmt.target)};"]
    if isinstance(stmt, PureStmt):
        return [f"{pad}{print_expr(stmt.call)};"]
    if isinstance(stmt, TraverseStmt):
        args = ", ".join(print_expr(a) for a in stmt.args)
        return [f"{pad}{stmt.receiver}->{stmt.method_name}({args});"]
    raise TypeError(f"unknown statement {stmt!r}")  # pragma: no cover


def print_path(path: AccessPath) -> str:
    """Render a resolved path in surface syntax.

    The frontend treats ``->`` and ``.`` as interchangeable (member
    resolution is by name against the resolved static type), so the printer
    makes a canonical choice: ``->`` when the previous value is known to be
    a node (the ``this`` base, or any value reached through a child field),
    ``.`` otherwise (locals, globals, and members of data values).
    """
    text = "this" if path.base == "this" else path.base_name
    prev_was_node = path.base == "this"
    for step in path.steps:
        if step.pre_cast is not None:
            text = f"static_cast<{step.pre_cast}*>({text})"
            prev_was_node = True
        sep = "->" if prev_was_node else "."
        text += f"{sep}{step.field.name}"
        prev_was_node = step.field.is_child
    return text


def print_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        if isinstance(expr.value, bool):
            return "true" if expr.value else "false"
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return str(expr.value)
    if isinstance(expr, DataAccess):
        return print_path(expr.path)
    if isinstance(expr, BinOp):
        return f"({print_expr(expr.lhs)} {expr.op} {print_expr(expr.rhs)})"
    if isinstance(expr, UnaryOp):
        return f"({expr.op}{print_expr(expr.operand)})"
    if isinstance(expr, PureCall):
        args = ", ".join(print_expr(a) for a in expr.args)
        return f"{expr.func_name}({args})"
    raise TypeError(f"unknown expression {expr!r}")  # pragma: no cover
