"""The whole-program container and name/dispatch resolution.

A :class:`Program` owns the tree-type hierarchy, opaque data classes,
globals, pure functions and the entry sequence (the consecutive traversal
calls on the tree root that seed fusion, e.g. lines 51–52 of the paper's
Fig. 2). ``finalize()`` freezes the hierarchy and computes the resolution
tables used by analysis, fusion and the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.errors import ValidationError
from repro.ir.exprs import Expr
from repro.ir.method import PureFunction, TraversalMethod
from repro.ir.types import (
    ChildField,
    DataField,
    Field,
    GlobalVar,
    OpaqueClass,
    TreeType,
    is_primitive,
)


@dataclass
class EntryCall:
    """One top-level traversal invocation on the root (paper Fig. 2, main)."""

    method_name: str
    args: tuple[Expr, ...] = ()


class Program:
    """A complete Grafter program."""

    def __init__(self, name: str = "program"):
        self.name = name
        self.tree_types: dict[str, TreeType] = {}
        self.opaque_classes: dict[str, OpaqueClass] = {}
        self.globals: dict[str, GlobalVar] = {}
        self.pure_functions: dict[str, PureFunction] = {}
        self.root_type_name: Optional[str] = None
        self.entry: list[EntryCall] = []
        self._types_ready = False
        self._finalized = False
        # resolution caches, built by finalize_types()/finalize()
        self._mro: dict[str, list[str]] = {}
        self._subtypes: dict[str, set[str]] = {}
        self._fields: dict[str, dict[str, Field]] = {}
        self._method_tables: dict[str, dict[str, TraversalMethod]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_tree_type(self, tree_type: TreeType) -> TreeType:
        self._check_mutable()
        if tree_type.name in self.tree_types or tree_type.name in self.opaque_classes:
            raise ValidationError(f"duplicate type name {tree_type.name!r}")
        self.tree_types[tree_type.name] = tree_type
        return tree_type

    def add_opaque_class(self, cls: OpaqueClass) -> OpaqueClass:
        self._check_mutable()
        if cls.name in self.opaque_classes or cls.name in self.tree_types:
            raise ValidationError(f"duplicate type name {cls.name!r}")
        self.opaque_classes[cls.name] = cls
        return cls

    def add_global(self, name: str, type_name: str) -> GlobalVar:
        self._check_mutable()
        if name in self.globals:
            raise ValidationError(f"duplicate global {name!r}")
        var = GlobalVar(name=name, type_name=type_name)
        self.globals[name] = var
        return var

    def add_pure_function(self, func: PureFunction) -> PureFunction:
        self._check_mutable()
        if func.name in self.pure_functions:
            raise ValidationError(f"duplicate pure function {func.name!r}")
        self.pure_functions[func.name] = func
        return func

    def set_entry(self, root_type_name: str, calls: Iterable[EntryCall]) -> None:
        self.root_type_name = root_type_name
        self.entry = list(calls)

    def _check_mutable(self) -> None:
        if self._finalized:
            raise ValidationError("program is finalized; no further mutation")

    # ------------------------------------------------------------------
    # finalization: hierarchy checks + resolution tables
    #
    # Two stages so that method *bodies* — which need field resolution —
    # can be constructed after the type hierarchy is frozen:
    #   finalize_types()  -> hierarchy, field tables, subtype sets
    #   finalize()        -> method (dispatch) tables; program is immutable
    # ------------------------------------------------------------------

    def finalize_types(self) -> "Program":
        if self._types_ready:
            return self
        for tree_type in self.tree_types.values():
            for base in tree_type.bases:
                if base not in self.tree_types:
                    raise ValidationError(
                        f"{tree_type.name}: unknown base tree type {base!r}"
                    )
        for name in self.tree_types:
            self._mro[name] = self._linearize(name, set())
        for name in self.tree_types:
            self._fields[name] = self._collect_fields(name)
        self._subtypes = {name: {name} for name in self.tree_types}
        for name in self.tree_types:
            for ancestor in self._mro[name]:
                self._subtypes[ancestor].add(name)
        self._check_field_types()
        self._types_ready = True
        return self

    def finalize(self) -> "Program":
        if self._finalized:
            return self
        self.finalize_types()
        for name in self.tree_types:
            self._method_tables[name] = self._collect_methods(name)
        self._finalized = True
        return self

    def refinalize(self) -> "Program":
        """Rebuild dispatch tables after a transformation added methods
        (used by :mod:`repro.fusion.transforms`)."""
        self._finalized = False
        self._method_tables.clear()
        return self.finalize()

    def _linearize(self, name: str, visiting: set[str]) -> list[str]:
        if name in visiting:
            raise ValidationError(f"inheritance cycle through {name!r}")
        if name in self._mro:
            return self._mro[name]
        visiting.add(name)
        order = [name]
        for base in self.tree_types[name].bases:
            for ancestor in self._linearize(base, visiting):
                if ancestor not in order:
                    order.append(ancestor)
        visiting.discard(name)
        self._mro[name] = order
        return order

    def _collect_fields(self, name: str) -> dict[str, Field]:
        fields: dict[str, Field] = {}
        # walk most-derived first; a repeated name is shadowing -> rejected
        for type_name in self._mro[name]:
            tree_type = self.tree_types[type_name]
            for field_obj in tree_type.own_fields():
                existing = fields.get(field_obj.name)
                if existing is not None and existing.owner != field_obj.owner:
                    raise ValidationError(
                        f"field shadowing of {field_obj.name!r} between "
                        f"{existing.owner} and {field_obj.owner} is not supported"
                    )
                fields.setdefault(field_obj.name, field_obj)
        return fields

    def _collect_methods(self, name: str) -> dict[str, TraversalMethod]:
        table: dict[str, TraversalMethod] = {}
        for type_name in self._mro[name]:  # most-derived first
            for method in self.tree_types[type_name].methods.values():
                if method.name not in table:
                    table[method.name] = method
                else:
                    override = table[method.name]
                    if override.signature_key() != method.signature_key():
                        raise ValidationError(
                            f"{override.qualified_name} overrides "
                            f"{method.qualified_name} with a different signature"
                        )
        return table

    def _check_field_types(self) -> None:
        for tree_type in self.tree_types.values():
            for child in tree_type.children.values():
                if child.type_name not in self.tree_types:
                    raise ValidationError(
                        f"{tree_type.name}.{child.name}: child type "
                        f"{child.type_name!r} is not a tree type"
                    )
            for data_field in tree_type.data.values():
                self._check_data_type(tree_type.name, data_field)
        for var in self.globals.values():
            if not is_primitive(var.type_name) and var.type_name not in self.opaque_classes:
                raise ValidationError(
                    f"global {var.name!r} has unknown type {var.type_name!r}"
                )

    def _check_data_type(self, owner: str, data_field: DataField) -> None:
        if is_primitive(data_field.type_name):
            return
        if data_field.type_name in self.opaque_classes:
            return
        if data_field.type_name in self.tree_types:
            raise ValidationError(
                f"{owner}.{data_field.name}: tree type "
                f"{data_field.type_name!r} used as a data field (use _child_)"
            )
        raise ValidationError(
            f"{owner}.{data_field.name}: unknown type {data_field.type_name!r}"
        )

    # ------------------------------------------------------------------
    # resolution queries (valid after finalize)
    # ------------------------------------------------------------------

    def _require_types(self) -> None:
        if not self._types_ready:
            raise ValidationError("program types must be finalized first")

    def _require_finalized(self) -> None:
        if not self._finalized:
            raise ValidationError("program must be finalized first")

    def mro(self, type_name: str) -> list[str]:
        self._require_types()
        return self._mro[type_name]

    def is_subtype(self, sub: str, sup: str) -> bool:
        self._require_types()
        return sup in self._mro[sub]

    def subtypes(self, type_name: str) -> set[str]:
        """All transitive subtypes, including the type itself."""
        self._require_types()
        return set(self._subtypes[type_name])

    def concrete_subtypes(self, type_name: str) -> list[str]:
        """Instantiable subtypes — the possible dynamic types of a child
        whose declared type is *type_name* (sorted for determinism)."""
        self._require_types()
        return sorted(
            name for name in self._subtypes[type_name]
            if not self.tree_types[name].abstract
        )

    def concrete_subtypes_all(self) -> list[str]:
        """Every instantiable tree type in the program (sorted)."""
        return sorted(
            name
            for name, tree_type in self.tree_types.items()
            if not tree_type.abstract
        )

    def fields_of(self, type_name: str) -> dict[str, Field]:
        self._require_types()
        return self._fields[type_name]

    def resolve_field(self, type_name: str, field_name: str) -> Field:
        self._require_types()
        fields = self._fields.get(type_name)
        if fields is None:
            raise ValidationError(f"unknown tree type {type_name!r}")
        if field_name not in fields:
            raise ValidationError(
                f"type {type_name} has no field {field_name!r}"
            )
        return fields[field_name]

    def resolve_method(self, type_name: str, method_name: str) -> TraversalMethod:
        """Dynamic dispatch: the most-derived override visible from
        *type_name*. Falls back to an MRO walk before full finalization so
        mutually-recursive bodies can be resolved while being built."""
        self._require_types()
        if self._finalized:
            table = self._method_tables.get(type_name)
            if table is None:
                raise ValidationError(f"unknown tree type {type_name!r}")
            if method_name not in table:
                raise ValidationError(
                    f"type {type_name} has no traversal {method_name!r}"
                )
            return table[method_name]
        for ancestor in self._mro[type_name]:
            method = self.tree_types[ancestor].methods.get(method_name)
            if method is not None:
                return method
        raise ValidationError(f"type {type_name} has no traversal {method_name!r}")

    def has_method(self, type_name: str, method_name: str) -> bool:
        self._require_types()
        if self._finalized:
            return method_name in self._method_tables.get(type_name, {})
        return any(
            method_name in self.tree_types[ancestor].methods
            for ancestor in self._mro.get(type_name, ())
        )

    def methods_of(self, type_name: str) -> dict[str, TraversalMethod]:
        self._require_finalized()
        return dict(self._method_tables[type_name])

    def declaring_type(self, method: TraversalMethod) -> TreeType:
        return self.tree_types[method.owner]

    def all_methods(self) -> Iterable[TraversalMethod]:
        for tree_type in self.tree_types.values():
            yield from tree_type.methods.values()

    def common_supertype(self, type_names: Iterable[str]) -> str:
        """Least common ancestor used for the fused traversed-node type
        (paper §3.4: 'a lattice for the types traversed ... is created')."""
        self._require_types()
        names = list(type_names)
        if not names:
            raise ValidationError("common_supertype of empty set")
        candidates = [t for t in self._mro[names[0]]]
        for name in names[1:]:
            ancestry = set(self._mro[name])
            candidates = [t for t in candidates if t in ancestry]
        if not candidates:
            raise ValidationError(f"types {names} share no common supertype")
        return candidates[0]
