"""Grafter language IR.

The intermediate representation mirrors the paper's Fig. 3 grammar: tree
types with child/data fields (:mod:`repro.ir.types`), access paths
(:mod:`repro.ir.access`), expressions (:mod:`repro.ir.exprs`), statements
(:mod:`repro.ir.stmts`), traversal methods (:mod:`repro.ir.method`), the
whole-program container (:mod:`repro.ir.program`), grammar validation
(:mod:`repro.ir.validate`) and the pretty printer (:mod:`repro.ir.printer`).
"""

from repro.ir.access import AccessPath, Receiver, Step
from repro.ir.builder import ProgramBuilder, RawStep, resolve_member_chain
from repro.ir.exprs import (
    BinOp,
    Const,
    DataAccess,
    Expr,
    PureCall,
    UnaryOp,
    expr_data_accesses,
)
from repro.ir.method import Param, PureFunction, TraversalMethod
from repro.ir.program import EntryCall, Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
)
from repro.ir.types import (
    ChildField,
    DataField,
    GlobalVar,
    OpaqueClass,
    TreeType,
    is_primitive,
)
from repro.ir.validate import LanguageMode, validate_program

__all__ = [
    "AccessPath",
    "Receiver",
    "Step",
    "ProgramBuilder",
    "RawStep",
    "resolve_member_chain",
    "BinOp",
    "Const",
    "DataAccess",
    "Expr",
    "PureCall",
    "UnaryOp",
    "expr_data_accesses",
    "Param",
    "PureFunction",
    "TraversalMethod",
    "EntryCall",
    "Program",
    "AliasDef",
    "Assign",
    "Delete",
    "If",
    "LocalDef",
    "New",
    "PureStmt",
    "Return",
    "Stmt",
    "TraverseStmt",
    "ChildField",
    "DataField",
    "GlobalVar",
    "OpaqueClass",
    "TreeType",
    "is_primitive",
    "LanguageMode",
    "validate_program",
]
