"""Language-restriction validation (paper Fig. 3 and §3.1).

Any traversal that does not adhere to Grafter's language must be excluded
from fusion (paper §4); here we validate whole programs up front and raise
:class:`~repro.errors.ValidationError` with a precise message instead.

Two modes:

* ``LanguageMode.GRAFTER`` — the paper's grammar. In particular, ``if``
  bodies contain only *simple* statements (rule 12): traversal calls are
  unconditional, so truncation is expressed with conditional ``return``.
* ``LanguageMode.TREEFUSER`` — the relaxed grammar used by the TreeFuser
  baseline (its OOPSLA'17 language allowed guarded recursion). Conditional
  traverse statements are allowed; the analysis pays for it with coarser
  (branch-unioned) dependence summaries.
"""

from __future__ import annotations

import enum

from repro.errors import ValidationError
from repro.ir.access import AccessPath
from repro.ir.exprs import (
    BinOp,
    Const,
    DataAccess,
    Expr,
    PureCall,
    UnaryOp,
    walk_expr,
)
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
    contains_traverse,
)
from repro.ir.types import is_primitive


class LanguageMode(enum.Enum):
    GRAFTER = "grafter"
    TREEFUSER = "treefuser"


def validate_program(program: Program, mode: LanguageMode = LanguageMode.GRAFTER) -> None:
    """Validate every traversal method in the program; raise on violation."""
    program.finalize()
    for tree_type in program.tree_types.values():
        for method in tree_type.methods.values():
            _MethodValidator(program, method, mode).run()
    _validate_entry(program)


def _validate_entry(program: Program) -> None:
    if program.root_type_name is None:
        return
    if program.root_type_name not in program.tree_types:
        raise ValidationError(
            f"entry root type {program.root_type_name!r} is not a tree type"
        )
    for call in program.entry:
        if not program.has_method(program.root_type_name, call.method_name):
            raise ValidationError(
                f"entry calls unknown traversal "
                f"{program.root_type_name}::{call.method_name}"
            )


class _MethodValidator:
    """Validates one traversal method body against the grammar rules."""

    def __init__(self, program: Program, method: TraversalMethod, mode: LanguageMode):
        self.program = program
        self.method = method
        self.mode = mode
        self.locals: dict[str, str] = {p.name: p.type_name for p in method.params}
        self.aliases: dict[str, str] = {}  # alias name -> tree type

    def error(self, message: str) -> ValidationError:
        return ValidationError(f"{self.method.qualified_name}: {message}")

    def run(self) -> None:
        for param in self.method.params:
            if not is_primitive(param.type_name) and (
                param.type_name not in self.program.opaque_classes
            ):
                raise self.error(
                    f"parameter {param.name!r} must be primitive or an opaque "
                    f"class (by value), got {param.type_name!r}"
                )
        self._validate_body(self.method.body, inside_if=False)

    # ------------------------------------------------------------------

    def _validate_body(self, body: list[Stmt], inside_if: bool) -> None:
        for stmt in body:
            self._validate_stmt(stmt, inside_if)

    def _validate_stmt(self, stmt: Stmt, inside_if: bool) -> None:
        if isinstance(stmt, TraverseStmt):
            if inside_if and self.mode is LanguageMode.GRAFTER:
                raise self.error(
                    "traverse statement inside `if` is not allowed in the "
                    "Grafter language (rule 12); use a conditional return"
                )
            self._validate_traverse(stmt)
        elif isinstance(stmt, Assign):
            self._validate_assign(stmt)
        elif isinstance(stmt, LocalDef):
            self._validate_local_def(stmt)
        elif isinstance(stmt, AliasDef):
            self._validate_alias_def(stmt)
        elif isinstance(stmt, If):
            self._validate_expr(stmt.cond)
            self._validate_body(stmt.then_body, inside_if=True)
            self._validate_body(stmt.else_body, inside_if=True)
        elif isinstance(stmt, While):
            # §3.5 extension: loops are supported only when they do not
            # invoke traversals (in any language mode)
            if contains_traverse(stmt):
                raise self.error(
                    "traverse statement inside `while` is not supported "
                    "(§3.5: loops may not invoke traversals)"
                )
            self._validate_expr(stmt.cond)
            self._validate_body(stmt.body, inside_if=True)
        elif isinstance(stmt, Return):
            pass
        elif isinstance(stmt, New):
            self._validate_new(stmt)
        elif isinstance(stmt, Delete):
            self._validate_tree_node_path(stmt.target, "delete")
        elif isinstance(stmt, PureStmt):
            self._validate_expr(stmt.call)
        else:  # pragma: no cover - defensive
            raise self.error(f"unknown statement kind {type(stmt).__name__}")

    # ------------------------------------------------------------------

    def _validate_traverse(self, stmt: TraverseStmt) -> None:
        if stmt.receiver.is_this:
            receiver_type = self.method.owner
        else:
            child = stmt.receiver.child
            receiver_type = child.type_name
        if not self.program.has_method(receiver_type, stmt.method_name):
            raise self.error(
                f"receiver type {receiver_type} has no traversal "
                f"{stmt.method_name!r}"
            )
        target = self.program.resolve_method(receiver_type, stmt.method_name)
        if len(target.params) != len(stmt.args):
            raise self.error(
                f"call to {target.qualified_name} passes {len(stmt.args)} "
                f"args, expected {len(target.params)}"
            )
        for arg in stmt.args:
            self._validate_expr(arg)

    def _validate_assign(self, stmt: Assign) -> None:
        target = stmt.target
        target.check_well_formed()
        if not target.ends_in_data:
            if target.is_global and not target.steps:
                pass  # writing a whole global primitive/object
            elif target.is_local and not target.steps:
                if target.base_name in self.aliases:
                    raise self.error(
                        f"alias {target.base_name!r} cannot be reassigned"
                    )
                if target.base_name not in self.locals:
                    raise self.error(f"unknown local {target.base_name!r}")
            else:
                raise self.error(
                    f"assignment target {target} is a tree node; only data "
                    "fields are assignable (tree mutation uses new/delete)"
                )
        self._check_path_scope(target)
        self._validate_expr(stmt.value)

    def _validate_local_def(self, stmt: LocalDef) -> None:
        if not is_primitive(stmt.type_name) and (
            stmt.type_name not in self.program.opaque_classes
        ):
            raise self.error(
                f"local {stmt.name!r} must be primitive or opaque class"
            )
        if stmt.name in self.locals or stmt.name in self.aliases:
            raise self.error(f"duplicate local {stmt.name!r}")
        if stmt.init is not None:
            self._validate_expr(stmt.init)
        self.locals[stmt.name] = stmt.type_name

    def _validate_alias_def(self, stmt: AliasDef) -> None:
        if stmt.name in self.locals or stmt.name in self.aliases:
            raise self.error(f"duplicate local {stmt.name!r}")
        if stmt.type_name not in self.program.tree_types:
            raise self.error(
                f"alias {stmt.name!r} must have a tree type, got "
                f"{stmt.type_name!r}"
            )
        self._validate_tree_node_path(stmt.target, "alias definition")
        self.aliases[stmt.name] = stmt.type_name

    def _validate_new(self, stmt: New) -> None:
        self._validate_tree_node_path(stmt.target, "new")
        if stmt.type_name not in self.program.tree_types:
            raise self.error(f"new of non-tree type {stmt.type_name!r}")
        target_field = stmt.target.steps[-1].field
        declared = target_field.type_name
        if not self.program.is_subtype(stmt.type_name, declared):
            raise self.error(
                f"new {stmt.type_name} assigned to child of type {declared}"
            )

    def _validate_tree_node_path(self, path: AccessPath, context: str) -> None:
        path.check_well_formed()
        if path.is_global:
            raise self.error(f"{context}: tree-node path cannot be global")
        if not path.steps:
            raise self.error(f"{context}: must name a descendant, not this")
        if not path.is_tree_node:
            raise self.error(
                f"{context}: {path} mixes data members into a tree-node path"
            )
        self._check_path_scope(path)

    # ------------------------------------------------------------------

    def _validate_expr(self, expr: Expr) -> None:
        for sub in walk_expr(expr):
            if isinstance(sub, DataAccess):
                sub.path.check_well_formed()
                self._check_path_scope(sub.path)
                if sub.path.is_on_tree and not sub.path.ends_in_data:
                    raise self.error(
                        f"expression reads tree node {sub.path}; only data "
                        "accesses are expressions"
                    )
            elif isinstance(sub, PureCall):
                if sub.func_name not in self.program.pure_functions:
                    raise self.error(
                        f"call to unknown pure function {sub.func_name!r}"
                    )
                func = self.program.pure_functions[sub.func_name]
                if len(func.params) != len(sub.args):
                    raise self.error(
                        f"pure call {sub.func_name} passes {len(sub.args)} "
                        f"args, expected {len(func.params)}"
                    )
            elif isinstance(sub, BinOp):
                if sub.op not in {"+", "-", "*", "/", "%", "<", "<=", ">",
                                  ">=", "==", "!=", "&&", "||"}:
                    raise self.error(f"unknown binary operator {sub.op!r}")
            elif isinstance(sub, UnaryOp):
                if sub.op not in {"-", "!"}:
                    raise self.error(f"unknown unary operator {sub.op!r}")
            elif isinstance(sub, Const):
                pass

    def _check_path_scope(self, path: AccessPath) -> None:
        if path.is_local:
            name = path.base_name
            if name not in self.locals and name not in self.aliases:
                raise self.error(f"use of undeclared local {name!r}")
        elif path.is_global:
            if path.base_name not in self.program.globals:
                raise self.error(f"use of unknown global {path.base_name!r}")
