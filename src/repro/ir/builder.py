"""Programmatic construction helpers shared by the frontend and tests.

The ergonomic way to write Grafter programs is the textual frontend
(:mod:`repro.frontend`), which mirrors the paper's C++ surface syntax. This
module holds the semantic layer underneath it: member-chain resolution
(turning ``this->Content.Width`` into a resolved :class:`AccessPath`) and a
small :class:`ProgramBuilder` for assembling programs directly from Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.errors import ValidationError
from repro.ir.access import AccessPath, Receiver, Step
from repro.ir.method import Param, PureFunction, TraversalMethod
from repro.ir.program import EntryCall, Program
from repro.ir.types import OpaqueClass, TreeType, is_primitive


@dataclass(frozen=True)
class RawStep:
    """An unresolved member access: optional cast applied first, then the
    member name. ``static_cast<T*>(x)->m`` becomes RawStep(name="m",
    pre_cast="T")."""

    name: str
    pre_cast: Optional[str] = None


class ScopeInfo:
    """Types of locals/aliases in scope, needed to resolve local-based paths."""

    def __init__(self):
        self.locals: dict[str, str] = {}   # name -> primitive/opaque type
        self.aliases: dict[str, str] = {}  # name -> tree type

    def copy(self) -> "ScopeInfo":
        clone = ScopeInfo()
        clone.locals = dict(self.locals)
        clone.aliases = dict(self.aliases)
        return clone


def resolve_member_chain(
    program: Program,
    base: str,
    start_type: str,
    raw_steps: Iterable[RawStep],
    start_is_tree: bool,
) -> AccessPath:
    """Resolve a member chain into an :class:`AccessPath`.

    ``base`` is an AccessPath base string (``"this"``, ``"local:x"``,
    ``"global:g"``); ``start_type`` the static type of the base value;
    ``start_is_tree`` whether that type is a tree type (vs opaque class).
    """
    steps: list[Step] = []
    current_type = start_type
    is_tree = start_is_tree
    for raw in raw_steps:
        if raw.pre_cast is not None:
            if not is_tree:
                raise ValidationError(
                    f"cast to {raw.pre_cast} applied to non-tree value"
                )
            if raw.pre_cast not in program.tree_types:
                raise ValidationError(f"cast to unknown tree type {raw.pre_cast!r}")
            if not (
                program.is_subtype(raw.pre_cast, current_type)
                or program.is_subtype(current_type, raw.pre_cast)
            ):
                raise ValidationError(
                    f"cast from {current_type} to unrelated type {raw.pre_cast}"
                )
            current_type = raw.pre_cast
        if is_tree:
            field = program.resolve_field(current_type, raw.name)
        else:
            opaque = program.opaque_classes.get(current_type)
            if opaque is None or raw.name not in opaque.fields:
                raise ValidationError(
                    f"type {current_type} has no member {raw.name!r}"
                )
            field = opaque.fields[raw.name]
        steps.append(Step(field=field, pre_cast=raw.pre_cast))
        if field.is_child:
            current_type = field.type_name
            is_tree = True
        else:
            current_type = field.type_name
            is_tree = False
    return AccessPath(base, tuple(steps))


def static_type_of_path(program: Program, path: AccessPath, this_type: str) -> str:
    """The static type a resolved path denotes (tree type for node paths)."""
    if not path.steps:
        if path.base == "this":
            return this_type
        raise ValidationError(f"cannot type bare path {path}")
    return path.steps[-1].field.type_name


class ProgramBuilder:
    """Assemble a Program from Python, with two-stage finalization.

    Usage::

        b = ProgramBuilder("demo")
        element = b.tree_class("Element", abstract=True)
        element.add_child("Next", "Element")
        element.add_data("Width", "int")
        b.freeze_types()
        method = b.method("Element", "computeWidth", virtual=True)
        method.body.append(...)
        program = b.build()
    """

    def __init__(self, name: str = "program"):
        self.program = Program(name)
        self._frozen = False

    # -- type-level -------------------------------------------------------

    def tree_class(
        self,
        name: str,
        bases: Iterable[str] = (),
        abstract: bool = False,
    ) -> TreeType:
        tree_type = TreeType(name, bases=list(bases), abstract=abstract)
        return self.program.add_tree_type(tree_type)

    def opaque_class(self, name: str, fields: dict[str, str] | None = None) -> OpaqueClass:
        cls = OpaqueClass(name)
        for field_name, type_name in (fields or {}).items():
            cls.add_field(field_name, type_name)
        return self.program.add_opaque_class(cls)

    def global_var(self, name: str, type_name: str):
        return self.program.add_global(name, type_name)

    def pure(
        self,
        name: str,
        params: Iterable[tuple[str, str]],
        return_type: str,
        impl: Optional[Callable] = None,
        reads_globals: Iterable[str] = (),
    ) -> PureFunction:
        func = PureFunction(
            name=name,
            params=tuple(Param(n, t) for n, t in params),
            return_type=return_type,
            impl=impl,
            reads_globals=frozenset(reads_globals),
        )
        return self.program.add_pure_function(func)

    def freeze_types(self) -> None:
        self.program.finalize_types()
        self._frozen = True

    # -- method-level -------------------------------------------------------

    def method(
        self,
        owner: str,
        name: str,
        params: Iterable[tuple[str, str]] = (),
        virtual: bool = False,
    ) -> TraversalMethod:
        if not self._frozen:
            raise ValidationError("freeze_types() before adding methods")
        method = TraversalMethod(
            name=name,
            owner=owner,
            params=tuple(Param(n, t) for n, t in params),
            virtual=virtual,
        )
        self.program.tree_types[owner].add_method(method)
        return method

    def receiver_child(self, owner_type: str, child_name: str) -> Receiver:
        field = self.program.resolve_field(owner_type, child_name)
        if not field.is_child:
            raise ValidationError(f"{owner_type}.{child_name} is not a child")
        return Receiver(child=field)

    def entry(self, root_type: str, calls: Iterable[tuple[str, tuple]]) -> None:
        self.program.set_entry(
            root_type,
            [EntryCall(method_name=m, args=tuple(a)) for m, a in calls],
        )

    def build(self) -> Program:
        self.program.finalize()
        return self.program


def primitive_or_opaque(program: Program, type_name: str) -> bool:
    return is_primitive(type_name) or type_name in program.opaque_classes
