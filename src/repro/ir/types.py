"""Type-level IR: tree classes, fields, opaque data classes, globals.

Mirrors the paper's Fig. 3a: a *tree type* is an annotated class whose
instances are tree nodes; its fields are either *child fields* (pointers to
other tree types — the tree topology) or *data fields* (primitives or opaque
C++ objects). Tree types may inherit fields and virtual traversal methods
from other tree types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.method import TraversalMethod

PRIMITIVE_TYPES = ("int", "float", "bool", "double", "char")


def is_primitive(type_name: str) -> bool:
    return type_name in PRIMITIVE_TYPES


def default_primitive(type_name: str):
    """The zero value used when a node or object is default-constructed."""
    if type_name in ("int",):
        return 0
    if type_name in ("float", "double"):
        return 0.0
    if type_name == "bool":
        return False
    if type_name == "char":
        return "\0"
    raise ValidationError(f"unknown primitive type {type_name!r}")


@dataclass(frozen=True)
class DataField:
    """A non-child member: a primitive or an opaque object (paper: data field)."""

    name: str
    owner: str  # declaring tree type (or opaque class) name
    type_name: str  # a primitive name or an OpaqueClass name

    @property
    def label(self) -> str:
        """Automaton transition label; declaring-class-qualified for identity."""
        return f"{self.owner}.{self.name}"

    @property
    def is_child(self) -> bool:
        return False


@dataclass(frozen=True)
class ChildField:
    """A recursive member: a pointer to a node of some tree type."""

    name: str
    owner: str  # declaring tree type name
    type_name: str  # declared (static) tree type of the child

    @property
    def label(self) -> str:
        return f"{self.owner}.{self.name}"

    @property
    def is_child(self) -> bool:
        return True


Field = DataField | ChildField


@dataclass
class OpaqueClass:
    """A non-tree C++ class stored by value in a data field (e.g. BorderInfo).

    Opaque objects are plain bags of primitive fields. Accessing the object
    as a whole (passing it to a pure function, assigning it) touches every
    member, which the access analysis models with an ``ANY`` suffix.
    """

    name: str
    fields: dict[str, DataField] = field(default_factory=dict)

    def add_field(self, name: str, type_name: str) -> DataField:
        if name in self.fields:
            raise ValidationError(f"duplicate field {name!r} in class {self.name}")
        if not is_primitive(type_name):
            raise ValidationError(
                f"opaque class {self.name} field {name!r} must be primitive, "
                f"got {type_name!r}"
            )
        data_field = DataField(name=name, owner=self.name, type_name=type_name)
        self.fields[name] = data_field
        return data_field


@dataclass
class GlobalVar:
    """A global variable (an *off-tree* location in the paper's terms)."""

    name: str
    type_name: str  # primitive or opaque class

    @property
    def label(self) -> str:
        return f"::{self.name}"


class TreeType:
    """An annotated tree class: children, data fields, traversal methods."""

    def __init__(self, name: str, bases: Optional[list[str]] = None,
                 abstract: bool = False):
        self.name = name
        self.bases: list[str] = list(bases or [])
        self.abstract = abstract
        self.children: dict[str, ChildField] = {}
        self.data: dict[str, DataField] = {}
        self.data_defaults: dict[str, object] = {}
        self.methods: dict[str, "TraversalMethod"] = {}

    def add_child(self, name: str, type_name: str) -> ChildField:
        self._check_fresh(name)
        child = ChildField(name=name, owner=self.name, type_name=type_name)
        self.children[name] = child
        return child

    def add_data(self, name: str, type_name: str, default=None) -> DataField:
        self._check_fresh(name)
        data_field = DataField(name=name, owner=self.name, type_name=type_name)
        self.data[name] = data_field
        if default is not None:
            self.data_defaults[name] = default
        return data_field

    def add_method(self, method: "TraversalMethod") -> None:
        if method.name in self.methods:
            raise ValidationError(
                f"duplicate traversal {method.name!r} on {self.name}"
            )
        self.methods[method.name] = method

    def own_fields(self) -> Iterable[Field]:
        yield from self.children.values()
        yield from self.data.values()

    def _check_fresh(self, name: str) -> None:
        if name in self.children or name in self.data:
            raise ValidationError(f"duplicate field {name!r} on {self.name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeType({self.name!r}, bases={self.bases})"
