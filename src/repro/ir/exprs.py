"""Expression IR (paper Fig. 3c).

Expressions are side-effect-free: constants, data accesses, binary/unary
operators, and calls to ``_pure_`` functions (whose bodies are opaque and
treated as read-only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.ir.access import AccessPath

BINARY_OPS = {
    "+", "-", "*", "/", "%",
    "<", "<=", ">", ">=", "==", "!=",
    "&&", "||",
}

UNARY_OPS = {"-", "!"}


@dataclass(frozen=True)
class Const:
    value: Union[int, float, bool, str]
    type_name: str = "int"

    def __str__(self) -> str:
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


@dataclass(frozen=True)
class DataAccess:
    """Read of a data location through an access path (on-tree or off-tree)."""

    path: AccessPath

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class BinOp:
    op: str
    lhs: "Expr"
    rhs: "Expr"

    def __str__(self) -> str:
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp:
    op: str
    operand: "Expr"

    def __str__(self) -> str:
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class PureCall:
    """Call to a pure function. Bodies are unanalyzed Python callables;
    the ``pure`` annotation promises read-only behaviour (paper rule 15)."""

    func_name: str
    args: tuple["Expr", ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        rendered = ", ".join(str(arg) for arg in self.args)
        return f"{self.func_name}({rendered})"


Expr = Union[Const, DataAccess, BinOp, UnaryOp, PureCall]


def walk_expr(expr: Expr):
    """Yield every sub-expression (preorder)."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.lhs)
        yield from walk_expr(expr.rhs)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, PureCall):
        for arg in expr.args:
            yield from walk_expr(arg)


def expr_data_accesses(expr: Expr) -> list[AccessPath]:
    """All data access paths read by the expression."""
    return [sub.path for sub in walk_expr(expr) if isinstance(sub, DataAccess)]


def expr_cost(expr: Expr) -> int:
    """Static instruction-cost estimate of evaluating the expression.

    Used by the runtime cost model: one unit per operator, per constant
    materialization, per memory access step, and a small fixed cost per
    pure-function invocation (their bodies execute natively in both the
    fused and unfused programs, so a symmetric constant suffices).
    """
    total = 0
    for sub in walk_expr(expr):
        if isinstance(sub, (BinOp, UnaryOp)):
            total += 1
        elif isinstance(sub, Const):
            total += 1
        elif isinstance(sub, DataAccess):
            total += max(1, len(sub.path.steps))
        elif isinstance(sub, PureCall):
            total += 3
    return total
