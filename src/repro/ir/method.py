"""Traversal methods and pure functions (paper Fig. 3b, rules 4 and 15)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.ir.stmts import Stmt


@dataclass(frozen=True)
class Param:
    """A by-value traversal parameter (primitive or opaque object)."""

    name: str
    type_name: str

    def __str__(self) -> str:
        return f"{self.type_name} {self.name}"


@dataclass
class TraversalMethod:
    """A traversal member method of a tree type.

    ``owner`` is the declaring tree type name; dynamic dispatch resolves a
    call through the hierarchy to the most-derived override (``virtual``).
    The interpreter treats non-virtual methods identically except that the
    cost model does not charge a dispatch for them.
    """

    name: str
    owner: str
    params: tuple[Param, ...] = ()
    body: list[Stmt] = field(default_factory=list)
    virtual: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}::{self.name}"

    def signature_key(self) -> tuple:
        """Used to check that overrides match the overridden signature."""
        return (self.name, tuple((p.type_name) for p in self.params))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraversalMethod({self.qualified_name})"


@dataclass
class PureFunction:
    """A ``_pure_`` function: unanalyzed body, promised read-only.

    The reproduction binds each pure function to a Python callable. Pure
    functions may declare ``reads_globals`` for extra conservatism; by
    default they only read their (by-value) arguments, which matches the
    paper's treatment of them as read-only helpers.
    """

    name: str
    params: tuple[Param, ...] = ()
    return_type: str = "int"
    impl: Optional[Callable] = None
    reads_globals: frozenset[str] = frozenset()

    def __call__(self, *args):
        if self.impl is None:
            raise TypeError(f"pure function {self.name!r} has no bound impl")
        return self.impl(*args)
