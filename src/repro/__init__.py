"""Grafter reproduction: sound, fine-grained traversal fusion for
heterogeneous trees (PLDI 2019).

The front door is the unified workload API (:mod:`repro.api`)::

    import repro

    @repro.schema ... / @repro.traversal ...   # embedded definitions
    w = repro.Workload(...)                    # or bundle a string DSL
    repro.Session(cache_dir=...).compile(w).run(trees)

Lower layers stay importable directly: compile through
:mod:`repro.pipeline`; run with :mod:`repro.runtime` (metering
interpreter) or :mod:`repro.codegen` (generated Python); serve with
:mod:`repro.service`.
"""

__version__ = "0.7.0"

# the public API surface re-exported from repro.api, resolved lazily so
# `from repro import __version__` (used by low-level modules like the
# artifact store) never drags the whole compile stack into the import
_API_EXPORTS = frozenset(
    {
        "Global",
        "cast",
        "default_globals",
        "entry",
        "entry_calls",
        "lower",
        "lower_module",
        "pure",
        "schema",
        "traversal",
        "Workload",
        "Session",
        "CompiledWorkload",
        "RunOutcome",
    }
)


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | _API_EXPORTS)
