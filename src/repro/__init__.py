"""Grafter reproduction: sound, fine-grained traversal fusion for
heterogeneous trees (PLDI 2019).

Compile through :mod:`repro.pipeline`; run with :mod:`repro.runtime`
(metering interpreter) or :mod:`repro.codegen` (generated Python).
"""

__version__ = "0.2.0"
