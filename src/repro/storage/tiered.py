"""Tier composition: one read-through store over memory → disk → peers.

A :class:`TieredStore` is what the compile driver (and the service)
actually talk to. It walks its tiers in order for every lookup, and on
a hit **promotes** the artifact into every writable tier above the one
that served it — a disk hit lands in memory for the rest of the
process, a peer hit lands on the local disk *and* in memory, so the
peer is asked once per artifact per store, not once per compile. Writes
("publication") go to every writable tier, with disk writes further
gated by the compile's ``persist`` option (a ``persist=False`` reader
must never dirty a shared store) — which is also why promotion and
publication share one writability test.

The usual stack, built by the driver from one ``CompileOptions``::

    MemoryTier (the compile cache)      — always first
    DiskTier   (options.cache_dir)      — when a store is configured
    PeerTier*  (options.peers, in order) — read-only warm sources

Any prefix/subset works: a memory-only store is the classic in-process
cache; a peers-only store is a diskless read-through client. ``gc``
and ``stats`` fan out per tier, labelled, which is what the ``repro
store gc`` CLI and the service's ``POST /gc`` / tier-labelled
``/stats`` surface.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro import obs
from repro.storage.base import ResultKey, Tier

# lookup outcomes by kind (result|unit) and outcome (a tier label on a
# hit, "miss" otherwise) — the registry face of the tiers' own stats()
_LOOKUPS = obs.REGISTRY.counter(
    "repro_storage_lookups_total",
    "tiered-store lookups by artifact kind and serving tier",
    labels=("kind", "outcome"),
)


class TieredStore:
    """Read-through composition of storage tiers (see module doc)."""

    def __init__(self, tiers: Sequence[Tier], persist: bool = True):
        self.tiers = [tier for tier in tiers if tier is not None]
        self.persist = persist

    def __bool__(self) -> bool:
        return bool(self.tiers)

    # -- tier selection -------------------------------------------------

    def writable(self, tier: Tier) -> bool:
        """Publication/promotion target? Peers never are; disk only
        when this compile may persist."""
        return tier.writable and (tier.kind != "disk" or self.persist)

    @property
    def memory(self) -> Optional[Tier]:
        for tier in self.tiers:
            if tier.kind == "memory":
                return tier
        return None

    # -- results --------------------------------------------------------

    def get_result(self, key: ResultKey):
        """First tier that holds the result wins; the hit is promoted
        into every writable tier above it (memory adoptions are marked
        ``promoted`` so their hit/miss bookkeeping stays honest).

        Durable tiers serve through the blob face (``fetch_result``),
        so a peer hit is promoted onto the local disk by republishing
        the peer's exact payload bytes — no re-pickle on the hot
        cross-process warm path (see :meth:`DiskTier.promote_result`).
        """
        with obs.span("storage.result") as span:
            for depth, tier in enumerate(self.tiers):
                fetch = getattr(tier, "fetch_result", None)
                if fetch is not None:
                    got = fetch(key)
                    if got is None:
                        continue
                    result, blob = got
                else:
                    result = tier.get_result(key)
                    if result is None:
                        continue
                    blob = None
                for upper in self.tiers[:depth]:
                    if not self.writable(upper):
                        continue
                    promote = getattr(upper, "promote_result", None)
                    if blob is not None and promote is not None:
                        promote(key, result, blob)
                    else:
                        upper.put_result(key, result, promoted=True)
                span.set(hit=True, tier=tier.label, depth=depth)
                _LOOKUPS.labels(kind="result", outcome=tier.label).inc()
                return result
            span.set(hit=False)
            _LOOKUPS.labels(kind="result", outcome="miss").inc()
            return None

    def put_result(self, key: ResultKey, result) -> None:
        for tier in self.tiers:
            if self.writable(tier):
                tier.put_result(key, result)

    # -- units ----------------------------------------------------------

    def get_unit(self, pass_name: str, key: str):
        """``(artifact, serving tier)`` or ``None`` — callers
        (:class:`~repro.pipeline.units.UnitArtifacts`) use the tier to
        attribute the hit in per-pass counters. Unit promotion is
        unconditional into writable tiers: a unit fetched from a peer
        belongs on the local disk so the next process doesn't re-fetch.
        """
        with obs.span("storage.unit", pass_name=pass_name) as span:
            for depth, tier in enumerate(self.tiers):
                fetch = getattr(tier, "fetch_unit", None)
                if fetch is not None:
                    got = fetch(pass_name, key)
                    if got is None:
                        continue
                    artifact, blob = got
                else:
                    artifact = tier.get_unit(pass_name, key)
                    if artifact is None:
                        continue
                    blob = None
                for upper in self.tiers[:depth]:
                    if not self.writable(upper):
                        continue
                    promote = getattr(upper, "promote_unit", None)
                    if blob is not None and promote is not None:
                        promote(pass_name, key, artifact, blob)
                    else:
                        upper.put_unit(pass_name, key, artifact)
                span.set(hit=True, tier=tier.label, depth=depth)
                _LOOKUPS.labels(kind="unit", outcome=tier.label).inc()
                return artifact, tier
            span.set(hit=False)
            _LOOKUPS.labels(kind="unit", outcome="miss").inc()
            return None

    def put_unit(
        self, pass_name: str, key: str, artifact, spill: bool = False
    ) -> None:
        """Publish one freshly computed unit: always to memory; to disk
        only for passes that opted into spilling (``spill``)."""
        for tier in self.tiers:
            if not self.writable(tier):
                continue
            if tier.kind != "memory" and not spill:
                continue
            tier.put_unit(pass_name, key, artifact)

    # -- maintenance ----------------------------------------------------

    def gc(
        self,
        pass_name: Optional[str] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """Run one GC policy across every writable tier (the same
        writability test as publication — a ``persist=False`` store
        stays untouched); returns the per-tier summaries plus a
        total."""
        if (
            pass_name is None
            and max_age_seconds is None
            and max_bytes is None
        ):
            raise ValueError(
                "gc needs a pass_name, max_age_seconds, and/or max_bytes"
            )
        if pass_name is not None:
            from repro.storage.base import is_safe_pass_name

            if not is_safe_pass_name(pass_name):
                raise ValueError(f"invalid pass name {pass_name!r}")
        per_tier = {}
        removed = 0
        reclaimed = 0
        for tier in self.tiers:
            if not self.writable(tier):
                continue
            summary = tier.gc(
                pass_name=pass_name,
                max_age_seconds=max_age_seconds,
                max_bytes=max_bytes,
            )
            per_tier[tier.label] = summary
            removed += summary.get("removed", 0)
            reclaimed += summary.get("reclaimed_bytes", 0)
        per_tier["total"] = {
            "removed": removed,
            "reclaimed_bytes": reclaimed,
        }
        return per_tier

    def stats(self) -> list[dict]:
        """One labelled record per tier, in lookup order."""
        return [
            {"label": tier.label, "kind": tier.kind, **tier.stats()}
            for tier in self.tiers
        ]
