"""The in-process tier: one byte-budgeted LRU over three sections.

This replaces the old ``CompileCache`` internals. The three artifact
sections it kept — whole compile results, exec'd module artifacts, and
per-unit pass artifacts — survive, but they now share **one byte
budget** under a **global LRU**: every entry carries an approximate
byte size and a recency stamp, and when the tier is over budget the
globally least-recently-used entry goes first, whichever section it
lives in. (The old unit layer was capped by entry count only — the
ROADMAP's "no cap on the memory unit layer's byte footprint" item.)
The per-section entry-count caps remain as a second bound so a flood
of tiny entries cannot crowd the dictionaries either.

Sizes are approximations: strings and bytes by length, objects by a
shallow scan of their string-valued fields (two levels deep, which
catches the generated-source payloads that dominate results and
compiled modules) plus a nominal overhead. Deliberately *not* a
pickle round trip — sizing runs on every cache store, the hottest
storage path there is, and must stay O(fields), not O(artifact).
Budget enforcement is about orders of magnitude, not accounting.

Operations take an internal lock — the batch executor's worker threads
share one tier.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Optional

from repro.storage.base import ResultKey

_DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_NOMINAL_OBJECT_BYTES = 2048


def approx_size(value, _depth: int = 2) -> int:
    """Approximate in-memory footprint of one cached value, in bytes.

    Cheap by construction (no serialization): byte/str payloads by
    length, everything else by a shallow walk over ``__dict__`` string
    fields — the text the big artifacts actually carry (a compile
    result's generated sources, a compiled module's source) — plus a
    flat per-object overhead.
    """
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    size = _NOMINAL_OBJECT_BYTES
    if _depth <= 0:
        return size
    fields = getattr(value, "__dict__", None)
    if fields:
        for attr in fields.values():
            if isinstance(attr, (str, bytes)):
                size += len(attr)
            elif getattr(attr, "__dict__", None):
                size += approx_size(attr, _depth - 1)
    return size


@dataclass
class _Entry:
    value: object
    size: int
    stamp: int  # global LRU clock (higher = more recent)
    wall: float  # insertion wall time (gc max_age)


class MemoryTier:
    """Byte-budgeted LRU of results, module artifacts, and unit
    artifacts — the first tier of every :class:`TieredStore`."""

    kind = "memory"
    label = "memory"
    writable = True

    def __init__(
        self,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        max_entries: int = 128,
        max_units: int = 4096,
    ):
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        # units are small and numerous (one per method / fused sequence
        # per pass), so they get their own, much larger count cap — a
        # single render compile touches ~150 of them
        self.max_units = max_units
        self._lock = threading.RLock()
        self._results: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._artifacts: OrderedDict[Hashable, _Entry] = OrderedDict()
        self._units: OrderedDict[tuple[str, str], _Entry] = OrderedDict()
        self._bytes = 0
        self._clock = 0
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.unit_hits = 0
        self.unit_misses = 0
        self.evictions = 0

    # -- internals ------------------------------------------------------

    @staticmethod
    def _result_key(key) -> tuple[str, str]:
        """Accept a :class:`ResultKey` or the legacy ``(source hash,
        options hash)`` tuple — the memory tier keys on the full options
        hash either way."""
        if isinstance(key, ResultKey):
            return key.memory_key
        return key

    def _touch(self, section: OrderedDict, key) -> None:
        self._clock += 1
        section[key].stamp = self._clock
        section.move_to_end(key)

    def _insert(self, section: OrderedDict, key, value, count_cap: int) -> None:
        old = section.get(key)
        if old is not None:
            self._bytes -= old.size
        self._clock += 1
        entry = _Entry(
            value=value,
            size=approx_size(value),
            stamp=self._clock,
            wall=time.time(),
        )
        section[key] = entry
        section.move_to_end(key)
        self._bytes += entry.size
        while len(section) > count_cap:
            self._pop_lru(section)
        self._enforce_budget()

    def _pop_lru(self, section: OrderedDict) -> None:
        _, entry = section.popitem(last=False)
        self._bytes -= entry.size
        self.evictions += 1

    def _enforce_budget(self) -> None:
        """Evict the globally least-recently-used entry (any section)
        until the tier fits the byte budget."""
        while self._bytes > self.max_bytes:
            victim_section = None
            victim_stamp = None
            for section in (self._results, self._artifacts, self._units):
                if not section:
                    continue
                head = next(iter(section.values()))
                if victim_stamp is None or head.stamp < victim_stamp:
                    victim_stamp = head.stamp
                    victim_section = section
            if victim_section is None:
                break
            self._pop_lru(victim_section)

    # -- results --------------------------------------------------------

    def get_result(self, key):
        with self._lock:
            entry = self._results.get(self._result_key(key))
            if entry is not None:
                self._touch(self._results, self._result_key(key))
                self.hits += 1
                return entry.value
            self.misses += 1
            return None

    def put_result(self, key, result, promoted: bool = False) -> None:
        """Adopt a result — ``promoted`` marks read-through promotion
        from a lower tier, which converts this lookup's recorded miss
        into a ``disk_hits`` (served-from-below) hit so the stats stay
        honest."""
        with self._lock:
            self._insert(
                self._results, self._result_key(key), result,
                self.max_entries,
            )
            if promoted:
                self.disk_hits += 1
                self.hits += 1
                self.misses -= 1

    # -- exec'd module artifacts ----------------------------------------

    def get_artifact(self, key: Hashable):
        with self._lock:
            entry = self._artifacts.get(key)
            if entry is None:
                return None
            self._touch(self._artifacts, key)
            return entry.value

    def put_artifact(self, key: Hashable, value) -> None:
        with self._lock:
            self._insert(self._artifacts, key, value, self.max_entries)

    # -- per-unit pass artifacts ----------------------------------------

    def get_unit(self, pass_name: str, key: str):
        """One pass's artifact for one compilation unit, or ``None``."""
        with self._lock:
            entry = self._units.get((pass_name, key))
            if entry is not None:
                self._touch(self._units, (pass_name, key))
                self.unit_hits += 1
                return entry.value
            self.unit_misses += 1
            return None

    def put_unit(self, pass_name: str, key: str, artifact) -> None:
        with self._lock:
            self._insert(
                self._units, (pass_name, key), artifact, self.max_units
            )

    # -- gc -------------------------------------------------------------

    def gc(
        self,
        pass_name: Optional[str] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """Drop unit artifacts by pass and/or age, or trim to a byte
        target. ``pass_name`` scopes to one pass's units (other passes'
        units and all results stay intact); without it the age policy
        covers every section and ``max_bytes`` tightens the global
        budget for this one sweep."""
        removed = 0
        reclaimed = 0
        now = time.time()
        # a pass-scoped call with no other policy means "drop the pass"
        drop_all = (
            pass_name is not None
            and max_age_seconds is None
            and max_bytes is None
        )
        with self._lock:
            sections = (
                (self._units,)
                if pass_name is not None
                else (self._results, self._artifacts, self._units)
            )
            for section in sections:
                for key in list(section):
                    entry = section[key]
                    if pass_name is not None and key[0] != pass_name:
                        continue
                    if max_age_seconds is not None:
                        if now - entry.wall < max_age_seconds:
                            continue
                    elif not drop_all:
                        continue
                    del section[key]
                    self._bytes -= entry.size
                    removed += 1
                    reclaimed += entry.size
            if max_bytes is not None:
                if pass_name is not None:
                    # LRU-trim this pass's units to the byte target
                    # (OrderedDict order is LRU-first)
                    scoped = [
                        (key, entry)
                        for key, entry in self._units.items()
                        if key[0] == pass_name
                    ]
                    total = sum(entry.size for _, entry in scoped)
                    for key, entry in scoped:
                        if total <= max_bytes:
                            break
                        del self._units[key]
                        self._bytes -= entry.size
                        total -= entry.size
                        removed += 1
                        reclaimed += entry.size
                else:
                    before_evictions = self.evictions
                    before_bytes = self._bytes
                    budget, self.max_bytes = self.max_bytes, max_bytes
                    self._enforce_budget()
                    self.max_bytes = budget
                    removed += self.evictions - before_evictions
                    reclaimed += before_bytes - self._bytes
        return {"removed": removed, "reclaimed_bytes": reclaimed}

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self._artifacts.clear()
            self._units.clear()
            self._bytes = 0
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.unit_hits = 0
            self.unit_misses = 0
            self.evictions = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._results),
                "artifacts": len(self._artifacts),
                "units": len(self._units),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "unit_hits": self.unit_hits,
                "unit_misses": self.unit_misses,
                "evictions": self.evictions,
            }
