"""The read-only peer tier: another host's (or process's) warm store.

Content addressing makes artifact stores shareable — the keys are pure
content hashes, so *any* store populated by a compatible repro version
can serve this process's compiles. A :class:`PeerTier` taps one of two
peer shapes:

* a **directory** — a second store root (an NFS mount, an rsync'd or
  CI-restored copy, another user's cache dir). Files are read through
  the same v1 layout as :class:`~repro.storage.disk.DiskTier`, but
  strictly read-only: no recency touches, no corrupt-entry deletion —
  the peer's hygiene is the peer's business.
* an **HTTP endpoint** — a running ``repro serve`` exposing
  ``GET /artifact/result/<source>/<output>`` and
  ``GET /artifact/unit/<pass>/<key>``, which return the identical
  payload bytes the disk tier stores. This is the multi-host warm
  path: one host compiles, every other host's first compile is a fetch
  plus an unpickle.

Peers sit *below* disk in a :class:`~repro.storage.tiered.TieredStore`,
so a peer hit is promoted into the local tiers (read-through) and the
peer is asked once per artifact, not once per run. Every failure mode —
peer unreachable, timeout, 404, truncated body, corrupt pickle,
foreign format or repro version — is a counted miss, never an error:
a peer can only ever make compiles faster.

**Trust model**: payloads are pickles, and a hit is promoted into the
local store verbatim — a peer you name can execute code in every
process that compiles through it. Name only peers you would let write
your local store, and reach HTTP peers over a network you trust (the
transport does no authentication or payload signing; tunnel it if the
network is not yours).
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request
from pathlib import Path
from typing import Optional

from repro.storage.base import (
    FORMAT_VERSION,
    ResultKey,
    decode_result,
    decode_unit,
    is_content_hash as _is_hash,
    is_safe_pass_name as _safe_pass_name,
)


class PeerTier:
    """Read-only warm source: a second store root or a remote server."""

    kind = "peer"
    writable = False

    def __init__(self, target: str, timeout: float = 5.0):
        self.target = str(target).rstrip("/")
        self.timeout = timeout
        self.is_http = self.target.startswith(
            ("http://", "https://")
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.errors = 0
        self.unit_hits = 0
        self.unit_misses = 0
        self.unit_errors = 0

    @property
    def label(self) -> str:
        return f"peer:{self.target}"

    # -- the Tier face --------------------------------------------------

    def get_result(self, key: ResultKey):
        got = self.fetch_result(key)
        return None if got is None else got[0]

    def fetch_result(self, key: ResultKey):
        """``(result, payload blob)`` or ``None`` — the blob is the
        peer's exact payload bytes, already validated by decode, which
        the :class:`~repro.storage.tiered.TieredStore` republishes into
        the local disk tier verbatim (promotion without re-pickling)."""
        blob = self._fetch_result(key.source_hash, key.output_hash)
        if blob is None:
            with self._lock:
                self.misses += 1
            return None
        try:
            result = decode_result(blob)
        except Exception:
            # corrupt/truncated/foreign payload: a counted clean miss
            with self._lock:
                self.errors += 1
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return result, blob

    def put_result(self, key: ResultKey, result, promoted: bool = False):
        raise TypeError("PeerTier is read-only")

    def get_unit(self, pass_name: str, key: str):
        got = self.fetch_unit(pass_name, key)
        return None if got is None else got[0]

    def fetch_unit(self, pass_name: str, key: str):
        """``(artifact, payload blob)`` or ``None`` — the unit-artifact
        twin of :meth:`fetch_result`."""
        if not (_safe_pass_name(pass_name) and _is_hash(key)):
            with self._lock:
                self.unit_misses += 1
            return None
        blob = self._fetch_unit(pass_name, key)
        if blob is None:
            with self._lock:
                self.unit_misses += 1
            return None
        try:
            artifact = decode_unit(blob)
        except Exception:
            with self._lock:
                self.unit_errors += 1
                self.unit_misses += 1
            return None
        with self._lock:
            self.unit_hits += 1
        return artifact, blob

    def put_unit(self, pass_name: str, key: str, artifact) -> None:
        raise TypeError("PeerTier is read-only")

    def gc(self, pass_name=None, max_age_seconds=None, max_bytes=None):
        """Peers are read-only; there is nothing local to reclaim."""
        return {"removed": 0, "reclaimed_bytes": 0}

    # -- transport ------------------------------------------------------

    def _fetch_result(
        self, source_hash: str, output_hash: str
    ) -> Optional[bytes]:
        if not (_is_hash(source_hash) and _is_hash(output_hash)):
            return None
        if self.is_http:
            return self._http_get(
                f"/artifact/result/{source_hash}/{output_hash}"
            )
        return self._read_file(
            Path(self.target)
            / f"v{FORMAT_VERSION}"
            / source_hash[:2]
            / f"{source_hash}-{output_hash}.pkl"
        )

    def _fetch_unit(self, pass_name: str, key: str) -> Optional[bytes]:
        if self.is_http:
            return self._http_get(f"/artifact/unit/{pass_name}/{key}")
        return self._read_file(
            Path(self.target)
            / f"v{FORMAT_VERSION}"
            / "units"
            / pass_name
            / key[:2]
            / f"{key}.pkl"
        )

    def _read_file(self, path: Path) -> Optional[bytes]:
        try:
            return path.read_bytes()
        except OSError:
            return None

    def _http_get(self, route: str) -> Optional[bytes]:
        try:
            with urllib.request.urlopen(
                self.target + route, timeout=self.timeout
            ) as response:
                if response.status != 200:
                    return None
                return response.read()
        except urllib.error.HTTPError as error:
            if error.code != 404:
                # 404 is an ordinary miss; anything else is peer damage
                with self._lock:
                    self.errors += 1
            return None
        except (urllib.error.URLError, OSError, ValueError):
            # unreachable/timeout/refused: the peer is an optimization,
            # not a dependency — fall through to a local compile
            with self._lock:
                self.errors += 1
            return None

    # -- maintenance ----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "target": self.target,
                "transport": "http" if self.is_http else "path",
                "hits": self.hits,
                "misses": self.misses,
                "errors": self.errors,
                "unit_hits": self.unit_hits,
                "unit_misses": self.unit_misses,
                "unit_errors": self.unit_errors,
            }


_PEERS: dict[str, PeerTier] = {}
_PEERS_LOCK = threading.Lock()


def peer_tier_for(target: str) -> PeerTier:
    """Process-wide peer registry, one instance per target, so every
    compile naming the same peer shares its hit/error counters (and the
    service ``/stats`` endpoint can report them). Directory targets
    dedupe by resolved path, like the disk registry."""
    import os

    target = str(target)
    if target.startswith(("http://", "https://")):
        # normalize like PeerTier.__init__ does, so "http://h:1/" and
        # "http://h:1" share one instance (and one set of counters)
        target = target.rstrip("/")
    else:
        target = os.path.abspath(target)
    with _PEERS_LOCK:
        peer = _PEERS.get(target)
        if peer is None:
            peer = PeerTier(target)
            _PEERS[target] = peer
        return peer
