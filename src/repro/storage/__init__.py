"""Tiered artifact storage: one substrate under every cache and store.

PR 2–4 grew three parallel storage mechanisms — the in-memory compile
cache's result/unit LRUs, the on-disk artifact store, and the per-pass
unit view — each with its own eviction rules and stats. This package
unifies them behind one :class:`Tier` protocol and one composition:

* :class:`MemoryTier` — the in-process layer: a byte-budgeted LRU over
  compile results, exec'd module artifacts, and per-unit pass
  artifacts (``repro.pipeline.cache.CompileCache`` is now a thin shim
  over it).
* :class:`DiskTier` — the durable layer: the v1 content-addressed
  artifact directory with atomic writes, LRU byte-budget eviction,
  compaction, and per-pass GC (``repro.service.store.ArtifactStore``
  is now a thin shim over it; existing stores stay readable).
* :class:`PeerTier` — a read-only warm source: a second store root or
  a remote ``repro serve``'s ``/artifact`` endpoint, fetched
  read-through and promoted into the local tiers — the multi-host
  warm-compile path.
* :class:`TieredStore` — composes them with unified get/put/stats and
  GC policies; built per compile by the pipeline driver from
  ``CompileOptions(cache_dir=..., peers=...)``.

The durable exchange format (versioned pickled payloads) lives in
:mod:`repro.storage.base` and is shared by disk files, peer fetches,
and the service's ``/artifact`` endpoint.
"""

from repro.storage.base import (
    FORMAT_VERSION,
    ResultKey,
    Tier,
    decode_result,
    decode_unit,
    encode_result,
    encode_unit,
    is_content_hash,
    is_safe_pass_name,
)
from repro.storage.disk import DiskTier, disk_tier_for
from repro.storage.memory import MemoryTier, approx_size
from repro.storage.peer import PeerTier, peer_tier_for
from repro.storage.tiered import TieredStore

__all__ = [
    "FORMAT_VERSION",
    "DiskTier",
    "MemoryTier",
    "PeerTier",
    "ResultKey",
    "Tier",
    "TieredStore",
    "approx_size",
    "decode_result",
    "decode_unit",
    "disk_tier_for",
    "encode_result",
    "encode_unit",
    "is_content_hash",
    "is_safe_pass_name",
    "peer_tier_for",
]
