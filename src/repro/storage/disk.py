"""The durable tier: a persistent, content-addressed artifact directory.

This is the former ``repro.service.store.ArtifactStore``, absorbed into
the storage stack unchanged at the format level — the v1 layout, the
atomic temp-file + ``os.replace`` publishes, the LRU byte-budget
eviction, and the compaction sweep all survive, so **every existing v1
store stays readable without migration**. What's new is the
:class:`~repro.storage.base.Tier` face (``get_result``/``put_result``/
``get_unit``/``put_unit``) and per-pass :meth:`gc`, which is how the
:class:`~repro.storage.tiered.TieredStore` composes a disk directory
with the memory LRU above it and read-only peers below.

Layout (versioned so future formats never misread old files)::

    <root>/v1/<source_hash[:2]>/<source_hash>-<output_hash>.pkl
    <root>/v1/units/<pass>/<unit_key[:2]>/<unit_key>.pkl

The first shape is a full :class:`CompileResult` keyed on ``(source
hash, output-options hash)`` — the *output-affecting* options only
(``CompileOptions.output_hash``), so caching knobs don't fragment the
key space: a ``persist=False`` reader hits entries a ``persist=True``
writer left, and a store directory keeps working after being moved,
mounted elsewhere, or exported to another host. The second is one
pass's artifact for one *compilation unit* (see
:mod:`repro.pipeline.units`), which is how an edited workload's
recompile reuses the unchanged units other processes compiled.

Each file is one payload from :mod:`repro.storage.base` — both the
format and the repro version are checked on load, so an entry written
by a different repro version is a clean miss (and deleted) rather than
an attribute-drift surprise. Compiled modules travel as generated
source (their exec'd namespaces rebuild lazily on first run — see
``codegen.python_backend``), so a warm-store compile costs a file read
plus an unpickle, not a module exec.

Concurrency: writes go to a temp file in the destination directory and
are published with ``os.replace`` (atomic on POSIX), so a reader never
observes a half-written artifact and two processes racing to spill the
same key both leave a complete file. Corrupt or unreadable entries are
deleted and treated as misses. Eviction is LRU by file mtime under a
total byte budget; ``load`` touches the file's mtime so recently served
artifacts survive.

Results whose programs carry non-portable pure-function impls (lambdas,
closures — anything keyed by ``id()``, see
:func:`repro.pipeline.options.impl_ref`) are never spilled: their cache
keys are not stable across processes, so persisting them could at best
never hit and at worst alias.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from pathlib import Path
from typing import Optional

from repro import __version__
from repro.storage.base import (
    FORMAT_VERSION,
    ResultKey,
    decode_result,
    decode_unit,
    encode_result,
    encode_unit,
    is_safe_pass_name,
)

_DEFAULT_MAX_BYTES = 256 * 1024 * 1024

# compact() only reclaims .tmp files older than this: younger ones may
# be a concurrent writer between mkstemp and os.replace
_TMP_GRACE_SECONDS = 60.0


class DiskTier:
    """On-disk LRU store of compile results, keyed by content hashes."""

    kind = "disk"
    writable = True

    def __init__(self, root: str, max_bytes: int = _DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.dir = self.root / f"v{FORMAT_VERSION}"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # running spill-bytes estimate so evict() only pays a full
        # directory scan when the budget is plausibly exceeded; the
        # first spill always scans, so bytes a *previous* process left
        # behind (a reopened or CI-restored store) count against the
        # budget too
        self._bytes_since_scan = 0
        self._scanned = False
        self.spills = 0
        self.spill_skips = 0
        self.spill_errors = 0
        self.loads = 0
        self.load_misses = 0
        self.load_errors = 0
        self.unit_spills = 0
        self.unit_spill_errors = 0
        self.unit_loads = 0
        self.unit_load_misses = 0
        self.unit_load_errors = 0
        self.evictions = 0
        self.compactions = 0
        self.compacted_entries = 0
        self.compacted_bytes = 0
        self.gc_runs = 0
        self.gc_removed = 0
        self.gc_reclaimed_bytes = 0

    @property
    def label(self) -> str:
        return f"disk:{self.root}"

    # -- paths ----------------------------------------------------------

    def path_for(self, source_hash: str, output_hash: str) -> Path:
        return (
            self.dir / source_hash[:2] / f"{source_hash}-{output_hash}.pkl"
        )

    def unit_path_for(self, pass_name: str, key: str) -> Path:
        """Per-unit pass artifacts live beside the full results, bucketed
        by pass name: ``<root>/v1/units/<pass>/<key[:2]>/<key>.pkl``."""
        return self.dir / "units" / pass_name / key[:2] / f"{key}.pkl"

    # -- the Tier face --------------------------------------------------

    def get_result(self, key: ResultKey):
        return self.load(key.source_hash, key.output_hash)

    def put_result(self, key: ResultKey, result, promoted: bool = False):
        # the disk key comes from the result's own hashes (identical to
        # the requested output half — only output fields participate)
        return self.spill(result)

    def get_unit(self, pass_name: str, key: str):
        return self.load_unit(pass_name, key)

    def put_unit(self, pass_name: str, key: str, artifact) -> None:
        self.spill_unit(pass_name, key, artifact)

    # -- the blob face (read-through promotion without re-encoding) -----

    def fetch_result(self, key: ResultKey):
        """``(result, payload blob)`` or ``None`` — the blob is the
        exact bytes on disk, which a :class:`TieredStore` hands to
        another durable tier's ``promote_result`` so promotion costs a
        file write, not a re-pickle."""
        return self._fetch(key.source_hash, key.output_hash)

    def promote_result(self, key: ResultKey, result, blob: bytes) -> bool:
        """Adopt a hit served by a lower tier, republishing its
        already-validated payload bytes verbatim."""
        return self.spill(result, blob=blob)

    def fetch_unit(self, pass_name: str, key: str):
        """``(artifact, payload blob)`` or ``None`` — the unit-artifact
        twin of :meth:`fetch_result`."""
        return self._fetch_unit(pass_name, key)

    def promote_unit(
        self, pass_name: str, key: str, artifact, blob: bytes
    ) -> bool:
        return self.spill_unit(pass_name, key, artifact, blob=blob)

    # -- read -----------------------------------------------------------

    def load(self, source_hash: str, output_hash: str):
        """The stored result for a key, or ``None``. Touches the entry's
        mtime (LRU recency); removes entries that fail to deserialize or
        were written by a different format/repro version."""
        got = self._fetch(source_hash, output_hash)
        return None if got is None else got[0]

    def _fetch(self, source_hash: str, output_hash: str):
        path = self.path_for(source_hash, output_hash)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.load_misses += 1
            return None
        try:
            result = decode_result(blob)
        except Exception:
            # a corrupt/foreign file is a miss; drop it so it cannot
            # keep failing (and cannot count against the byte budget)
            with self._lock:
                self.load_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self.loads += 1
        return result, blob

    # -- write ----------------------------------------------------------

    def spill(self, result, blob: Optional[bytes] = None) -> bool:
        """Persist one compile result (atomic publish; best-effort).

        Returns ``True`` when the artifact is on disk afterwards.
        Results with non-portable impls are skipped (counted in
        ``spill_skips``); serialization/IO failures are counted in
        ``spill_errors`` and never propagate — persistence is an
        optimization, not a correctness requirement. ``blob`` short-
        circuits serialization with an already-encoded payload (the
        promotion path: the bytes just decoded from a peer or another
        store are republished verbatim).
        """
        from repro.pipeline.options import impls_portable

        if result.program is None or not impls_portable(result.program):
            with self._lock:
                self.spill_skips += 1
            return False
        path = self.path_for(
            result.source_hash, result.options.output_hash()
        )
        if blob is None:
            try:
                blob = encode_result(result)
            except Exception:
                with self._lock:
                    self.spill_errors += 1
                return False
        if not self._publish(path, blob):
            with self._lock:
                self.spill_errors += 1
            return False
        with self._lock:
            self.spills += 1
            scan = self._account(len(blob))
        if scan:
            self.evict()
        return True

    def _publish(self, path: Path, blob: bytes) -> bool:
        """Atomic write (temp file + ``os.replace``); best-effort."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".spill-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        return True

    def _account(self, size: int) -> bool:
        """Grow the running byte estimate; True when a scan is due.
        Call with the lock held. The running estimate only grows between
        scans, so after the initial scan a full one happens at most once
        per max_bytes of spilled data."""
        self._bytes_since_scan += size
        return not self._scanned or self._bytes_since_scan > self.max_bytes

    # -- per-unit pass artifacts ----------------------------------------

    def spill_unit(
        self, pass_name: str, key: str, artifact,
        blob: Optional[bytes] = None,
    ) -> bool:
        """Persist one pass's artifact for one compilation unit.

        Unit artifacts (fusion plans, emitted module functions) never
        embed pure-function impls — generated code binds them at run
        time through ``RT.pure`` — so unlike full results they are
        always portable and need no ``impls_portable`` gate. ``blob``
        short-circuits serialization like :meth:`spill`.
        """
        if blob is None:
            try:
                blob = encode_unit(artifact)
            except Exception:
                with self._lock:
                    self.unit_spill_errors += 1
                return False
        if not self._publish(self.unit_path_for(pass_name, key), blob):
            with self._lock:
                self.unit_spill_errors += 1
            return False
        with self._lock:
            self.unit_spills += 1
            scan = self._account(len(blob))
        if scan:
            self.evict()
        return True

    def load_unit(self, pass_name: str, key: str):
        """The stored unit artifact, or ``None``. Same recency touch and
        corrupt/foreign-version handling as :meth:`load`."""
        got = self._fetch_unit(pass_name, key)
        return None if got is None else got[0]

    def _fetch_unit(self, pass_name: str, key: str):
        path = self.unit_path_for(pass_name, key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.unit_load_misses += 1
            return None
        try:
            artifact = decode_unit(blob)
        except Exception:
            with self._lock:
                self.unit_load_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self.unit_loads += 1
        return artifact, blob

    # -- eviction -------------------------------------------------------

    _RESULT_GLOB = "[0-9a-f][0-9a-f]/*.pkl"
    _UNIT_GLOB = "units/*/*/*.pkl"

    def _entries(
        self, patterns: tuple[str, ...] = (_RESULT_GLOB, _UNIT_GLOB)
    ) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for stored artifacts — by default both
        full results and per-unit pass artifacts, which share one LRU
        byte budget."""
        entries = []
        for pattern in patterns:
            for path in self.dir.glob(pattern):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def evict(self) -> int:
        """Delete least-recently-used artifacts until the store fits the
        byte budget. Returns the number of files removed."""
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            removed = 0
            for _, size, path in sorted(entries):
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
            self.evictions += removed
            self._bytes_since_scan = total
            self._scanned = True
            return removed

    # -- per-pass / policy gc -------------------------------------------

    def gc(
        self,
        pass_name: Optional[str] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """Policy-driven reclamation the LRU sweep can't express.

        ``pass_name`` scopes the sweep to one pass's unit artifacts
        (``units/<pass>/``), leaving every other pass's units and all
        full results untouched; without it the scope is the whole store.
        ``max_age_seconds`` drops scope entries whose mtime is older
        than that (0 drops the whole scope); ``max_bytes`` LRU-trims the
        scope to a byte target. A pass-scoped call with no other policy
        drops that pass's units outright; a completely bare ``gc()``
        would silently mean "delete everything" and is refused.
        """
        if (
            pass_name is None
            and max_age_seconds is None
            and max_bytes is None
        ):
            raise ValueError(
                "gc needs a pass_name, max_age_seconds, and/or "
                "max_bytes (use clear() to drop a whole store)"
            )
        if pass_name is not None and not is_safe_pass_name(pass_name):
            # the scope lands in a glob pattern under the store root; a
            # traversal-shaped name must never reach the filesystem
            # (POST /gc feeds this from network input)
            raise ValueError(f"invalid pass name {pass_name!r}")
        if pass_name is not None and max_age_seconds is None and (
            max_bytes is None
        ):
            max_age_seconds = 0.0  # "drop the pass"
        patterns = (
            (f"units/{pass_name}/*/*.pkl",)
            if pass_name is not None
            else (self._RESULT_GLOB, self._UNIT_GLOB)
        )
        removed = 0
        reclaimed = 0
        with self._lock:
            entries = sorted(self._entries(patterns))
            if max_age_seconds is not None:
                cutoff = time.time() - max_age_seconds
                kept = []
                for mtime, size, path in entries:
                    if mtime > cutoff:
                        kept.append((mtime, size, path))
                        continue
                    try:
                        path.unlink()
                    except OSError:
                        kept.append((mtime, size, path))
                        continue
                    removed += 1
                    reclaimed += size
                entries = kept
            if max_bytes is not None:
                total = sum(size for _, size, _ in entries)
                for mtime, size, path in entries:
                    if total <= max_bytes:
                        break
                    try:
                        path.unlink()
                    except OSError:
                        continue
                    total -= size
                    removed += 1
                    reclaimed += size
            # refresh the eviction estimate from what actually remains
            self._bytes_since_scan = sum(
                size for _, size, _ in self._entries()
            )
            self._scanned = True
            self.gc_runs += 1
            self.gc_removed += removed
            self.gc_reclaimed_bytes += reclaimed
        return {"removed": removed, "reclaimed_bytes": reclaimed}

    # -- compaction -----------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Drop every entry the current process could never serve.

        A long-lived store accumulates dead weight that LRU eviction
        alone never reclaims promptly: whole directory trees left by
        other *format* versions (normal loads never look inside them),
        entries written by other *repro* versions (every load of one is
        a miss-and-delete, but only when its exact key is asked for),
        corrupt files, and stale ``.spill-*.tmp`` droppings from
        crashed writers (fresh ones are spared — they may be a live
        writer mid-publish). Compaction scans once, deletes all of
        them, and refreshes the byte estimate. Returns the per-run
        summary; cumulative counters land in :meth:`stats` (and
        therefore the service ``/stats`` endpoint).
        """
        import shutil

        removed = 0
        reclaimed = 0
        # whole trees left by other *format* versions (a FORMAT_VERSION
        # bump with a shared or CI-restored store dir): normal loads
        # never even look inside them, so only compaction can reclaim
        for version_dir in self.root.glob("v*"):
            if version_dir == self.dir or not version_dir.is_dir():
                continue
            for stale in version_dir.rglob("*"):
                if stale.is_file():
                    removed += 1
                    try:
                        reclaimed += stale.stat().st_size
                    except OSError:
                        pass
            shutil.rmtree(version_dir, ignore_errors=True)
        now = time.time()
        for tmp in self.dir.rglob(".spill-*.tmp"):
            try:
                stat = tmp.stat()
                # a fresh tmp file may be a concurrent writer mid-spill
                # (created by mkstemp, not yet os.replace'd) — only
                # files old enough to be crash droppings are dead
                if now - stat.st_mtime < _TMP_GRACE_SECONDS:
                    continue
                size = stat.st_size
                tmp.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        for _, _, path in self._entries():
            try:
                payload = pickle.loads(path.read_bytes())
                keep = (
                    payload.get("format") == FORMAT_VERSION
                    and payload.get("repro") == __version__
                )
            except Exception:
                keep = False
            if keep:
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        with self._lock:
            self.compactions += 1
            self.compacted_entries += removed
            self.compacted_bytes += reclaimed
            # the estimate drove eviction scans; refresh it from disk
            self._bytes_since_scan = sum(
                size for _, size, _ in self._entries()
            )
            self._scanned = True
        return {"removed": removed, "reclaimed_bytes": reclaimed}

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        """Full-result entries only (unit artifacts are counted in
        :meth:`stats` under ``unit_entries``)."""
        return len(self._entries((self._RESULT_GLOB,)))

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def clear(self) -> None:
        for _, _, path in self._entries():
            try:
                path.unlink()
            except OSError:
                pass

    def stats(self) -> dict[str, int]:
        results = self._entries((self._RESULT_GLOB,))
        units = self._entries((self._UNIT_GLOB,))
        return {
            "entries": len(results),
            "unit_entries": len(units),
            "bytes": sum(size for _, size, _ in results)
            + sum(size for _, size, _ in units),
            "spills": self.spills,
            "spill_skips": self.spill_skips,
            "spill_errors": self.spill_errors,
            "loads": self.loads,
            "load_misses": self.load_misses,
            "load_errors": self.load_errors,
            "unit_spills": self.unit_spills,
            "unit_spill_errors": self.unit_spill_errors,
            "unit_loads": self.unit_loads,
            "unit_load_misses": self.unit_load_misses,
            "unit_load_errors": self.unit_load_errors,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "compacted_entries": self.compacted_entries,
            "compacted_bytes": self.compacted_bytes,
            "gc_runs": self.gc_runs,
            "gc_removed": self.gc_removed,
            "gc_reclaimed_bytes": self.gc_reclaimed_bytes,
        }


_TIERS: dict[str, DiskTier] = {}
_TIERS_LOCK = threading.Lock()


def disk_tier_for(root: str) -> DiskTier:
    """Process-wide disk-tier registry, one instance per resolved
    directory (so every compile naming the same ``cache_dir`` shares
    counters and the eviction lock)."""
    resolved = os.path.abspath(root)
    with _TIERS_LOCK:
        tier = _TIERS.get(resolved)
        if tier is None:
            tier = DiskTier(resolved)
            _TIERS[resolved] = tier
        return tier
