"""The tier contract and the shared on-wire artifact payloads.

Every storage layer in the system — the in-process byte-budgeted LRU,
the on-disk artifact directory, a read-only peer (a second store root
or a remote ``repro serve``) — implements one small protocol,
:class:`Tier`, over two artifact shapes:

* **results** — whole :class:`~repro.pipeline.options.CompileResult`
  records, addressed by :class:`ResultKey`. The memory tier keys on the
  *full* options hash (every knob participates, so nothing can alias);
  durable tiers key on the *output* options hash (caching knobs must
  not fragment a store shared across processes or hosts — see
  ``CompileOptions.output_hash``).
* **units** — one pass's artifact for one compilation unit (a fusion
  plan, an emitted module function — see :mod:`repro.pipeline.units`),
  addressed by ``(pass name, content key)``.

Durable tiers exchange artifacts as versioned pickled payloads; the
encode/decode helpers here are the single source of truth for that
format, shared by the disk tier (files), the peer tier (files or HTTP
bodies), and the service's ``/artifact`` endpoint — which is what makes
a store directory, a mounted copy of it, and a remote server's cache
interchangeable warm sources. Both the format version *and* the repro
version are checked on decode: pickled records mirror in-memory class
layouts, so a foreign entry is a clean miss, never an attribute-drift
surprise at run time.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, replace
from typing import Optional, Protocol, runtime_checkable

from repro import __version__

#: Version prefix of the on-disk layout (``<root>/v1/...``). Bump it
#: only with a new directory shape; existing v1 stores stay readable.
FORMAT_VERSION = 1


_HEX = set("0123456789abcdef")


def is_content_hash(text: str) -> bool:
    """A pipeline content key: exactly 64 lowercase hex chars. Both the
    peer client and the ``/artifact`` server validate with this before
    letting a key near a filesystem path or URL."""
    return (
        isinstance(text, str) and len(text) == 64 and set(text) <= _HEX
    )


def is_safe_pass_name(name: str) -> bool:
    """Pass names land in paths/URLs; restrict to the benign alphabet
    actual passes use (``access-analysis``, ``emit``, ...)."""
    return (
        isinstance(name, str)
        and bool(name)
        and all(ch.isalnum() or ch in "-_" for ch in name)
    )


@dataclass(frozen=True)
class ResultKey:
    """Both halves of a compile result's address.

    ``options_hash`` covers every option field (the memory tier's key);
    ``output_hash`` covers only the output-affecting fields (the
    durable tiers' key). A tier picks the half that matches its sharing
    scope.
    """

    source_hash: str
    options_hash: str
    output_hash: str

    @classmethod
    def of(cls, source_hash: str, options) -> "ResultKey":
        return cls(
            source_hash=source_hash,
            options_hash=options.options_hash(),
            output_hash=options.output_hash(),
        )

    @property
    def memory_key(self) -> tuple[str, str]:
        return (self.source_hash, self.options_hash)


@runtime_checkable
class Tier(Protocol):
    """One storage layer of a :class:`~repro.storage.tiered.TieredStore`.

    ``kind`` is the tier's class of storage (``"memory"``, ``"disk"``,
    ``"peer"``); ``label`` identifies the instance in stats
    (``"peer:http://..."``); ``writable`` gates read-through promotion
    and publication. ``get_*`` return ``None`` on a miss — including
    any corrupt, truncated, or foreign-version artifact, which tiers
    must swallow (counted in their stats) rather than raise.

    Durable tiers may additionally implement the optional **blob
    face** — ``fetch_result(key)`` / ``fetch_unit(pass, key)``
    returning ``(artifact, payload_blob)``, and ``promote_result(key,
    result, blob)`` / ``promote_unit(pass, key, artifact, blob)``
    accepting an already-encoded payload. The payload codecs below are
    shared by every durable tier, so a :class:`TieredStore` promotes a
    peer hit onto the local disk by republishing the peer's exact
    bytes instead of re-pickling the decoded object — which is what
    keeps a peer-served compile within sight of a warm local one.
    ``TieredStore`` discovers both halves with ``getattr``, so tiers
    without them still compose.
    """

    kind: str
    label: str
    writable: bool

    def get_result(self, key: ResultKey):  # -> Optional[CompileResult]
        ...  # pragma: no cover - protocol

    def put_result(self, key: ResultKey, result, promoted: bool = False):
        ...  # pragma: no cover - protocol

    def get_unit(self, pass_name: str, key: str):
        ...  # pragma: no cover - protocol

    def put_unit(self, pass_name: str, key: str, artifact) -> None:
        ...  # pragma: no cover - protocol

    def gc(
        self,
        pass_name: Optional[str] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        ...  # pragma: no cover - protocol

    def stats(self) -> dict:
        ...  # pragma: no cover - protocol


# ===========================================================================
# payloads (the durable tiers' exchange format)
# ===========================================================================


def encode_result(result) -> bytes:
    """One compile result as a versioned payload blob.

    Stored records are plain cold results: ``cache_hit``/``cold_timings``
    bookkeeping is the *loading* process's business. May raise — callers
    (spill paths) treat serialization failure as a skipped write.
    """
    payload = {
        "format": FORMAT_VERSION,
        "repro": __version__,
        "result": replace(result, cache_hit=False, cold_timings=None),
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_result(blob: bytes):
    """The compile result inside a payload blob; raises on corrupt,
    truncated, or foreign-version payloads (callers turn that into a
    counted miss)."""
    return _decode(blob, "result")


def encode_unit(artifact) -> bytes:
    """One pass's unit artifact as a versioned payload blob."""
    payload = {
        "format": FORMAT_VERSION,
        "repro": __version__,
        "unit": artifact,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def decode_unit(blob: bytes):
    """The unit artifact inside a payload blob; raises like
    :func:`decode_result`."""
    return _decode(blob, "unit")


def _decode(blob: bytes, field: str):
    payload = pickle.loads(blob)
    if payload.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"format {payload.get('format')!r} != {FORMAT_VERSION}"
        )
    if payload.get("repro") != __version__:
        raise ValueError(
            f"repro {payload.get('repro')!r} != {__version__}"
        )
    return payload[field]
