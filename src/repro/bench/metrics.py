"""Measurement of one traversal execution."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cachesim import paper_hierarchy
from repro.fusion.fused_ir import FusedProgram
from repro.ir.program import Program
from repro.runtime import ExecStats, Heap, Interpreter, Node


@dataclass
class Measurement:
    """The paper's four quantities for one run (plus raw extras)."""

    node_visits: int
    instructions: int
    misses: dict[str, int]
    modeled_cycles: int
    wall_seconds: float
    tree_bytes: int
    truncations: int = 0

    def normalized_to(self, baseline: "Measurement") -> dict[str, float]:
        """fused/baseline ratios, the form every figure reports."""

        def ratio(a, b):
            return a / b if b else float("nan")

        result = {
            "runtime": ratio(self.modeled_cycles, baseline.modeled_cycles),
            "instructions": ratio(self.instructions, baseline.instructions),
            "node_visits": ratio(self.node_visits, baseline.node_visits),
            "wall": ratio(self.wall_seconds, baseline.wall_seconds),
        }
        for level in ("L1", "L2", "L3"):
            if level in self.misses and level in baseline.misses:
                result[f"{level}_misses"] = ratio(
                    self.misses[level], baseline.misses[level]
                )
        return result


def measure_run(
    program: Program,
    build_tree: Callable[[Program, Heap], Node],
    globals_map: Optional[dict] = None,
    fused: Optional[FusedProgram] = None,
    cache_scale: Optional[int] = None,
) -> Measurement:
    """Build a fresh tree, execute (fused or unfused), return metrics.

    ``cache_scale`` enables the cache simulator with the paper geometry
    divided by that factor (see :func:`repro.cachesim.paper_hierarchy`);
    ``None`` disables simulation for fast scaling runs.
    """
    heap = Heap(program)
    root = build_tree(program, heap)
    cache = paper_hierarchy(scale=cache_scale) if cache_scale else None
    stats = ExecStats(cache=cache)
    interp = Interpreter(program, heap, stats)
    for name, value in (globals_map or {}).items():
        interp.globals[name] = value
    start = time.perf_counter()
    if fused is not None:
        interp.run_fused(fused, root)
    else:
        interp.run_entry(root)
    elapsed = time.perf_counter() - start
    return Measurement(
        node_visits=stats.node_visits,
        instructions=stats.instructions,
        misses=stats.miss_counts(),
        modeled_cycles=stats.modeled_cycles(),
        wall_seconds=elapsed,
        tree_bytes=heap.footprint_bytes,
        truncations=stats.truncations,
    )
