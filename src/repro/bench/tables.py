"""Plain-text table/series rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence],
    note: str = "",
) -> str:
    """Fixed-width table with a title line, like the paper's tables."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts = [title, line(headers), line(["-" * w for w in widths])]
    parts.extend(line(row) for row in rendered_rows)
    if note:
        parts.append(f"note: {note}")
    return "\n".join(parts)


def format_series(
    title: str,
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence[float]],
    note: str = "",
) -> str:
    """A figure as a table: one row per x, one column per metric."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(xs):
        rows.append([x] + [series[name][index] for name in series])
    return format_table(title, headers, rows, note=note)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
