"""Benchmark harness: regenerates every table and figure of paper §5.

* :mod:`repro.bench.metrics` — run one configuration and collect the
  paper's four quantities (node visits, instructions, cache misses,
  runtime-as-modeled-cycles plus wall seconds).
* :mod:`repro.bench.runner`  — fused-vs-unfused comparisons (Grafter and
  the TreeFuser baseline) with normalization.
* :mod:`repro.bench.tables`  — plain-text rendering of figure series and
  tables.
* :mod:`repro.bench.experiments` — one entry point per paper artifact
  (Fig. 9a/9b/11/12/13, Tables 1/2/3/4/6, the §5.1 LLOC comparison).
"""

from repro.bench.metrics import Measurement, measure_run
from repro.bench.runner import CompareResult, compare_fused_unfused
from repro.bench.tables import format_series, format_table

__all__ = [
    "Measurement",
    "measure_run",
    "CompareResult",
    "compare_fused_unfused",
    "format_series",
    "format_table",
]
