"""One entry point per paper artifact (figures as series, tables as rows).

Every function returns ``(text, data)``: a printable report and the
structured numbers, so benchmark tests can both display and assert on
shapes (who wins, by roughly what factor, where crossovers fall).

Scales default to sizes a pure-Python simulator handles in CI time; the
``sizes=``/``depths=`` parameters accept larger values for longer runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.bench.runner import (
    CompareResult,
    compare_fused_unfused,
    compare_treefuser,
    fused_for,
)
from repro.bench.tables import format_series, format_table
from repro.workloads.astlang import ast_program
from repro.workloads.astlang.programs import (
    prog1_spec,
    prog2_spec,
    prog3_spec,
    replicated_functions,
)
from repro.workloads.fmm import (
    FMM_DEFAULT_GLOBALS,
    build_fmm_tree,
    fmm_program,
    random_particles,
)
from repro.workloads.kdtree import (
    EQ1_SCHEDULE,
    EQ2_SCHEDULE,
    EQ3_SCHEDULE,
    KD_DEFAULT_GLOBALS,
    build_balanced_tree,
    equation_program,
)
from repro.workloads.render import (
    build_document,
    doc1_spec,
    doc2_spec,
    doc3_spec,
    render_program,
    replicated_pages_spec,
)
from repro.workloads.render.schema import DEFAULT_GLOBALS as RENDER_GLOBALS

_FIG_METRICS = ["runtime", "L2_misses", "L3_misses", "instructions", "node_visits"]


def _series_from(results: list[CompareResult], metrics=None) -> dict[str, list[float]]:
    metrics = metrics or _FIG_METRICS
    series: dict[str, list[float]] = {name: [] for name in metrics}
    for result in results:
        normalized = result.normalized
        for name in metrics:
            series[name].append(normalized.get(name, float("nan")))
    series["baseline_cycles"] = [r.unfused.modeled_cycles for r in results]
    return series


# ---------------------------------------------------------------------------
# Table 1 / Table 2 — qualitative artifacts
# ---------------------------------------------------------------------------


def table1_capabilities() -> tuple[str, list]:
    """The capability matrix (paper Table 1), with this reproduction's
    row derived from what the engine actually supports."""
    rows = [
        ("Stream fusion [7]", "yes", "no", "no", "n/a"),
        ("Attribute grammars [20]", "yes", "no", "no", "yes"),
        ("Miniphases [21]", "yes", "no", "no", "no"),
        ("Rajbhandari et al. [23]", "no", "no", "no", "no"),
        ("TreeFuser [25]", "no", "yes", "yes", "yes"),
        ("Grafter (this reproduction)", "yes", "yes", "yes", "yes"),
    ]
    text = format_table(
        "Table 1 — capabilities vs prior work",
        ["approach", "heterogeneous", "fine-grained", "general", "dep. analysis"],
        rows,
    )
    return text, rows


def table2_passes() -> tuple[str, list]:
    render = render_program()
    ast = ast_program()
    render_passes = [c.method_name for c in render.entry]
    ast_passes = sorted({m.name for m in ast.all_methods()})
    rows = list(zip(
        render_passes + [""] * max(0, len(ast_passes) - len(render_passes)),
        ast_passes + [""] * max(0, len(render_passes) - len(ast_passes)),
    ))
    text = format_table(
        "Table 2 — render-tree and AST passes",
        ["render-tree traversals", "AST traversals"],
        rows,
    )
    return text, rows


# ---------------------------------------------------------------------------
# Fig. 9a / 9b + Table 3 — render tree
# ---------------------------------------------------------------------------


def fig9a_render_grafter(
    sizes: Sequence[int] = (1, 4, 16, 64),
    cache_scale: Optional[int] = 64,
) -> tuple[str, dict]:
    program = render_program()
    results = []
    for pages in sizes:
        spec = replicated_pages_spec(pages)
        results.append(
            compare_fused_unfused(
                f"pages{pages}",
                program,
                lambda p, h, s=spec: build_document(p, h, s),
                RENDER_GLOBALS,
                cache_scale=cache_scale,
            )
        )
    series = _series_from(results)
    text = format_series(
        "Fig 9a — render tree, Grafter fused normalized to unfused",
        "pages", list(sizes), series,
        note="cache geometry = paper's Xeon divided by "
             f"{cache_scale} (trees scaled likewise)",
    )
    return text, {"sizes": list(sizes), "series": series}


def fig9b_render_treefuser(
    sizes: Sequence[int] = (1, 4, 16, 64),
    cache_scale: Optional[int] = 64,
) -> tuple[str, dict]:
    program = render_program()
    results = []
    for pages in sizes:
        spec = replicated_pages_spec(pages)
        results.append(
            compare_treefuser(
                f"pages{pages}",
                program,
                lambda p, h, s=spec: build_document(p, h, s),
                RENDER_GLOBALS,
                cache_scale=cache_scale,
            )
        )
    series = _series_from(results)
    text = format_series(
        "Fig 9b — render tree, TreeFuser fused normalized to TreeFuser unfused",
        "pages", list(sizes), series,
    )
    return text, {"sizes": list(sizes), "series": series}


def table3_render_configs(
    cache_scale: Optional[int] = 64,
    doc1_pages: int = 384,
    doc2_rows: int = 192,
    doc3_pages: int = 144,
) -> tuple[str, dict]:
    program = render_program()
    specs = {
        "Doc1 (many simple pages)": doc1_spec(num_pages=doc1_pages),
        "Doc2 (one dense page)": doc2_spec(rows=doc2_rows),
        "Doc3 (mixed page sizes)": doc3_spec(num_pages=doc3_pages),
    }
    rows = []
    data = {}
    for label, spec in specs.items():
        result = compare_fused_unfused(
            label,
            program,
            lambda p, h, s=spec: build_document(p, h, s),
            RENDER_GLOBALS,
            cache_scale=cache_scale,
        )
        normalized = result.normalized
        rows.append(
            (
                label,
                normalized["runtime"],
                normalized.get("L2_misses", float("nan")),
                normalized.get("L3_misses", float("nan")),
                normalized["node_visits"],
                f"{result.unfused.tree_bytes >> 10}KB",
            )
        )
        data[label] = normalized
    text = format_table(
        "Table 3 — render configurations (fused / unfused)",
        ["document", "runtime", "L2 misses", "L3 misses", "node visits", "tree size"],
        rows,
    )
    return text, data


# ---------------------------------------------------------------------------
# Fig. 11 + Table 4 — AST
# ---------------------------------------------------------------------------


def fig11_ast_scaling(
    sizes: Sequence[int] = (4, 16, 64, 128),
    cache_scale: Optional[int] = 64,
) -> tuple[str, dict]:
    program = ast_program()
    results = []
    for functions in sizes:
        results.append(
            compare_fused_unfused(
                f"fns{functions}",
                program,
                lambda p, h, n=functions: replicated_functions(p, h, n),
                None,
                cache_scale=cache_scale,
            )
        )
    series = _series_from(results)
    text = format_series(
        "Fig 11 — AST passes, fused normalized to unfused",
        "functions", list(sizes), series,
    )
    return text, {"sizes": list(sizes), "series": series}


def table4_ast_configs(cache_scale: Optional[int] = 64) -> tuple[str, dict]:
    program = ast_program()
    configs = {
        "Prog1 (small functions)": lambda p, h: prog1_spec(p, h, num_functions=96),
        "Prog2 (one large function)": lambda p, h: prog2_spec(p, h, num_stmts=320),
        "Prog3 (long live ranges)": lambda p, h: prog3_spec(
            p, h, num_functions=48, stmts_per_function=72
        ),
    }
    rows = []
    data = {}
    for label, build in configs.items():
        result = compare_fused_unfused(
            label, program, build, None, cache_scale=cache_scale
        )
        normalized = result.normalized
        rows.append(
            (
                label,
                normalized["runtime"],
                normalized.get("L2_misses", float("nan")),
                normalized["node_visits"],
                f"{result.unfused.tree_bytes >> 10}KB",
            )
        )
        data[label] = normalized
    text = format_table(
        "Table 4 — AST configurations (fused / unfused)",
        ["program", "runtime", "L2 misses", "node visits", "tree size"],
        rows,
    )
    return text, data


# ---------------------------------------------------------------------------
# Fig. 12 + Table 6 — kd-tree piecewise functions
# ---------------------------------------------------------------------------


def fig12_kdtree_scaling(
    depths: Sequence[int] = (4, 6, 8, 10, 12),
    cache_scale: Optional[int] = 64,
) -> tuple[str, dict]:
    program = equation_program(EQ1_SCHEDULE, "eq1")
    results = []
    for depth in depths:
        results.append(
            compare_fused_unfused(
                f"depth{depth}",
                program,
                lambda p, h, d=depth: build_balanced_tree(p, h, depth=d),
                KD_DEFAULT_GLOBALS,
                cache_scale=cache_scale,
            )
        )
    series = _series_from(results)
    text = format_series(
        "Fig 12 — kd-tree equation 1, fused normalized to unfused",
        "depth", list(depths), series,
    )
    return text, {"depths": list(depths), "series": series}


def table6_kdtree_equations(
    depth: int = 10, cache_scale: Optional[int] = 64
) -> tuple[str, dict]:
    schedules = {
        "x^4 (f''(x))^2 + sum x^i": EQ1_SCHEDULE,
        "f^(5)(x) at x=0": EQ2_SCHEDULE,
        "int x^3 (f+.5)^2 u(0)": EQ3_SCHEDULE,
    }
    rows = []
    data = {}
    for label, schedule in schedules.items():
        program = equation_program(schedule, label)
        result = compare_fused_unfused(
            label,
            program,
            lambda p, h: build_balanced_tree(p, h, depth=depth),
            KD_DEFAULT_GLOBALS,
            cache_scale=cache_scale,
        )
        normalized = result.normalized
        rows.append(
            (
                label,
                normalized["runtime"],
                normalized.get("L2_misses", float("nan")),
                normalized.get("L3_misses", float("nan")),
                normalized["node_visits"],
            )
        )
        data[label] = normalized
    text = format_table(
        f"Table 6 — equation schedules on a depth-{depth} kd-tree "
        "(fused / unfused)",
        ["equation", "runtime", "L2 misses", "L3 misses", "node visits"],
        rows,
    )
    return text, data


# ---------------------------------------------------------------------------
# Fig. 13 — FMM
# ---------------------------------------------------------------------------


def fig13_fmm(
    sizes: Sequence[int] = (1_000, 4_000, 16_000),
    cache_scale: Optional[int] = 64,
) -> tuple[str, dict]:
    program = fmm_program()
    results = []
    for count in sizes:
        particles = random_particles(count)
        results.append(
            compare_fused_unfused(
                f"n{count}",
                program,
                lambda p, h, pts=particles: build_fmm_tree(p, h, pts),
                FMM_DEFAULT_GLOBALS,
                cache_scale=cache_scale,
            )
        )
    series = _series_from(results)
    text = format_series(
        "Fig 13 — FMM traversals, fused normalized to unfused",
        "points", list(sizes), series,
    )
    return text, {"sizes": list(sizes), "series": series}


# ---------------------------------------------------------------------------
# §5.1 LLOC report
# ---------------------------------------------------------------------------


def lloc_report() -> tuple[str, dict]:
    """Programmability comparison (§5.1): Grafter spreads the same logic
    over many small per-type functions; the tagged union concentrates it
    into one function per traversal."""
    from repro.bench.runner import lowered_for

    program = render_program()
    lowered = lowered_for(program)
    grafter_functions = sum(1 for _ in program.all_methods())
    grafter_stmts = sum(len(m.body) for m in program.all_methods())
    lowered_methods = list(lowered.program.tree_types["TNode"].methods.values())
    rows = [
        ("Grafter", grafter_functions, grafter_stmts),
        (
            "TreeFuser (tagged union)",
            len(lowered_methods),
            sum(len(m.body) for m in lowered_methods),
        ),
    ]
    text = format_table(
        "LLOC report — render passes (§5.1)",
        ["system", "functions", "top-level statements"],
        rows,
    )
    return text, {
        "grafter_functions": grafter_functions,
        "treefuser_functions": len(lowered_methods),
    }
