"""Fused-vs-unfused comparison driver.

Compilation goes through ``repro.pipeline.compile()``: fusing the same
program for one experiment after another is a content-addressed cache
hit, not a re-synthesis (the old ad-hoc ``id()``-keyed dictionaries this
module carried are gone). TreeFuser lowering is not a pipeline stage, so
lowered programs keep a small per-object cache here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.bench.metrics import Measurement, measure_run
from repro.fusion import FusionLimits
from repro.fusion.fused_ir import FusedProgram
from repro.ir.program import Program
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.treefuser import LoweredProgram, lower_program, lower_tree

_LOWERED_CACHE: dict[int, LoweredProgram] = {}


def fused_for(program: Program, limits: Optional[FusionLimits] = None) -> FusedProgram:
    """Fuse via the pipeline (synthesis is compile-time work; repeated
    requests for the same program + limits hit the compile cache)."""
    options = CompileOptions(
        limits=limits if limits is not None else FusionLimits(),
        emit=False,
    )
    return pipeline_compile(program, options=options).fused


def lowered_for(program: Program) -> LoweredProgram:
    key = id(program)
    if key not in _LOWERED_CACHE:
        _LOWERED_CACHE[key] = lower_program(program)
    return _LOWERED_CACHE[key]


def lowered_fused_for(program: Program) -> FusedProgram:
    return fused_for(lowered_for(program).program)


@dataclass
class CompareResult:
    label: str
    unfused: Measurement
    fused: Measurement

    @property
    def normalized(self) -> dict[str, float]:
        return self.fused.normalized_to(self.unfused)


def compare_fused_unfused(
    label: str,
    program: Program,
    build_tree: Callable,
    globals_map: Optional[dict] = None,
    cache_scale: Optional[int] = None,
) -> CompareResult:
    """Grafter experiment: the same input, unfused then fused."""
    unfused = measure_run(
        program, build_tree, globals_map, fused=None, cache_scale=cache_scale
    )
    fused = measure_run(
        program,
        build_tree,
        globals_map,
        fused=fused_for(program),
        cache_scale=cache_scale,
    )
    return CompareResult(label=label, unfused=unfused, fused=fused)


def compare_treefuser(
    label: str,
    program: Program,
    build_tree: Callable,
    globals_map: Optional[dict] = None,
    cache_scale: Optional[int] = None,
) -> CompareResult:
    """TreeFuser experiment: lower the program and the input, then run
    the lowered baseline and the lowered-fused version (Fig. 9b is
    normalized to the TreeFuser baseline, not the Grafter one)."""
    lowered = lowered_for(program)

    def build_lowered(lowered_program: Program, heap):
        from repro.runtime import Heap

        source_heap = Heap(program)
        source_root = build_tree(program, source_heap)
        return lower_tree(program, lowered, heap, source_root)

    unfused = measure_run(
        lowered.program, build_lowered, globals_map, cache_scale=cache_scale
    )
    fused = measure_run(
        lowered.program,
        build_lowered,
        globals_map,
        fused=lowered_fused_for(program),
        cache_scale=cache_scale,
    )
    return CompareResult(label=label, unfused=unfused, fused=fused)
