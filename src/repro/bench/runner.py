"""Fused-vs-unfused comparison driver.

Compilation goes through ``repro.pipeline.compile()``: fusing the same
program for one experiment after another is a content-addressed cache
hit, not a re-synthesis (the old ad-hoc ``id()``-keyed dictionaries this
module carried are gone). TreeFuser lowering is a pipeline *pre-pass*
(``CompileOptions(lower=True)``): lowered programs get the same
per-pass timings and per-unit caching as everything else, and the
lowering metadata rides on ``CompileResult.lowered``.

Forest experiments (many trees, one artifact) route through the
traversal service's :class:`~repro.service.executor.BatchExecutor` via
:func:`run_forest`, so benchmarks exercise the same grouping/sharding
path production traffic takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.bench.metrics import Measurement, measure_run
from repro.fusion import FusionLimits
from repro.fusion.fused_ir import FusedProgram
from repro.ir.program import Program
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.treefuser import LoweredProgram, lower_tree


def fused_for(
    program: Union[Program, "Workload"],
    limits: Optional[FusionLimits] = None,
) -> FusedProgram:
    """Fuse a program or workload via the pipeline (synthesis is
    compile-time work; repeated requests for the same program + limits
    hit the compile cache)."""
    options = CompileOptions(
        limits=limits if limits is not None else FusionLimits(),
        emit=False,
    )
    return pipeline_compile(program, options=options).fused


def compare_workload(
    label: str,
    workload: "Workload",
    spec=None,
    *,
    cache_scale: Optional[int] = None,
    limits: Optional[FusionLimits] = None,
    options: Optional[CompileOptions] = None,
    **spec_kwargs,
) -> "CompareResult":
    """Grafter experiment over a workload bundle: one input tree (the
    default spec, or an explicit one), unfused then fused — the
    Workload-native face of :func:`compare_fused_unfused`.

    Pass a session's ``options`` so the compile shares its caches (in
    particular an on-disk ``cache_dir`` — a warm store then serves the
    fusion instead of a cold pipeline run)."""
    from dataclasses import replace

    from repro.api.workload import Workload as _W  # narrow import

    if not isinstance(workload, _W):
        raise TypeError(
            f"compare_workload takes a Workload, got {type(workload).__name__}; "
            f"use compare_fused_unfused for a bare Program"
        )
    base = options if options is not None else CompileOptions()
    if limits is not None:
        base = replace(base, limits=limits)
    result = pipeline_compile(workload, options=replace(base, emit=False))
    program = result.program
    if spec is None:
        spec = workload.spec(**spec_kwargs)

    def build(p, h):
        return workload.build_tree(p, h, spec)

    unfused = measure_run(
        program, build, workload.globals_map, cache_scale=cache_scale
    )
    fused = measure_run(
        program,
        build,
        workload.globals_map,
        fused=result.fused,
        cache_scale=cache_scale,
    )
    return CompareResult(label=label, unfused=unfused, fused=fused)


def lowered_for(program: Program) -> LoweredProgram:
    """The TreeFuser lowering alone — the ``lower`` pipeline pass's
    unit artifact, addressed through the *same* key space a full
    ``CompileOptions(lower=True)`` compile uses, so the two entry
    points share one lowering per program content. Computed directly
    when cold: callers that only need the tagged-union twin (LoC
    reports, tree converters) never pay for analysis and fusion."""
    from repro.pipeline import GLOBAL_CACHE, hash_program
    from repro.pipeline.options import hash_text
    from repro.treefuser.lowering import lower_program

    key = hash_text(f"lower\x00{hash_program(program)}")
    lowered = GLOBAL_CACHE.get_unit("lower", key)
    if lowered is None:
        lowered = lower_program(program)
        GLOBAL_CACHE.put_unit("lower", key, lowered)
    return lowered


def lowered_fused_for(program: Program) -> FusedProgram:
    options = CompileOptions(lower=True, emit=False)
    return pipeline_compile(program, options=options).fused


@dataclass
class CompareResult:
    label: str
    unfused: Measurement
    fused: Measurement

    @property
    def normalized(self) -> dict[str, float]:
        return self.fused.normalized_to(self.unfused)


def compare_fused_unfused(
    label: str,
    program: Program,
    build_tree: Callable,
    globals_map: Optional[dict] = None,
    cache_scale: Optional[int] = None,
) -> CompareResult:
    """Grafter experiment: the same input, unfused then fused."""
    unfused = measure_run(
        program, build_tree, globals_map, fused=None, cache_scale=cache_scale
    )
    fused = measure_run(
        program,
        build_tree,
        globals_map,
        fused=fused_for(program),
        cache_scale=cache_scale,
    )
    return CompareResult(label=label, unfused=unfused, fused=fused)


@dataclass
class ForestRun:
    """One forest execution through the service executor."""

    label: str
    trees: int
    wall_seconds: float
    summaries: list = field(default_factory=list)
    stats: dict = field(default_factory=dict)


def run_forest(
    label: str,
    source: Union[str, Program, "Workload"],
    trees: Sequence,
    build_tree: Optional[Callable] = None,
    *,
    globals_map: Optional[dict] = None,
    pure_impls: Optional[dict] = None,
    options: Optional[CompileOptions] = None,
    fused: bool = True,
    workers: int = 2,
    backend: str = "thread",
    cache_dir: Optional[str] = None,
    sequential: bool = False,
    executor=None,
) -> ForestRun:
    """Execute a forest through the batch executor.

    ``source`` is preferably a :class:`~repro.api.workload.Workload`
    (its builder/impls/globals come along; ``build_tree`` and friends
    stay ``None``); raw source/Program plus loose fields is the legacy
    spelling and still works.

    ``sequential=True`` is the single-tree baseline: every tree becomes
    its own request executed in its own wave (each paying the full
    per-request service overhead), exactly what a client that never
    batches would experience. The default submits the whole forest as
    one request — grouped, compiled once, and sharded across workers.

    Pass an ``executor`` to reuse one across runs (how the throughput
    benchmark holds the service constant while varying only the
    submission pattern); otherwise a fresh one is created and closed.
    """
    import time

    from repro._compat import suppress_legacy_warnings
    from repro.api.workload import Workload
    from repro.service.batching import ExecRequest
    from repro.service.executor import BatchExecutor

    effective = options if options is not None else CompileOptions()

    def request(specs):
        if isinstance(source, Workload):
            return ExecRequest.from_workload(
                source, list(specs), options=effective, fused=fused
            )
        if build_tree is None:
            raise TypeError(
                "run_forest needs a Workload or an explicit build_tree"
            )
        with suppress_legacy_warnings():
            return ExecRequest(
                source=source,
                trees=list(specs),
                build_tree=build_tree,
                globals_map=globals_map,
                pure_impls=pure_impls,
                options=effective,
                fused=fused,
            )

    owned = executor is None
    if owned:
        executor = BatchExecutor(
            workers=workers, backend=backend, cache_dir=cache_dir
        )
    try:
        from repro import obs

        start = time.perf_counter()
        with obs.span(
            "bench.run_forest", label=label, backend=backend
        ):
            if sequential:
                results = [
                    executor.run([request([spec])])[0] for spec in trees
                ]
            else:
                results = executor.run([request(trees)])
        wall = time.perf_counter() - start
        failed = [r for r in results if not r.ok]
        if failed:
            raise RuntimeError(failed[0].error)
        summaries = [t.summary for r in results for t in r.trees]
        return ForestRun(
            label=label,
            trees=len(summaries),
            wall_seconds=wall,
            summaries=summaries,
            stats=executor.stats(),
        )
    finally:
        if owned:
            executor.close()


def compare_treefuser(
    label: str,
    program: Program,
    build_tree: Callable,
    globals_map: Optional[dict] = None,
    cache_scale: Optional[int] = None,
) -> CompareResult:
    """TreeFuser experiment: lower the program and the input, then run
    the lowered baseline and the lowered-fused version (Fig. 9b is
    normalized to the TreeFuser baseline, not the Grafter one)."""
    lowered = lowered_for(program)

    def build_lowered(lowered_program: Program, heap):
        from repro.runtime import Heap

        source_heap = Heap(program)
        source_root = build_tree(program, source_heap)
        return lower_tree(program, lowered, heap, source_root)

    unfused = measure_run(
        lowered.program, build_lowered, globals_map, cache_scale=cache_scale
    )
    fused = measure_run(
        lowered.program,
        build_lowered,
        globals_map,
        fused=lowered_fused_for(program),
        cache_scale=cache_scale,
    )
    return CompareResult(label=label, unfused=unfused, fused=fused)
