"""Code generation: emit executable Python from traversal programs.

The original Grafter is a source-to-source tool — its output is C++ that
gets compiled and run. This package is the reproduction's equivalent
backend: it emits a self-contained Python module for a program (and for
its fused form), with dynamic dispatch precomputed into dictionaries and
access paths compiled to direct field operations.

Two uses:

* **deployment** — compiled traversals run an order of magnitude faster
  than the metering interpreter (no per-access instrumentation), which is
  what a downstream user wants once they trust the numbers;
* **verification** — the test suite runs the interpreter and the
  generated code on identical inputs and asserts identical final states,
  cross-checking both executions *and* the printed code generator.
"""

from repro.codegen.python_backend import (
    CompiledFused,
    CompiledProgram,
    compile_fused,
    compile_program,
    emit_fused_module,
    emit_module,
)

__all__ = [
    "CompiledProgram",
    "CompiledFused",
    "compile_program",
    "compile_fused",
    "emit_module",
    "emit_fused_module",
]
