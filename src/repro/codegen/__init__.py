"""Code generation: emit executable Python from traversal programs.

The original Grafter is a source-to-source tool — its output is C++ that
gets compiled and run. This package is the reproduction's equivalent
backend: it emits a self-contained Python module for a program (and for
its fused form), with dynamic dispatch precomputed into dictionaries and
access paths compiled to direct field operations.

Two uses:

* **deployment** — compiled traversals run an order of magnitude faster
  than the metering interpreter (no per-access instrumentation), which is
  what a downstream user wants once they trust the numbers;
* **verification** — the test suite runs the interpreter and the
  generated code on identical inputs and asserts identical final states,
  cross-checking both executions *and* the printed code generator.

:func:`compile_program` / :func:`compile_fused` are routed through
``repro.pipeline`` and its content-addressed cache: compiling the same
program twice (even via different entry points — these helpers, the CLI,
the bench runner) emits and ``exec``-compiles the module once. The
emission primitives (``emit_module`` / ``emit_fused_module`` and the
``Compiled*`` classes) stay cache-free in
:mod:`repro.codegen.python_backend`.
"""

from repro.codegen.python_backend import (
    CompiledFused,
    CompiledProgram,
    emit_fused_module,
    emit_module,
)


def compile_program(program) -> CompiledProgram:
    """Compiled (unfused) module for *program*, memoized by content.

    The artifact cache is consulted first (the pipeline's emit stage
    stores unfused modules under the same content key, so this shares
    with every other entry point). On a miss, programs with an entry
    sequence go through the full staged pipeline
    (``repro.pipeline.compile``) so the fused artifacts land in the
    cache too; entry-less programs — nothing to fuse — are emitted
    directly.
    """
    from repro.pipeline import GLOBAL_CACHE, CompileOptions, hash_program
    from repro.pipeline import compile as pipeline_compile

    key = ("unfused-module", hash_program(program))
    cached = GLOBAL_CACHE.get_artifact(key)
    if cached is not None:
        return cached
    if program.root_type_name is None or not program.entry:
        cached = CompiledProgram(program)
        GLOBAL_CACHE.put_artifact(key, cached)
        return cached
    result = pipeline_compile(program, options=CompileOptions(emit=True))
    return result.compiled_unfused


def compile_fused(fused) -> CompiledFused:
    """Compiled module for an already-fused program, memoized on the
    content of (program, fused form) so custom-limit fusions cache too."""
    from repro.fusion.fused_ir import print_fused_program
    from repro.pipeline import GLOBAL_CACHE, hash_program
    from repro.pipeline.options import hash_text

    key = (
        "fused-module",
        hash_program(fused.program),
        hash_text(print_fused_program(fused)),
    )
    cached = GLOBAL_CACHE.get_artifact(key)
    if cached is None:
        cached = CompiledFused(fused)
        GLOBAL_CACHE.put_artifact(key, cached)
    return cached


__all__ = [
    "CompiledProgram",
    "CompiledFused",
    "compile_program",
    "compile_fused",
    "emit_module",
    "emit_fused_module",
]
