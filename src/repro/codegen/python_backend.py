"""Python emission for traversal programs and fused programs.

Generated module layout (unfused)::

    def m_TextBox_computeWidth(RT, this):
        _f = this.fields
        _D_computeWidth[_f['Next'].type_name](RT, _f['Next'])
        _f['Width'] = _f['Text'].members['Length']
        ...
    _D_computeWidth = {'TextBox': m_TextBox_computeWidth, ...}
    def run_entry(RT, root): ...

Generated module layout (fused)::

    def u__fuse__TextBox_computeWidth__TextBox_computeHeight(RT, this, flags, args):
        if flags & 0b1:
            ...
        cf = 0; ca = []
        ...
        if cf: _G0[child.type_name](RT, child, cf, ca)
    _G0 = {...}
    def run_fused(RT, root): ...

Member truncation (``return;`` under ``active_flags``) compiles to a
``_Trunc`` exception caught at the guarded statement, clearing the
member's bit — truncations are rare, so the exception cost is paid only
when the paper's semantics actually need it.
"""

from __future__ import annotations

import keyword
from typing import Optional

from repro.errors import ReproError
from repro.fusion.fused_ir import (
    FusedProgram,
    FusedUnit,
    GroupCall,
    GuardedStmt,
)
from repro.ir.access import AccessPath
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, PureCall, UnaryOp
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)
from repro.ir.types import is_primitive
from repro.runtime.heap import Heap
from repro.runtime.node import Node

_PRELUDE = '''\
from repro.runtime.interpreter import _cxx_div as _div, _cxx_mod as _mod
from repro.runtime.values import copy_value as _copy


class _Trunc(Exception):
    """Member truncation inside a fused unit."""


_TRUNC = _Trunc()
'''


class _Namer:
    """Collision-free Python identifiers for methods/units/locals."""

    @staticmethod
    def method(method: TraversalMethod) -> str:
        return f"m_{_sanitize(method.owner)}_{_sanitize(method.name)}"

    @staticmethod
    def unit(unit: FusedUnit) -> str:
        return f"u_{_sanitize(unit.label)}"

    @staticmethod
    def local(name: str, prefix: str = "") -> str:
        base = f"{prefix}v_{_sanitize(name)}"
        if keyword.iskeyword(base):  # pragma: no cover - v_ prefix prevents
            base += "_"
        return base


def _sanitize(text: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in text)


class RuntimeContext:
    """What generated code needs at run time: globals, pure functions and
    a node allocator. Deliberately tiny — no metering."""

    def __init__(self, program: Program, heap: Heap, globals_map=None):
        self.program = program
        self.heap = heap
        self.globals: dict[str, object] = {}
        from repro.runtime.values import default_value

        for var in program.globals.values():
            self.globals[var.name] = default_value(program, var.type_name)
        for name, value in (globals_map or {}).items():
            self.globals[name] = value
        self.pure = {
            name: func for name, func in program.pure_functions.items()
        }

    def new_node(self, type_name: str) -> Node:
        return Node.new(self.program, self.heap, type_name)

    def new_opaque(self, class_name: str):
        from repro.runtime.values import default_value

        return default_value(self.program, class_name)


# ===========================================================================
# expressions
# ===========================================================================


class _ExprCompiler:
    #: leading parameter/argument text before ``this``/the receiver in
    #: generated signatures and dispatch calls — the pooled backend's
    #: functions close over their runtime instead of threading it
    rt_prefix = "RT, "

    def __init__(self, program: Program, local_prefix: str = ""):
        self.program = program
        self.prefix = local_prefix

    def expr(self, node: Expr) -> str:
        if isinstance(node, Const):
            return repr(node.value)
        if isinstance(node, DataAccess):
            return self.read_path(node.path)
        if isinstance(node, BinOp):
            return self._binop(node)
        if isinstance(node, UnaryOp):
            operand = self.expr(node.operand)
            if node.op == "-":
                return f"(-{operand})"
            return f"(not {operand})"
        if isinstance(node, PureCall):
            return self.pure_call(node)
        raise ReproError(f"cannot compile expression {node!r}")

    def pure_call(self, node: PureCall) -> str:
        args = ", ".join(f"_copy({self.expr(a)})" for a in node.args)
        return f"RT.pure[{node.func_name!r}]({args})"

    def _binop(self, node: BinOp) -> str:
        lhs = self.expr(node.lhs)
        rhs = self.expr(node.rhs)
        if node.op == "&&":
            return f"bool({lhs} and {rhs})"
        if node.op == "||":
            return f"bool({lhs} or {rhs})"
        if node.op == "/":
            return f"_div({lhs}, {rhs})"
        if node.op == "%":
            return f"_mod({lhs}, {rhs})"
        return f"({lhs} {node.op} {rhs})"

    # -- paths ----------------------------------------------------------

    def base(self, path: AccessPath) -> str:
        if path.base == "this":
            return "this"
        if path.is_local:
            return _Namer.local(path.base_name, self.prefix)
        raise ReproError(f"path {path} has no node base")

    def _global_text(self, path: AccessPath) -> str:
        if not path.steps:
            return f"RT.globals[{path.base_name!r}]"
        member = path.steps[0].field.name
        return f"RT.globals[{path.base_name!r}].members[{member!r}]"

    def read_path(self, path: AccessPath) -> str:
        if path.is_global:
            return self._global_text(path)
        if path.is_local and not self._local_is_node(path):
            text = _Namer.local(path.base_name, self.prefix)
            for step in path.steps:
                text += f".members[{step.field.name!r}]"
            return text
        return self._path_text(path)

    def _path_text(self, path: AccessPath) -> str:
        text = self.base(path)
        steps = path.steps
        for index, step in enumerate(steps):
            if step.field.is_child:
                text += f".fields[{step.field.name!r}]"
            elif index > 0 and not steps[index - 1].field.is_child:
                # member of an opaque object value
                text += f".members[{step.field.name!r}]"
            else:
                text += f".fields[{step.field.name!r}]"
        return text

    def _local_is_node(self, path: AccessPath) -> bool:
        """Aliases hold nodes; data locals hold values. A path whose first
        step is a child or tree-owned data field came from an alias."""
        if not path.steps:
            return False
        first = path.steps[0].field
        return first.is_child or first.owner in self.program.tree_types

    def write_target(self, path: AccessPath) -> str:
        if path.is_global:
            return self._global_text(path)
        if path.is_local and not self._local_is_node(path):
            text = _Namer.local(path.base_name, self.prefix)
            for step in path.steps:
                text += f".members[{step.field.name!r}]"
            return text
        return self._path_text(path)

    # -- layout hooks ----------------------------------------------------
    # the two places generated code touches the tree *representation*
    # outside a data path: dispatch receivers and node allocation. The
    # pooled backend overrides both; everything else in the statement
    # compiler is layout-agnostic.

    def receiver_text(self, receiver) -> str:
        """The expression a traverse/group call dispatches on: ``this``
        or one child access (shared by the unfused call lines, the fused
        fallback calls, and the group calls)."""
        if receiver.is_this:
            return "this"
        return f"this.fields[{receiver.child.name!r}]"

    def new_node(self, type_name: str) -> str:
        """The allocation expression a ``new`` statement compiles to."""
        return f"RT.new_node({type_name!r})"

    def dispatch_key(self, var: str) -> str:
        """How a dispatch site reads the dynamic type of *var* (a node
        in the object layout, a row index in the pooled layout)."""
        return f"{var}.type_name"

    def table_key(self, type_name: str) -> str:
        """The key expression a dispatch-table literal stores a concrete
        type under — must agree with :meth:`dispatch_key`."""
        return repr(type_name)


# ===========================================================================
# statements
# ===========================================================================


class _StmtCompiler:
    def __init__(
        self,
        program: Program,
        exprc: _ExprCompiler,
        call_line,
        return_line: str,
    ):
        self.program = program
        self.exprc = exprc
        self.call_line = call_line  # (stmt: TraverseStmt, pad: str) -> list[str]
        self.return_line = return_line

    def block(self, body: list[Stmt], pad: str) -> list[str]:
        lines: list[str] = []
        for stmt in body:
            lines.extend(self.stmt(stmt, pad))
        if not lines:
            lines.append(f"{pad}pass")
        return lines

    def stmt(self, stmt: Stmt, pad: str) -> list[str]:
        exprc = self.exprc
        if isinstance(stmt, Assign):
            value = exprc.expr(stmt.value)
            if self._assign_copies(stmt):
                value = f"_copy({value})"
            return [f"{pad}{exprc.write_target(stmt.target)} = {value}"]
        if isinstance(stmt, LocalDef):
            name = _Namer.local(stmt.name, exprc.prefix)
            if stmt.init is None:
                if stmt.type_name in self.program.opaque_classes:
                    return [
                        f"{pad}{name} = RT.new_opaque({stmt.type_name!r})"
                    ]
                return [f"{pad}{name} = 0"]
            return [f"{pad}{name} = _copy({exprc.expr(stmt.init)})"]
        if isinstance(stmt, AliasDef):
            name = _Namer.local(stmt.name, exprc.prefix)
            return [f"{pad}{name} = {exprc._path_text(stmt.target)}"]
        if isinstance(stmt, If):
            lines = [f"{pad}if {exprc.expr(stmt.cond)}:"]
            lines.extend(self.block(stmt.then_body, pad + "    "))
            if stmt.else_body:
                lines.append(f"{pad}else:")
                lines.extend(self.block(stmt.else_body, pad + "    "))
            return lines
        if isinstance(stmt, While):
            lines = [f"{pad}while {exprc.expr(stmt.cond)}:"]
            lines.extend(self.block(stmt.body, pad + "    "))
            return lines
        if isinstance(stmt, Return):
            return [f"{pad}{self.return_line}"]
        if isinstance(stmt, New):
            target = exprc._path_text(stmt.target)
            return [f"{pad}{target} = {exprc.new_node(stmt.type_name)}"]
        if isinstance(stmt, Delete):
            target = exprc._path_text(stmt.target)
            return [f"{pad}{target} = None"]
        if isinstance(stmt, PureStmt):
            return [f"{pad}{exprc.expr(stmt.call)}"]
        if isinstance(stmt, TraverseStmt):
            return self.call_line(stmt, pad)
        raise ReproError(f"cannot compile statement {stmt!r}")

    def _assign_copies(self, stmt: Assign) -> bool:
        """Opaque values are copied on assignment (value semantics)."""
        if not stmt.target.steps:
            return True  # whole local/global, may be an object
        last = stmt.target.steps[-1].field
        return not last.is_child and not is_primitive(last.type_name)


# ===========================================================================
# unfused emission
# ===========================================================================


def module_methods(program: Program) -> dict[str, TraversalMethod]:
    """The methods an unfused module emits, keyed by qualified name in
    emission order (declaration order, overrides deduplicated)."""
    method_names: dict[str, TraversalMethod] = {}
    for method in program.all_methods():
        method_names[method.qualified_name] = method
    return method_names


def emit_method_source(
    program: Program, method: TraversalMethod, exprc_factory=None
) -> str:
    """Python source of one unfused method function — the unfused
    module's per-method compilation unit."""
    return "\n".join(_emit_method(program, method, exprc_factory))


def _module_body(
    program: Program, method_sources: dict[str, str], exprc: _ExprCompiler
) -> list[str]:
    """The unfused module's body lines at zero indent: method sources,
    dispatch dictionaries, ``run_entry``. Shared between the flat object
    module and the pooled module (which wraps it in a bind function)."""
    lines: list[str] = []
    for qualified in module_methods(program):
        lines.append(method_sources[qualified])
        lines.append("")
    # dispatch dictionaries per traversal name
    by_name: dict[str, dict[str, TraversalMethod]] = {}
    for type_name in program.concrete_subtypes_all():
        for name in {m.name for m in program.all_methods()}:
            if program.has_method(type_name, name):
                target = program.resolve_method(type_name, name)
                by_name.setdefault(name, {})[type_name] = target
    for name, table in sorted(by_name.items()):
        entries = ", ".join(
            f"{exprc.table_key(t)}: {_Namer.method(m)}"
            for t, m in sorted(table.items())
        )
        lines.append(f"_D_{_sanitize(name)} = {{{entries}}}")
    lines.append("")
    lines.append(f"def run_entry({exprc.rt_prefix}root):")
    if program.entry:
        for call in program.entry:
            args = "".join(f", {exprc.expr(a)}" for a in call.args)
            lines.append(
                f"    _D_{_sanitize(call.method_name)}"
                f"[{exprc.dispatch_key('root')}]"
                f"({exprc.rt_prefix}root{args})"
            )
    else:
        lines.append("    pass")
    return lines


def assemble_module(
    program: Program, method_sources: dict[str, str]
) -> str:
    """Stitch per-method sources (:func:`emit_method_source`, keyed by
    qualified name) into the full unfused module. The incremental emit
    pass calls this with a mix of cached and fresh pieces; the result is
    byte-identical to a monolithic :func:`emit_module`."""
    program.finalize()
    lines = [f'"""Generated from program {program.name!r} (unfused)."""']
    lines.append(_PRELUDE)
    lines.extend(_module_body(program, method_sources, _ExprCompiler(program)))
    lines.append("")
    return "\n".join(lines)


def emit_module(program: Program) -> str:
    """Python source for the original (unfused) program."""
    program.finalize()
    return assemble_module(
        program,
        {
            qualified: emit_method_source(program, method)
            for qualified, method in module_methods(program).items()
        },
    )


def _compiled_args(program, method_owner, method_name, args, exprc) -> str:
    """Render call arguments, copying opaque values (by-value semantics)."""
    target = program.resolve_method(method_owner, method_name)
    rendered = []
    for param, arg in zip(target.params, args):
        text = exprc.expr(arg)
        if not is_primitive(param.type_name):
            text = f"_copy({text})"
        rendered.append(f", {text}")
    return "".join(rendered)


def _emit_method(
    program: Program, method: TraversalMethod, exprc_factory=None
) -> list[str]:
    exprc = (exprc_factory or _ExprCompiler)(program)
    params = "".join(
        f", {_Namer.local(p.name)}" for p in method.params
    )
    lines = [
        f"def {_Namer.method(method)}({exprc.rt_prefix}this{params}):"
    ]

    def call_line(stmt: TraverseStmt, pad: str) -> list[str]:
        receiver = exprc.receiver_text(stmt.receiver)
        if stmt.receiver.is_this:
            static_type = method.owner
        else:
            static_type = stmt.receiver.child.type_name
        args = _compiled_args(
            program, static_type, stmt.method_name, stmt.args, exprc
        )
        dispatch = f"_D_{_sanitize(stmt.method_name)}"
        return [
            f"{pad}_r = {receiver}",
            f"{pad}{dispatch}[{exprc.dispatch_key('_r')}]"
            f"({exprc.rt_prefix}_r{args})",
        ]

    compiler = _StmtCompiler(program, exprc, call_line, return_line="return")
    lines.extend(compiler.block(method.body, "    "))
    return lines


# ===========================================================================
# fused emission
# ===========================================================================


def emit_unit_source(
    program: Program, unit: FusedUnit, exprc_factory=None
) -> tuple[str, list[str]]:
    """(function source, dispatch-table lines) of one fused unit — the
    fused module's per-unit compilation unit. The table lines are
    separate because the module hoists every group's dispatch dict below
    the function definitions (the targets must exist before the dicts
    reference them)."""
    group_tables: list[str] = []
    lines = _emit_unit(program, unit, group_tables, exprc_factory)
    return "\n".join(lines), group_tables


def _fused_body(
    fused: FusedProgram,
    unit_sources: dict[tuple[str, ...], tuple[str, list[str]]],
    exprc: _ExprCompiler,
) -> list[str]:
    """The fused module's body lines at zero indent: unit sources, the
    hoisted group dispatch tables, ``run_fused``. Shared between the
    flat object module and the pooled bind function."""
    program = fused.program
    lines: list[str] = []
    group_tables: list[str] = []
    for key in sorted(fused.units):
        text, tables = unit_sources[key]
        lines.append(text)
        lines.append("")
        group_tables.extend(tables)
    lines.extend(group_tables)
    lines.append("")
    lines.append(f"def run_fused({exprc.rt_prefix}root):")
    if not fused.entry_groups:
        lines.append("    pass")
    for index, group in enumerate(fused.entry_groups):
        table = ", ".join(
            f"{exprc.table_key(t)}: {_Namer.unit(u)}"
            for t, u in sorted(group.dispatch.items())
        )
        lines.append(f"    _e = {{{table}}}")
        flat_args = "".join(
            f", {exprc.expr(a)}"
            for args in group.args_per_member
            for a in args
        )
        width = len(group.method_names)
        lines.append(
            f"    _e[{exprc.dispatch_key('root')}]"
            f"({exprc.rt_prefix}root, {(1 << width) - 1}{flat_args})"
        )
    return lines


def assemble_fused_module(
    fused: FusedProgram, unit_sources: dict[tuple[str, ...], tuple[str, list[str]]]
) -> str:
    """Stitch per-unit sources (:func:`emit_unit_source`, keyed by the
    unit's sequence key) into the full fused module — byte-identical to
    a monolithic :func:`emit_fused_module`."""
    program = fused.program
    lines = [f'"""Generated from program {program.name!r} (fused)."""']
    lines.append(_PRELUDE)
    lines.extend(_fused_body(fused, unit_sources, _ExprCompiler(program)))
    lines.append("")
    return "\n".join(lines)


def emit_fused_module(fused: FusedProgram) -> str:
    """Python source for a fused program (units + stub dispatch)."""
    return assemble_fused_module(
        fused,
        {
            key: emit_unit_source(fused.program, fused.units[key])
            for key in fused.units
        },
    )


def _unit_param_names(unit: FusedUnit) -> list[str]:
    """The flattened member parameters, in member order. Every dispatch
    target of a group shares this layout (overrides keep signatures)."""
    names: list[str] = []
    for member, method in enumerate(unit.members):
        for param in method.params:
            names.append(_Namer.local(param.name, f"m{member}_"))
    return names


def _emit_unit(
    program: Program,
    unit: FusedUnit,
    group_tables: list[str],
    exprc_factory=None,
) -> list[str]:
    factory = exprc_factory or _ExprCompiler
    name = _Namer.unit(unit)
    params = "".join(f", {p}=0" for p in _unit_param_names(unit))
    lines = [
        f"def {name}({factory(program).rt_prefix}this, flags{params}):"
    ]
    body_lines: list[str] = []
    group_index = 0
    for item in unit.body:
        if isinstance(item, GuardedStmt):
            body_lines.extend(_emit_guarded(program, item, factory))
        elif isinstance(item, GroupCall):
            body_lines.extend(
                _emit_group_call(
                    program, unit, item, group_index, group_tables, factory
                )
            )
            group_index += 1
    if not body_lines:
        body_lines = ["    pass"]
    lines.extend(body_lines)
    return lines


def _emit_guarded(
    program: Program, item: GuardedStmt, exprc_factory=None
) -> list[str]:
    prefix = f"m{item.member}_"
    exprc = (exprc_factory or _ExprCompiler)(program, local_prefix=prefix)

    def call_line(stmt: TraverseStmt, pad: str) -> list[str]:
        # unfusable leftover calls fall back to the unfused dispatch —
        # the generated fused module also carries the plain tables
        raise ReproError(
            "fused units must not contain bare traverse statements; "
            f"got {stmt}"
        )

    compiler = _StmtCompiler(
        program, exprc, call_line, return_line="raise _TRUNC"
    )
    mask = 1 << item.member
    from repro.ir.stmts import contains_return, contains_traverse

    if contains_traverse(item.stmt):
        # a conditional call block survived ungrouped (TreeFuser mode);
        # compile its calls through the unfused dispatch tables
        def fallback_call(stmt: TraverseStmt, pad: str) -> list[str]:
            exprc_local = compiler.exprc
            args = "".join(f", {exprc_local.expr(a)}" for a in stmt.args)
            receiver = exprc_local.receiver_text(stmt.receiver)
            return [
                f"{pad}_r = {receiver}",
                f"{pad}_D_{_sanitize(stmt.method_name)}"
                f"[{exprc_local.dispatch_key('_r')}]"
                f"({exprc_local.rt_prefix}_r{args})",
            ]

        compiler.call_line = fallback_call
    lines = [f"    if flags & {mask}:"]
    if contains_return(item.stmt):
        lines.append("        try:")
        lines.extend(compiler.block([item.stmt], "            "))
        lines.append("        except _Trunc:")
        lines.append(f"            flags &= ~{mask}")
    else:
        lines.extend(compiler.block([item.stmt], "        "))
    return lines


def _emit_group_call(
    program: Program,
    unit: FusedUnit,
    group: GroupCall,
    group_index: int,
    group_tables: list[str],
    exprc_factory=None,
) -> list[str]:
    factory = exprc_factory or _ExprCompiler
    table_name = f"_G_{_Namer.unit(unit)}_{group_index}"
    table_exprc = factory(program)
    entries = ", ".join(
        f"{table_exprc.table_key(t)}: {_Namer.unit(u)}"
        for t, u in sorted(group.dispatch.items())
    )
    group_tables.append(f"{table_name} = {{{entries}}}")
    # the child units all share one flattened parameter layout; compute
    # the slot arguments into locals (0 when the slot is inactive) and
    # pass them positionally — no per-call tuple/list churn
    target_unit = next(iter(group.dispatch.values()))
    target_params = _unit_param_names(target_unit)
    lines = ["    _cf = 0"]
    arg_locals: list[str] = []
    cursor = 0
    for slot, call in enumerate(group.calls):
        prefix = f"m{call.member}_"
        exprc = factory(program, local_prefix=prefix)
        target = target_unit.members[slot]
        slot_locals = [
            f"_ga{cursor + offset}" for offset in range(len(target.params))
        ]
        cursor += len(target.params)
        arg_locals.extend(slot_locals)
        cond = f"flags & {1 << call.member}"
        if call.guard is not None:
            cond += f" and {exprc.expr(call.guard)}"
        lines.append(f"    if {cond}:")
        lines.append(f"        _cf |= {1 << slot}")
        for local, param, arg in zip(slot_locals, target.params, call.args):
            value = exprc.expr(arg)
            if not is_primitive(param.type_name):
                value = f"_copy({value})"
            lines.append(f"        {local} = {value}")
        if not slot_locals:
            lines[-1] = lines[-1]  # keep structure; nothing to bind
        else:
            lines.append("    else:")
            for local in slot_locals:
                lines.append(f"        {local} = 0")
    assert len(arg_locals) == len(target_params)
    call_args = "".join(f", {local}" for local in arg_locals)
    lines.append("    if _cf:")
    lines.append(f"        _r = {table_exprc.receiver_text(group.receiver)}")
    lines.append(
        f"        {table_name}[{table_exprc.dispatch_key('_r')}]"
        f"({table_exprc.rt_prefix}_r, _cf{call_args})"
    )
    return lines


# ===========================================================================
# public API
# ===========================================================================


class _CompiledModule:
    """Shared exec machinery for the two compiled-module classes.

    The exec'd namespace is excluded from pickling (functions defined by
    ``exec`` cannot be pickled) and rebuilt lazily on first use after an
    unpickle — a disk-restored artifact pays the module exec only when
    it is actually run, which keeps warm-store compiles to the cost of a
    file read plus an unpickle.
    """

    source: str
    _namespace: Optional[dict]

    @property
    def namespace(self) -> dict:
        if self._namespace is None:
            namespace: dict = {}
            exec(compile(self.source, self._module_name(), "exec"), namespace)
            self._namespace = namespace
        return self._namespace

    def _module_name(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_namespace"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class CompiledProgram(_CompiledModule):
    def __init__(self, program: Program):
        self.program = program
        self.source = emit_module(program)
        self._namespace = None
        self.namespace  # eager exec: surface bad codegen at compile time

    @classmethod
    def from_source(cls, program: Program, source: str) -> "CompiledProgram":
        """Wrap already-assembled module source (the incremental emit
        pass stitches cached per-method pieces). The namespace is built
        lazily on first run, like a disk-restored artifact — a warm
        recompile does not pay the module exec."""
        self = cls.__new__(cls)
        self.program = program
        self.source = source
        self._namespace = None
        return self

    def _module_name(self) -> str:
        return f"<repro:{self.program.name}>"

    def run_entry(self, heap: Heap, root: Node, globals_map=None) -> RuntimeContext:
        context = RuntimeContext(self.program, heap, globals_map)
        self.namespace["run_entry"](context, root)
        return context


class CompiledFused(_CompiledModule):
    def __init__(self, fused: FusedProgram):
        self.fused = fused
        self.program = fused.program
        # fused modules may fall back to unfused dispatch for leftover
        # conditional calls, so include the plain tables too
        self.source = (
            emit_module(self.program) + "\n" + emit_fused_module(fused)
        )
        self._namespace = None
        self.namespace  # eager exec: surface bad codegen at compile time

    @classmethod
    def from_source(cls, fused: FusedProgram, source: str) -> "CompiledFused":
        """Wrap already-assembled module source (unfused tables + fused
        units); lazy namespace, see :meth:`CompiledProgram.from_source`."""
        self = cls.__new__(cls)
        self.fused = fused
        self.program = fused.program
        self.source = source
        self._namespace = None
        return self

    def _module_name(self) -> str:
        return f"<repro:{self.program.name}:fused>"

    def run_fused(self, heap: Heap, root: Node, globals_map=None) -> RuntimeContext:
        context = RuntimeContext(self.program, heap, globals_map)
        self.namespace["run_fused"](context, root)
        return context


def compile_program(program: Program) -> CompiledProgram:
    return CompiledProgram(program)


def compile_fused(fused: FusedProgram) -> CompiledFused:
    return CompiledFused(fused)
