"""Pooled (structure-of-arrays) Python emission.

The pooled backend compiles the same traversal IR as
:mod:`repro.codegen.python_backend`, but against a
:class:`~repro.layout.pool.ForestPool` instead of a ``Node`` graph:
``this`` is an integer row index, field access is a list subscript on a
per-field column, and dynamic dispatch keys on the pool's integer type
tags. Generated module layout::

    def bind_program(RT, P):
        _t = P.tags
        _tid = P.type_id
        _g = RT.globals
        _p = RT.pure
        _c_Width = P.columns['Width']
        ...
        def m_TextBox_computeWidth(this):
            _c_Width[this] = _c_Text[this].members['Length']
            ...
        _D_computeWidth = {_tid('TextBox'): m_TextBox_computeWidth, ...}
        def run_entry(root): ...
        return {'run_entry': run_entry}

Everything a traversal touches per node is a closure-cell load plus a
list subscript — no attribute lookups, no per-node dicts. The binding
happens once per (runtime context, pool) pair; ``P.new`` appends to the
bound column lists in place, so allocation inside a traversal never
invalidates a binding. The statement compiler, scheduling, and fusion
machinery are shared with the object backend — only the expression
layer (:class:`_PooledExprCompiler`) differs.

Fused pooled modules are self-contained: ``bind_fused`` carries the
unfused methods and dispatch tables too (the fused body's fallback
calls need them in the same closure scope), so unlike the object
backend there is no module concatenation.
"""

from __future__ import annotations

import textwrap

from repro.fusion.fused_ir import FusedProgram, FusedUnit
from repro.ir.access import AccessPath
from repro.ir.exprs import PureCall
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.layout.pool import ForestPool, column_names
from repro.runtime.heap import Heap
from repro.runtime.node import Node
from repro.codegen.python_backend import (
    _PRELUDE,
    RuntimeContext,
    _CompiledModule,
    _ExprCompiler,
    _emit_method,
    _emit_unit,
    _fused_body,
    _module_body,
    _sanitize,
    module_methods,
)


def column_locals(program: Program) -> dict[str, str]:
    """Deterministic column-name → bind-local mapping (``Width`` →
    ``_c_Width``), collision-safe under sanitization."""
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for name in column_names(program):
        local = f"_c_{_sanitize(name)}"
        while local in used:
            local += "_"
        used.add(local)
        mapping[name] = local
    return mapping


class _PooledExprCompiler(_ExprCompiler):
    """The object expression compiler with every representation touch
    redirected at the pool: columns for tree fields, integer tags for
    dispatch, ``P.new`` for allocation. Locals/globals/opaque members
    keep the object backend's compilation."""

    rt_prefix = ""

    def __init__(self, program: Program, local_prefix: str = ""):
        super().__init__(program, local_prefix)
        self.columns = column_locals(program)

    def pure_call(self, node: PureCall) -> str:
        args = ", ".join(f"_copy({self.expr(a)})" for a in node.args)
        return f"_p[{node.func_name!r}]({args})"

    def _global_text(self, path: AccessPath) -> str:
        if not path.steps:
            return f"_g[{path.base_name!r}]"
        member = path.steps[0].field.name
        return f"_g[{path.base_name!r}].members[{member!r}]"

    def _path_text(self, path: AccessPath) -> str:
        # built inside-out: this.A.W -> _c_W[_c_A[this]]; a member of an
        # opaque value stays an attribute hop off the column read
        text = self.base(path)
        steps = path.steps
        for index, step in enumerate(steps):
            if (
                not step.field.is_child
                and index > 0
                and not steps[index - 1].field.is_child
            ):
                text += f".members[{step.field.name!r}]"
            else:
                text = f"{self.columns[step.field.name]}[{text}]"
        return text

    def receiver_text(self, receiver) -> str:
        if receiver.is_this:
            return "this"
        return f"{self.columns[receiver.child.name]}[this]"

    def new_node(self, type_name: str) -> str:
        return f"P.new({type_name!r})"

    def dispatch_key(self, var: str) -> str:
        return f"_t[{var}]"

    def table_key(self, type_name: str) -> str:
        return f"_tid({type_name!r})"


# ===========================================================================
# emission
# ===========================================================================


def emit_pooled_method_source(
    program: Program, method: TraversalMethod
) -> str:
    """Pooled source of one unfused method — the pooled emit pass's
    per-method compilation unit (cached under an ``emit:pooled`` salt,
    never aliasing the object backend's pieces)."""
    return "\n".join(_emit_method(program, method, _PooledExprCompiler))


def emit_pooled_unit_source(
    program: Program, unit: FusedUnit
) -> tuple[str, list[str]]:
    """(function source, dispatch-table lines) of one pooled fused
    unit; same split as the object backend's ``emit_unit_source``."""
    group_tables: list[str] = []
    lines = _emit_unit(program, unit, group_tables, _PooledExprCompiler)
    return "\n".join(lines), group_tables


def _bind_preamble(program: Program) -> list[str]:
    lines = [
        "    _t = P.tags",
        "    _tid = P.type_id",
        "    _g = RT.globals",
        "    _p = RT.pure",
    ]
    locals_map = column_locals(program)
    for name in column_names(program):
        lines.append(f"    {locals_map[name]} = P.columns[{name!r}]")
    return lines


def assemble_pooled_module(
    program: Program, method_sources: dict[str, str]
) -> str:
    """Stitch pooled per-method sources into the full pooled module —
    byte-identical to a monolithic :func:`emit_pooled_module`."""
    program.finalize()
    exprc = _PooledExprCompiler(program)
    lines = [
        f'"""Generated from program {program.name!r} (pooled unfused)."""'
    ]
    lines.append(_PRELUDE)
    lines.append("def bind_program(RT, P):")
    lines.extend(_bind_preamble(program))
    body = "\n".join(_module_body(program, method_sources, exprc))
    lines.append(textwrap.indent(body, "    "))
    lines.append("    return {'run_entry': run_entry}")
    lines.append("")
    return "\n".join(lines)


def assemble_pooled_fused_module(
    fused: FusedProgram,
    method_sources: dict[str, str],
    unit_sources: dict[tuple[str, ...], tuple[str, list[str]]],
) -> str:
    """Stitch pooled method + unit sources into the self-contained
    pooled fused module (unfused tables ride along for fallback calls)."""
    program = fused.program
    program.finalize()
    exprc = _PooledExprCompiler(program)
    lines = [
        f'"""Generated from program {program.name!r} (pooled fused)."""'
    ]
    lines.append(_PRELUDE)
    lines.append("def bind_fused(RT, P):")
    lines.extend(_bind_preamble(program))
    body_lines = _module_body(program, method_sources, exprc)
    body_lines.append("")
    body_lines.extend(_fused_body(fused, unit_sources, exprc))
    lines.append(textwrap.indent("\n".join(body_lines), "    "))
    lines.append(
        "    return {'run_entry': run_entry, 'run_fused': run_fused}"
    )
    lines.append("")
    return "\n".join(lines)


def emit_pooled_module(program: Program) -> str:
    """Pooled Python source for the original (unfused) program."""
    program.finalize()
    return assemble_pooled_module(
        program,
        {
            qualified: emit_pooled_method_source(program, method)
            for qualified, method in module_methods(program).items()
        },
    )


def emit_pooled_fused_module(fused: FusedProgram) -> str:
    """Pooled Python source for a fused program (self-contained)."""
    program = fused.program
    program.finalize()
    return assemble_pooled_fused_module(
        fused,
        {
            qualified: emit_pooled_method_source(program, method)
            for qualified, method in module_methods(program).items()
        },
        {
            key: emit_pooled_unit_source(program, fused.units[key])
            for key in fused.units
        },
    )


# ===========================================================================
# public API
# ===========================================================================


class _PooledRunMixin:
    """The ingest → bind → run → write-back round trip both pooled
    compiled classes share. ``run_entry``/``run_fused`` keep the object
    backend's signatures (the executor never knows which layout ran):
    the tree is serialized into a fresh pool, the traversal runs against
    the columns, and the results are written back into the original
    ``Node`` objects — snapshot- and footprint-identical to an
    object-graph run. Callers that hold a pool already (the batch-reuse
    path) use :meth:`bind` directly and skip the round trip."""

    def bind(self, context: RuntimeContext, pool: ForestPool) -> dict:
        """Bind the generated module to one (runtime, pool) pair;
        returns the entry-point dict the module's bind function built."""
        return self.namespace[self._bind_name](context, pool)

    def _run(self, entry: str, heap: Heap, root: Node, globals_map):
        context = RuntimeContext(self.program, heap, globals_map)
        pool = ForestPool.from_tree(self.program, root)
        self.bind(context, pool)[entry](pool.roots[0])
        pool.write_back(heap)
        return context


class CompiledPooledProgram(_PooledRunMixin, _CompiledModule):
    _bind_name = "bind_program"

    def __init__(self, program: Program):
        self.program = program
        self.source = emit_pooled_module(program)
        self._namespace = None
        self.namespace  # eager exec: surface bad codegen at compile time

    @classmethod
    def from_source(
        cls, program: Program, source: str
    ) -> "CompiledPooledProgram":
        self = cls.__new__(cls)
        self.program = program
        self.source = source
        self._namespace = None
        return self

    def _module_name(self) -> str:
        return f"<repro:{self.program.name}:pooled>"

    def run_entry(
        self, heap: Heap, root: Node, globals_map=None
    ) -> RuntimeContext:
        return self._run("run_entry", heap, root, globals_map)


class CompiledPooledFused(_PooledRunMixin, _CompiledModule):
    _bind_name = "bind_fused"

    def __init__(self, fused: FusedProgram):
        self.fused = fused
        self.program = fused.program
        self.source = emit_pooled_fused_module(fused)
        self._namespace = None
        self.namespace  # eager exec: surface bad codegen at compile time

    @classmethod
    def from_source(
        cls, fused: FusedProgram, source: str
    ) -> "CompiledPooledFused":
        self = cls.__new__(cls)
        self.fused = fused
        self.program = fused.program
        self.source = source
        self._namespace = None
        return self

    def _module_name(self) -> str:
        return f"<repro:{self.program.name}:pooled-fused>"

    def run_entry(
        self, heap: Heap, root: Node, globals_map=None
    ) -> RuntimeContext:
        return self._run("run_entry", heap, root, globals_map)

    def run_fused(
        self, heap: Heap, root: Node, globals_map=None
    ) -> RuntimeContext:
        return self._run("run_fused", heap, root, globals_map)


def compile_pooled_program(program: Program) -> CompiledPooledProgram:
    return CompiledPooledProgram(program)


def compile_pooled_fused(fused: FusedProgram) -> CompiledPooledFused:
    return CompiledPooledFused(fused)
