"""Dependence analysis (paper §3.2).

Pipeline:

1. :mod:`repro.analysis.accesses` — abstract interpretation over a method
   body collecting, per top-level statement, the raw read/write access
   paths (with aliases inlined and whole-object accesses flagged).
2. :mod:`repro.analysis.summaries` — turns raw accesses into the paper's
   access automata and provides the pairwise interference test.
3. :mod:`repro.analysis.callgraph` / :mod:`repro.analysis.call_automata` —
   the labeled call graph and Algorithm 1: automata summarizing everything
   a traversing call may touch, relative to the caller's ``this``, under
   dynamic dispatch and (mutual/unbounded) recursion.
4. :mod:`repro.analysis.dependence` — the dependence graph for a sequence
   of traversals inlined at a common node; drives fusion.
"""

from repro.analysis.accesses import AccessInfo, StatementAccesses, collect_method_accesses
from repro.analysis.summaries import ROOT_LABEL, StatementSummary, interferes, merge_summaries
from repro.analysis.callgraph import CallGraph, build_call_graph, call_targets, dispatch_targets
from repro.analysis.call_automata import AnalysisContext, build_call_summary
from repro.analysis.dependence import DependenceGraph, Vertex, build_dependence_graph

__all__ = [
    "AccessInfo",
    "StatementAccesses",
    "collect_method_accesses",
    "ROOT_LABEL",
    "StatementSummary",
    "interferes",
    "merge_summaries",
    "CallGraph",
    "build_call_graph",
    "call_targets",
    "dispatch_targets",
    "AnalysisContext",
    "build_call_summary",
    "DependenceGraph",
    "Vertex",
    "build_dependence_graph",
]
