"""Access summaries: raw access paths -> automata + interference test.

Implements the second half of paper §3.2.1. Each dependence-graph vertex
carries a :class:`StatementSummary` holding four automata:

* ``tree_reads`` / ``tree_writes`` — languages over
  ``ROOT · (field label)*``, rooted at the traversed node. The special
  first label :data:`ROOT_LABEL` is the paper's *traversed-node*
  transition; both sides of every dependence test are rooted at the same
  node, so the markers line up.
* ``env_reads`` / ``env_writes`` — languages over ``::global`` /
  ``local:NAME`` labels followed by member labels.

Two statements interfere (need an edge) iff some write automaton of one
intersects a read or write automaton of the other, on either side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata import Automaton, from_path, intersects, union
from repro.analysis.accesses import AccessInfo

ROOT_LABEL = "⟨root⟩"


@dataclass
class StatementSummary:
    """The four access automata of one dependence-graph vertex."""

    tree_reads: Automaton
    tree_writes: Automaton
    env_reads: Automaton
    env_writes: Automaton

    @staticmethod
    def from_accesses(
        tree_reads: list[AccessInfo],
        tree_writes: list[AccessInfo],
        env_reads: list[AccessInfo],
        env_writes: list[AccessInfo],
    ) -> "StatementSummary":
        return StatementSummary(
            tree_reads=_tree_automaton(tree_reads, is_write=False),
            tree_writes=_tree_automaton(tree_writes, is_write=True),
            env_reads=env_automaton(env_reads, is_write=False),
            env_writes=env_automaton(env_writes, is_write=True),
        )


def _tree_automaton(accesses: list[AccessInfo], is_write: bool) -> Automaton:
    """Union of primitive automata, each prefixed by the ROOT transition.

    Read automata accept the bare ``[ROOT]`` prefix (reading ``this``);
    this is harmless because no write automaton ever accepts it — every
    write path has at least one member label after ROOT.
    """
    parts = []
    for info in accesses:
        parts.append(
            from_path(
                [ROOT_LABEL, *info.labels],
                accept_prefixes=not is_write,
                any_suffix=info.any_suffix,
            )
        )
    return union(parts)


def env_automaton(accesses: list[AccessInfo], is_write: bool) -> Automaton:
    parts = []
    for info in accesses:
        parts.append(
            from_path(
                list(info.labels),
                accept_prefixes=not is_write,
                any_suffix=info.any_suffix,
            )
        )
    return union(parts)


def interferes(a: StatementSummary, b: StatementSummary) -> bool:
    """The paper's dependence test: write/read or write/write overlap on
    either the tree or the environment automata."""
    if intersects(a.tree_writes, b.tree_reads):
        return True
    if intersects(a.tree_writes, b.tree_writes):
        return True
    if intersects(b.tree_writes, a.tree_reads):
        return True
    if intersects(a.env_writes, b.env_reads):
        return True
    if intersects(a.env_writes, b.env_writes):
        return True
    if intersects(b.env_writes, a.env_reads):
        return True
    return False


def merge_summaries(parts: list[StatementSummary]) -> StatementSummary:
    """Union several summaries into one (used for conditional call blocks
    in TreeFuser mode and for whole-call summaries)."""
    return StatementSummary(
        tree_reads=union([p.tree_reads for p in parts]),
        tree_writes=union([p.tree_writes for p in parts]),
        env_reads=union([p.env_reads for p in parts]),
        env_writes=union([p.env_writes for p in parts]),
    )
