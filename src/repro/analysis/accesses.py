"""Per-statement access-path extraction (paper §3.2.1, first half).

For every *top-level* statement of a traversal method we compute the raw
access paths it may read or write. This is the "simple abstract
interpretation" the paper describes: alias locals are inlined into the
paths they denote, conditional branches are unioned, and accesses are
classified into on-tree (rooted at the traversed node) and environment
(globals and frame locals).

The output feeds :mod:`repro.analysis.summaries`, which turns raw paths
into automata.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AnalysisError
from repro.ir.access import AccessPath
from repro.ir.exprs import DataAccess, Expr, PureCall, walk_expr
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)


@dataclass(frozen=True)
class AccessInfo:
    """One raw access: label sequence + whether every deeper location is
    also touched (whole objects, (de)allocated subtrees)."""

    labels: tuple[str, ...]
    any_suffix: bool = False
    on_tree: bool = True


@dataclass
class StatementAccesses:
    """Raw read/write access paths of one top-level statement.

    ``tree_*`` label sequences are relative to the traversed node (no root
    marker yet); ``env_*`` sequences start with a ``local:NAME`` or
    ``::GLOBAL`` label.
    """

    stmt: Stmt
    tree_reads: list[AccessInfo] = field(default_factory=list)
    tree_writes: list[AccessInfo] = field(default_factory=list)
    env_reads: list[AccessInfo] = field(default_factory=list)
    env_writes: list[AccessInfo] = field(default_factory=list)

    def merge(self, other: "StatementAccesses") -> None:
        self.tree_reads.extend(other.tree_reads)
        self.tree_writes.extend(other.tree_writes)
        self.env_reads.extend(other.env_reads)
        self.env_writes.extend(other.env_writes)


def collect_method_accesses(
    program: Program, method: TraversalMethod
) -> list[StatementAccesses]:
    """Raw accesses for each top-level statement of *method*.

    Aliases are inlined: a path based on an alias local contributes the
    access paths of the alias target prefixed to its own steps. Alias
    *definitions* contribute pointer-chain reads at the defining statement.
    """
    collector = _Collector(program)
    return [collector.collect_top_level(stmt) for stmt in method.body]


class _Collector:
    def __init__(self, program: Program):
        self.program = program
        self.alias_targets: dict[str, AccessPath] = {}

    # -- helpers ----------------------------------------------------------

    def _is_opaque_valued(self, path: AccessPath) -> bool:
        """True when the path denotes a whole opaque object (so accessing
        it touches every member — modeled with an ANY suffix)."""
        if not path.steps:
            if path.is_global:
                var = self.program.globals[path.base_name]
                return var.type_name in self.program.opaque_classes
            return False
        last = path.steps[-1].field
        if last.is_child:
            return False
        return last.type_name in self.program.opaque_classes

    def _inline_aliases(self, path: AccessPath) -> AccessPath:
        if path.is_local and path.base_name in self.alias_targets:
            target = self.alias_targets[path.base_name]
            return path.with_base_path(target)
        return path

    def _classify(self, path: AccessPath) -> tuple[tuple[str, ...], bool]:
        """Return (label sequence, on_tree) for a resolved, alias-inlined
        path."""
        if path.is_on_tree:
            return tuple(path.labels()), True
        if path.is_global:
            return (f"::{path.base_name}",) + tuple(path.labels()), False
        # a plain data local (aliases were inlined already)
        return (f"local:{path.base_name}",) + tuple(path.labels()), False

    def _add_read(self, acc: StatementAccesses, path: AccessPath) -> None:
        path = self._inline_aliases(path)
        labels, on_tree = self._classify(path)
        info = AccessInfo(
            labels=labels,
            any_suffix=self._is_opaque_valued(path),
            on_tree=on_tree,
        )
        (acc.tree_reads if on_tree else acc.env_reads).append(info)

    def _add_write(
        self, acc: StatementAccesses, path: AccessPath, whole_subtree: bool = False
    ) -> None:
        path = self._inline_aliases(path)
        labels, on_tree = self._classify(path)
        info = AccessInfo(
            labels=labels,
            any_suffix=whole_subtree or self._is_opaque_valued(path),
            on_tree=on_tree,
        )
        (acc.tree_writes if on_tree else acc.env_writes).append(info)
        # Writing through a path reads its proper prefixes (pointer chain).
        if len(labels) > 1:
            prefix = AccessInfo(labels=labels[:-1], any_suffix=False, on_tree=on_tree)
            (acc.tree_reads if on_tree else acc.env_reads).append(prefix)

    def _add_expr_reads(self, acc: StatementAccesses, expr: Expr) -> None:
        for sub in walk_expr(expr):
            if isinstance(sub, DataAccess):
                self._add_read(acc, sub.path)
            elif isinstance(sub, PureCall):
                func = self.program.pure_functions.get(sub.func_name)
                if func is not None:
                    for global_name in sorted(func.reads_globals):
                        acc.env_reads.append(
                            AccessInfo(
                                labels=(f"::{global_name}",),
                                any_suffix=True,
                                on_tree=False,
                            )
                        )

    # -- statement dispatch -------------------------------------------------

    def collect_top_level(self, stmt: Stmt) -> StatementAccesses:
        acc = StatementAccesses(stmt=stmt)
        self._collect_into(acc, stmt)
        return acc

    def _collect_into(self, acc: StatementAccesses, stmt: Stmt) -> None:
        if isinstance(stmt, Assign):
            self._add_expr_reads(acc, stmt.value)
            self._add_write(acc, stmt.target)
        elif isinstance(stmt, LocalDef):
            if stmt.init is not None:
                self._add_expr_reads(acc, stmt.init)
            acc.env_writes.append(
                AccessInfo(
                    labels=(f"local:{stmt.name}",),
                    any_suffix=stmt.type_name in self.program.opaque_classes,
                    on_tree=False,
                )
            )
        elif isinstance(stmt, AliasDef):
            target = self._inline_aliases(stmt.target)
            if target.is_local:
                raise AnalysisError(
                    f"alias {stmt.name!r} target {target} did not inline"
                )
            self.alias_targets[stmt.name] = target
            # navigating to the aliased node reads the pointer chain
            self._add_read(acc, target)
        elif isinstance(stmt, If):
            self._add_expr_reads(acc, stmt.cond)
            for sub in stmt.then_body:
                self._collect_into(acc, sub)
            for sub in stmt.else_body:
                self._collect_into(acc, sub)
        elif isinstance(stmt, While):
            # a loop's access *set* is the union of one iteration's
            # accesses — paths are trip-count independent (§3.5)
            self._add_expr_reads(acc, stmt.cond)
            for sub in stmt.body:
                self._collect_into(acc, sub)
        elif isinstance(stmt, Return):
            pass
        elif isinstance(stmt, (New, Delete)):
            self._add_write(acc, stmt.target, whole_subtree=True)
        elif isinstance(stmt, PureStmt):
            self._add_expr_reads(acc, stmt.call)
        elif isinstance(stmt, TraverseStmt):
            # Argument expressions are evaluated at the call site, in the
            # caller's frame; the callee's own accesses are summarized by
            # Algorithm 1 (call_automata), not here.
            for arg in stmt.args:
                self._add_expr_reads(acc, arg)
            if stmt.receiver.child is not None:
                acc.tree_reads.append(
                    AccessInfo(
                        labels=(stmt.receiver.child.label,),
                        any_suffix=False,
                        on_tree=True,
                    )
                )
        else:  # pragma: no cover - defensive
            raise AnalysisError(f"unknown statement {type(stmt).__name__}")
