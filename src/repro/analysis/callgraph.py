"""Labeled call graphs (paper §3.2.1, Fig. 5a).

Nodes are *concrete* traversal methods; an edge ``F --c--> G`` means F
contains a traverse statement on child field ``c`` that may dispatch to G
(label ``None`` for calls on ``this``). Dispatch is resolved
conservatively, exactly like Algorithm 1: the possible dynamic types of a
receiver are all concrete subtypes of its static type (for ``this``, of
the method's owner).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import TraverseStmt, walk_stmts


@dataclass(frozen=True)
class CallEdge:
    src: str  # qualified method name
    label: Optional[str]  # child field label, or None for `this`
    dst: str


@dataclass
class CallGraph:
    methods: dict[str, TraversalMethod] = field(default_factory=dict)
    edges: set[CallEdge] = field(default_factory=set)

    def successors(self, qualified_name: str) -> list[CallEdge]:
        return sorted(
            (e for e in self.edges if e.src == qualified_name),
            key=lambda e: (e.label or "", e.dst),
        )

    @property
    def size(self) -> int:
        return len(self.methods)


def dispatch_targets(
    program: Program, static_type: str, method_name: str
) -> list[TraversalMethod]:
    """The concrete methods a virtual call may reach, one per possible
    dynamic type (deduplicated, deterministic order)."""
    targets: dict[str, TraversalMethod] = {}
    for type_name in program.concrete_subtypes(static_type):
        if program.has_method(type_name, method_name):
            method = program.resolve_method(type_name, method_name)
            targets.setdefault(method.qualified_name, method)
    return [targets[name] for name in sorted(targets)]


def call_targets(
    program: Program, caller: TraversalMethod, stmt: TraverseStmt
) -> list[TraversalMethod]:
    """Dispatch targets of one traverse statement inside *caller*."""
    if stmt.receiver.is_this:
        static_type = caller.owner
    else:
        static_type = stmt.receiver.child.type_name
    return dispatch_targets(program, static_type, stmt.method_name)


def build_call_graph(
    program: Program, roots: list[TraversalMethod]
) -> CallGraph:
    """All methods transitively reachable from *roots*, with labeled edges."""
    graph = CallGraph()
    queue: deque[TraversalMethod] = deque(roots)
    for root in roots:
        graph.methods[root.qualified_name] = root
    while queue:
        method = queue.popleft()
        for stmt in walk_stmts(method.body):
            if not isinstance(stmt, TraverseStmt):
                continue
            label = None if stmt.receiver.is_this else stmt.receiver.child.label
            for target in call_targets(program, method, stmt):
                edge = CallEdge(
                    src=method.qualified_name,
                    label=label,
                    dst=target.qualified_name,
                )
                graph.edges.add(edge)
                if target.qualified_name not in graph.methods:
                    graph.methods[target.qualified_name] = target
                    queue.append(target)
    return graph
