"""Algorithm 1: access automata for traversing calls (paper §3.2.1).

A traversing call can reach an unbounded set of nodes through mutual
recursion and dynamic dispatch. The paper summarizes everything such a
call may access — *relative to the caller's traversed node* — by building
an automaton over the labeled call graph:

* the start state takes the traversed-node (ROOT) transition;
* each reachable concrete method gets one state (memoized — recursion
  becomes a loop, which is what makes unbounded trees finite here);
* an edge of the call graph labeled with child field ``c`` becomes a
  ``c``-transition between method states (epsilon for calls on ``this``);
* the (un-rooted) access automata of each method's simple statements are
  attached at the method's state, so the regular language of a statement
  becomes the suffix of the path that reaches its function (Fig. 5b).

Read machines mark method states accepting — traversing into a child reads
the child pointer. Write machines accept only within attached statement
write automata.

Environment (off-tree) accesses of reachable methods are not parameterized
by the receiver (paper: "regardless of when and where the function gets
called, those access paths will be the same"), so they are unioned
directly. Callee locals are frame-private and excluded; argument
expressions of nested calls are evaluated in the enclosing frame and are
attached at the enclosing method's state by the statement accesses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.automata import EPSILON, Automaton, from_path
from repro.analysis.accesses import (
    AccessInfo,
    StatementAccesses,
    collect_method_accesses,
)
from repro.analysis.callgraph import call_targets
from repro.analysis.summaries import ROOT_LABEL, StatementSummary, env_automaton
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import TraverseStmt, nested_traversals


class AnalysisContext:
    """Caches per-method raw accesses and per-call-shape summaries."""

    def __init__(self, program: Program):
        self.program = program
        self._method_accesses: dict[str, list[StatementAccesses]] = {}
        self._call_summaries: dict[tuple, StatementSummary] = {}

    def method_accesses(self, method: TraversalMethod) -> list[StatementAccesses]:
        key = method.qualified_name
        if key not in self._method_accesses:
            self._method_accesses[key] = collect_method_accesses(
                self.program, method
            )
        return self._method_accesses[key]

    def seed_accesses(
        self, qualified_name: str, accesses: list[StatementAccesses]
    ) -> None:
        """Adopt precomputed (possibly unit-cache-loaded) raw accesses
        for one method, so later summary queries skip the collection."""
        self._method_accesses[qualified_name] = accesses

    def call_summary(
        self, caller: TraversalMethod, stmt: TraverseStmt
    ) -> StatementSummary:
        receiver_label = (
            None if stmt.receiver.is_this else stmt.receiver.child.label
        )
        static_type = (
            caller.owner if stmt.receiver.is_this else stmt.receiver.child.type_name
        )
        key = (static_type, stmt.method_name, receiver_label)
        if key not in self._call_summaries:
            self._call_summaries[key] = build_call_summary(
                self, caller, stmt
            )
        return self._call_summaries[key]


@dataclass
class _Builder:
    """Shared construction state for the read and write tree machines."""

    ctx: AnalysisContext
    reads: Automaton
    writes: Automaton
    read_states: dict[str, int]
    write_states: dict[str, int]
    env_reads: list[AccessInfo]
    env_writes: list[AccessInfo]

    def ensure_method(self, method: TraversalMethod) -> tuple[int, int]:
        """State pair for a concrete method, creating (and recursing) on
        first encounter. Returns (read_state, write_state)."""
        name = method.qualified_name
        if name in self.read_states:
            return self.read_states[name], self.write_states[name]
        # method states are accepting in the read machine: reaching a
        # function through child c reads the pointer this->...->c.
        read_state = self.reads.add_state(accepting=True)
        write_state = self.writes.add_state()
        self.read_states[name] = read_state
        self.write_states[name] = write_state
        for accesses in self.ctx.method_accesses(method):
            self._attach_statement(accesses, read_state, write_state)
            for call in nested_traversals(accesses.stmt):
                self._attach_call(method, call, read_state, write_state)
        return read_state, write_state

    def _attach_statement(
        self, accesses: StatementAccesses, read_state: int, write_state: int
    ) -> None:
        for info in accesses.tree_reads:
            self.reads.attach(
                from_path(
                    list(info.labels),
                    accept_prefixes=True,
                    any_suffix=info.any_suffix,
                ),
                read_state,
            )
        for info in accesses.tree_writes:
            self.writes.attach(
                from_path(
                    list(info.labels),
                    accept_prefixes=False,
                    any_suffix=info.any_suffix,
                ),
                write_state,
            )
        self.env_reads.extend(_globals_only(accesses.env_reads))
        self.env_writes.extend(_globals_only(accesses.env_writes))

    def _attach_call(
        self,
        caller: TraversalMethod,
        call: TraverseStmt,
        read_state: int,
        write_state: int,
    ) -> None:
        label = EPSILON if call.receiver.is_this else call.receiver.child.label
        for target in call_targets(self.ctx.program, caller, call):
            target_read, target_write = self.ensure_method(target)
            self.reads.add_transition(read_state, label, target_read)
            self.writes.add_transition(write_state, label, target_write)


def _globals_only(accesses: list[AccessInfo]) -> list[AccessInfo]:
    return [info for info in accesses if info.labels and info.labels[0].startswith("::")]


def build_call_summary(
    ctx: AnalysisContext, caller: TraversalMethod, stmt: TraverseStmt
) -> StatementSummary:
    """The access summary of everything a traversing call may do,
    relative to the caller's traversed node (Algorithm 1).

    Note: the call statement's *own* argument reads and receiver-pointer
    read are site-specific (they involve caller locals) and are added by
    the dependence-graph builder from the statement's raw accesses; this
    summary covers the transitive callee behaviour.
    """
    reads = Automaton(f"call:{stmt.method_name}:reads")
    writes = Automaton(f"call:{stmt.method_name}:writes")
    read_hub = reads.add_state(accepting=False)
    write_hub = writes.add_state()
    reads.add_transition(reads.start, ROOT_LABEL, read_hub)
    writes.add_transition(writes.start, ROOT_LABEL, write_hub)
    builder = _Builder(
        ctx=ctx,
        reads=reads,
        writes=writes,
        read_states={},
        write_states={},
        env_reads=[],
        env_writes=[],
    )
    builder._attach_call(caller, stmt, read_hub, write_hub)
    return StatementSummary(
        tree_reads=reads,
        tree_writes=writes,
        env_reads=env_automaton(builder.env_reads, is_write=False),
        env_writes=env_automaton(builder.env_writes, is_write=True),
    )
