"""Dependence graphs for traversal sequences (paper §3.2).

Given a sequence of concrete traversal methods that will execute
back-to-back on the same tree node (the outlined-and-inlined fused
function), build a graph with one vertex per top-level statement and a
directed edge ``u -> v`` (u before v in program order) when:

* **data**: u and v may touch the same location with at least one write —
  decided by intersecting their access automata (statement summaries for
  simple statements; Algorithm-1 call summaries merged in for traversing
  calls); or
* **control**: u and v belong to the same traversal copy and either may
  ``return`` (truncating that traversal), so their relative order is fixed.

Locals are renamed per traversal copy (``local:<copy>:<name>``), so two
inlined copies of the same function never conflict through their frames,
while intra-copy flow through locals is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.analysis.accesses import AccessInfo, StatementAccesses
from repro.analysis.call_automata import AnalysisContext
from repro.analysis.summaries import StatementSummary, interferes, merge_summaries
from repro.ir.method import TraversalMethod
from repro.ir.stmts import (
    Stmt,
    TraverseStmt,
    contains_return,
    nested_traversals,
)


@dataclass
class Vertex:
    """One dependence-graph vertex: a top-level statement of one copy."""

    index: int  # position in the inlined program order
    member: int  # which traversal copy of the sequence this came from
    stmt: Stmt
    # None when the vertices were built summary-free to replay a cached
    # structure (see build_vertices) — nothing downstream of grouping
    # reads the automata
    summary: Optional[StatementSummary]
    has_return: bool
    # call-vertex info (None for simple statements). A vertex is a *call
    # vertex* when the whole statement is a traverse call; in TreeFuser
    # mode an `if` wrapping calls is a conditional call block, which is
    # never groupable with plain calls (guards must match — see grouping).
    call: Optional[TraverseStmt] = None
    nested_calls: list[TraverseStmt] = field(default_factory=list)
    # the statement's *own* accesses (arguments, guards, receiver
    # pointer) without the transitive callee summary — what a fused call
    # site evaluates in the caller's frame. Grouping hoists these above
    # earlier group members, so it must check them separately (see
    # grouping._argument_hazard). Same object as ``summary`` for
    # non-call vertices.
    site_summary: Optional[StatementSummary] = None

    @property
    def is_call(self) -> bool:
        return self.call is not None

    @property
    def receiver_key(self) -> Optional[str]:
        if self.call is None:
            return None
        return self.call.receiver.key

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vertex({self.index}, m{self.member}, {self.stmt})"


class DependenceGraph:
    """A DAG over statement vertices; edges always point forward in
    program order, so the graph is acyclic by construction."""

    def __init__(self, vertices: list[Vertex]):
        self.vertices = vertices
        self.succ: dict[int, set[int]] = {v.index: set() for v in vertices}
        self.pred: dict[int, set[int]] = {v.index: set() for v in vertices}

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            return
        self.succ[src].add(dst)
        self.pred[dst].add(src)

    def has_edge(self, src: int, dst: int) -> bool:
        return dst in self.succ[src]

    def edge_count(self) -> int:
        return sum(len(s) for s in self.succ.values())

    def to_dot(self) -> str:  # pragma: no cover - debugging aid
        lines = ["digraph dependences {"]
        for vertex in self.vertices:
            label = str(vertex.stmt).replace('"', "'")
            lines.append(f'  {vertex.index} [label="m{vertex.member}: {label}"];')
        for src, dsts in self.succ.items():
            for dst in sorted(dsts):
                lines.append(f"  {src} -> {dst};")
        lines.append("}")
        return "\n".join(lines)


def _rename_locals(info: AccessInfo, member: int) -> AccessInfo:
    if info.labels and info.labels[0].startswith("local:"):
        renamed = (f"local:{member}:{info.labels[0][6:]}",) + info.labels[1:]
        return AccessInfo(labels=renamed, any_suffix=info.any_suffix, on_tree=info.on_tree)
    return info


def _member_summary(
    ctx: AnalysisContext,
    method: TraversalMethod,
    accesses: StatementAccesses,
    member: int,
) -> tuple[StatementSummary, StatementSummary]:
    """(site summary, full summary) for one vertex: the statement's own
    accesses, and those merged with the Algorithm-1 summaries of any
    traversing calls it contains."""
    stmt_summary = StatementSummary.from_accesses(
        tree_reads=[_rename_locals(i, member) for i in accesses.tree_reads],
        tree_writes=[_rename_locals(i, member) for i in accesses.tree_writes],
        env_reads=[_rename_locals(i, member) for i in accesses.env_reads],
        env_writes=[_rename_locals(i, member) for i in accesses.env_writes],
    )
    calls = nested_traversals(accesses.stmt)
    if not calls:
        return stmt_summary, stmt_summary
    parts = [stmt_summary]
    for call in calls:
        parts.append(ctx.call_summary(method, call))
    return stmt_summary, merge_summaries(parts)


def build_vertices(
    ctx: AnalysisContext,
    members: list[TraversalMethod],
    with_summaries: bool = True,
) -> list[Vertex]:
    """The vertex list of the inlined sequence *members*, one per
    top-level statement in member order — the positional layout every
    cached dependence/grouping *structure* refers to.

    ``with_summaries=False`` skips the access automata (the expensive
    part: per-statement machines plus Algorithm-1 call summaries); a
    caller replaying a cached edge/group structure only needs the
    statements and call shapes.
    """
    vertices: list[Vertex] = []
    for member_index, method in enumerate(members):
        for accesses in ctx.method_accesses(method):
            stmt = accesses.stmt
            if with_summaries:
                site, full = _member_summary(
                    ctx, method, accesses, member_index
                )
            else:
                site = full = None
            vertex = Vertex(
                index=len(vertices),
                member=member_index,
                stmt=stmt,
                summary=full,
                has_return=contains_return(stmt),
                call=stmt if isinstance(stmt, TraverseStmt) else None,
                nested_calls=nested_traversals(stmt),
                site_summary=site,
            )
            vertices.append(vertex)
    return vertices


def graph_from_edges(
    vertices: list[Vertex], edges
) -> DependenceGraph:
    """A DependenceGraph from prebuilt vertices and an edge list — how
    a cached structure is replayed over current statements."""
    graph = DependenceGraph(vertices)
    for src, dst in edges:
        graph.add_edge(src, dst)
    return graph


def build_dependence_graph(
    ctx: AnalysisContext, members: list[TraversalMethod]
) -> DependenceGraph:
    """Dependence graph for the inlined sequence *members* (paper §3.3:
    the graph :math:`G_L` for a sequence label L)."""
    vertices = build_vertices(ctx, members, with_summaries=True)
    graph = DependenceGraph(vertices)
    for j, vj in enumerate(vertices):
        for i in range(j):
            vi = vertices[i]
            if vi.member == vj.member and (vi.has_return or vj.has_return):
                graph.add_edge(vi.index, vj.index)
                continue
            if interferes(vi.summary, vj.summary):
                graph.add_edge(vi.index, vj.index)
    return graph
