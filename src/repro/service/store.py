"""Persistent artifact store — now a face of :mod:`repro.storage`.

The on-disk, content-addressed store that lived here (v1 layout, atomic
writes, LRU byte budget, compaction) is now
:class:`repro.storage.disk.DiskTier`, the durable tier of every
:class:`~repro.storage.tiered.TieredStore`. Nothing about the disk
format changed — every existing v1 store stays readable without
migration, and the module-level helpers keep their meanings:

* :func:`store_for` — the process-wide registry, one shared instance
  per resolved ``cache_dir`` (now returning the :class:`DiskTier`
  itself).
* :data:`FORMAT_VERSION` — the layout version, re-exported from
  :mod:`repro.storage.base`.
* :class:`ArtifactStore` — the pre-storage public spelling, kept as a
  thin deprecation shim over :class:`DiskTier` (warns once on direct
  construction; every method — ``load``/``spill``/``load_unit``/
  ``spill_unit``/``evict``/``compact``/``stats`` — is unchanged).
"""

from __future__ import annotations

from repro._compat import warn_legacy
from repro.storage.base import FORMAT_VERSION  # noqa: F401  (public)
from repro.storage.disk import (
    _DEFAULT_MAX_BYTES,
    DiskTier,
    disk_tier_for,
)


class ArtifactStore(DiskTier):
    """Deprecated spelling of :class:`repro.storage.DiskTier`.

    Construction warns once; the disk format and every method are
    identical. New code should call :func:`store_for` (which shares one
    instance per directory) or build a ``DiskTier``.
    """

    def __init__(self, root: str, max_bytes: int = _DEFAULT_MAX_BYTES):
        warn_legacy(
            "ArtifactStore is deprecated; use repro.storage.DiskTier "
            "(same on-disk format, now tier-composable)"
        )
        super().__init__(root, max_bytes=max_bytes)


def store_for(root: str) -> DiskTier:
    """Process-wide store registry, one instance per resolved directory
    (so every compile naming the same ``cache_dir`` shares counters and
    the eviction lock)."""
    return disk_tier_for(root)
