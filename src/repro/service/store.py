"""Persistent, content-addressed artifact store.

Spills :class:`~repro.pipeline.options.CompileResult` records to disk so
a *different process* can skip the whole parse→fuse→emit pipeline — the
torchinductor-style "cache dir full of hashed artifacts" idiom. Keys are
``(source hash, output-options hash)``: like the in-memory
:class:`~repro.pipeline.cache.CompileCache` key but restricted to the
*output-affecting* options (``CompileOptions.output_hash``), so caching
knobs don't fragment the key space — a ``persist=False`` reader hits
entries a ``persist=True`` writer left, and a store directory keeps
working after being moved or mounted at a different path.

Layout (versioned so future formats never misread old files)::

    <root>/v1/<source_hash[:2]>/<source_hash>-<output_hash>.pkl

Each file is one pickled payload ``{"format": 1, "repro": <version>,
"result": <CompileResult>}``. Both the format *and* the repro version
are checked on load — pickled records mirror in-memory class layouts,
so an entry written by a different repro version is treated as a clean
miss (and deleted) rather than risking attribute drift at run time.
Compiled modules travel as generated source (their exec'd namespaces
are rebuilt lazily on first run — see ``codegen.python_backend``), so a
warm-store compile costs a file read plus an unpickle, not a module
exec.

Concurrency: writes go to a temp file in the destination directory and
are published with ``os.replace`` (atomic on POSIX), so a reader never
observes a half-written artifact and two processes racing to spill the
same key both leave a complete file. Corrupt or unreadable entries are
deleted and treated as misses. Eviction is LRU by file mtime under a
total byte budget; ``load`` touches the file's mtime so recently served
artifacts survive.

Results whose programs carry non-portable pure-function impls (lambdas,
closures — anything keyed by ``id()``, see
:func:`repro.pipeline.options.impl_ref`) are never spilled: their cache
keys are not stable across processes, so persisting them could at best
never hit and at worst alias.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path
from typing import Optional

from repro import __version__
from repro.pipeline.options import CompileResult, impls_portable

FORMAT_VERSION = 1

_DEFAULT_MAX_BYTES = 256 * 1024 * 1024

# compact() only reclaims .tmp files older than this: younger ones may
# be a concurrent writer between mkstemp and os.replace
_TMP_GRACE_SECONDS = 60.0


class ArtifactStore:
    """On-disk LRU store of compile results, keyed by content hashes."""

    def __init__(
        self, root: str, max_bytes: int = _DEFAULT_MAX_BYTES
    ):
        self.root = Path(root)
        self.dir = self.root / f"v{FORMAT_VERSION}"
        self.dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        # running spill-bytes estimate so evict() only pays a full
        # directory scan when the budget is plausibly exceeded; the
        # first spill always scans, so bytes a *previous* process left
        # behind (a reopened or CI-restored store) count against the
        # budget too
        self._bytes_since_scan = 0
        self._scanned = False
        self.spills = 0
        self.spill_skips = 0
        self.spill_errors = 0
        self.loads = 0
        self.load_misses = 0
        self.load_errors = 0
        self.evictions = 0
        self.compactions = 0
        self.compacted_entries = 0
        self.compacted_bytes = 0

    # -- paths ----------------------------------------------------------

    def path_for(self, source_hash: str, output_hash: str) -> Path:
        return (
            self.dir / source_hash[:2] / f"{source_hash}-{output_hash}.pkl"
        )

    # -- read -----------------------------------------------------------

    def load(
        self, source_hash: str, output_hash: str
    ) -> Optional[CompileResult]:
        """The stored result for a key, or ``None``. Touches the entry's
        mtime (LRU recency); removes entries that fail to deserialize or
        were written by a different format/repro version."""
        path = self.path_for(source_hash, output_hash)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.load_misses += 1
            return None
        try:
            payload = pickle.loads(blob)
            if payload.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"format {payload.get('format')!r} != {FORMAT_VERSION}"
                )
            if payload.get("repro") != __version__:
                # pickled records mirror in-memory class layouts; a
                # version mismatch risks stale __dict__ shapes, so it
                # is a clean miss, not a runtime surprise
                raise ValueError(
                    f"repro {payload.get('repro')!r} != {__version__}"
                )
            result = payload["result"]
        except Exception:
            # a corrupt/foreign file is a miss; drop it so it cannot
            # keep failing (and cannot count against the byte budget)
            with self._lock:
                self.load_errors += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self.loads += 1
        return result

    # -- write ----------------------------------------------------------

    def spill(self, result: CompileResult) -> bool:
        """Persist one compile result (atomic publish; best-effort).

        Returns ``True`` when the artifact is on disk afterwards.
        Results with non-portable impls are skipped (counted in
        ``spill_skips``); serialization/IO failures are counted in
        ``spill_errors`` and never propagate — persistence is an
        optimization, not a correctness requirement.
        """
        if result.program is None or not impls_portable(result.program):
            with self._lock:
                self.spill_skips += 1
            return False
        path = self.path_for(
            result.source_hash, result.options.output_hash()
        )
        payload = {
            "format": FORMAT_VERSION,
            "repro": __version__,
            # stored records are plain cold results: hit bookkeeping is
            # the *loading* process's business
            "result": replace(result, cache_hit=False, cold_timings=None),
        }
        try:
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            with self._lock:
                self.spill_errors += 1
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".spill-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            with self._lock:
                self.spill_errors += 1
            return False
        with self._lock:
            self.spills += 1
            self._bytes_since_scan += len(blob)
            scan = (
                not self._scanned
                or self._bytes_since_scan > self.max_bytes
            )
        if scan:
            # the running estimate only grows between scans, so after
            # the initial scan a full one happens at most once per
            # max_bytes of spilled data
            self.evict()
        return True

    # -- eviction -------------------------------------------------------

    def _entries(self) -> list[tuple[float, int, Path]]:
        """(mtime, size, path) for every stored artifact."""
        entries = []
        for path in self.dir.glob("*/*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        return entries

    def evict(self) -> int:
        """Delete least-recently-used artifacts until the store fits the
        byte budget. Returns the number of files removed."""
        with self._lock:
            entries = self._entries()
            total = sum(size for _, size, _ in entries)
            removed = 0
            for _, size, path in sorted(entries):
                if total <= self.max_bytes:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                removed += 1
            self.evictions += removed
            self._bytes_since_scan = total
            self._scanned = True
            return removed

    # -- compaction -----------------------------------------------------

    def compact(self) -> dict[str, int]:
        """Drop every entry the current process could never serve.

        A long-lived store accumulates dead weight that LRU eviction
        alone never reclaims promptly: whole directory trees left by
        other *format* versions (normal loads never look inside them),
        entries written by other *repro* versions (every load of one is
        a miss-and-delete, but only when its exact key is asked for),
        corrupt files, and stale ``.spill-*.tmp`` droppings from
        crashed writers (fresh ones are spared — they may be a live
        writer mid-publish). Compaction scans once, deletes all of
        them, and refreshes the byte estimate. Returns the per-run
        summary; cumulative counters land in :meth:`stats` (and
        therefore the service ``/stats`` endpoint).
        """
        import shutil

        removed = 0
        reclaimed = 0
        # whole trees left by other *format* versions (a FORMAT_VERSION
        # bump with a shared or CI-restored store dir): normal loads
        # never even look inside them, so only compaction can reclaim
        for version_dir in self.root.glob("v*"):
            if version_dir == self.dir or not version_dir.is_dir():
                continue
            for stale in version_dir.rglob("*"):
                if stale.is_file():
                    removed += 1
                    try:
                        reclaimed += stale.stat().st_size
                    except OSError:
                        pass
            shutil.rmtree(version_dir, ignore_errors=True)
        now = time.time()
        for tmp in self.dir.glob("*/.spill-*.tmp"):
            try:
                stat = tmp.stat()
                # a fresh tmp file may be a concurrent writer mid-spill
                # (created by mkstemp, not yet os.replace'd) — only
                # files old enough to be crash droppings are dead
                if now - stat.st_mtime < _TMP_GRACE_SECONDS:
                    continue
                size = stat.st_size
                tmp.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        for path in self.dir.glob("*/*.pkl"):
            try:
                payload = pickle.loads(path.read_bytes())
                keep = (
                    payload.get("format") == FORMAT_VERSION
                    and payload.get("repro") == __version__
                )
            except Exception:
                keep = False
            if keep:
                continue
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        with self._lock:
            self.compactions += 1
            self.compacted_entries += removed
            self.compacted_bytes += reclaimed
            # the estimate drove eviction scans; refresh it from disk
            self._bytes_since_scan = sum(
                size for _, size, _ in self._entries()
            )
            self._scanned = True
        return {"removed": removed, "reclaimed_bytes": reclaimed}

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries())

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self._entries())

    def clear(self) -> None:
        for _, _, path in self._entries():
            try:
                path.unlink()
            except OSError:
                pass

    def stats(self) -> dict[str, int]:
        entries = self._entries()  # one directory walk for both gauges
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
            "spills": self.spills,
            "spill_skips": self.spill_skips,
            "spill_errors": self.spill_errors,
            "loads": self.loads,
            "load_misses": self.load_misses,
            "load_errors": self.load_errors,
            "evictions": self.evictions,
            "compactions": self.compactions,
            "compacted_entries": self.compacted_entries,
            "compacted_bytes": self.compacted_bytes,
        }


_STORES: dict[str, ArtifactStore] = {}
_STORES_LOCK = threading.Lock()


def store_for(root: str) -> ArtifactStore:
    """Process-wide store registry, one instance per resolved directory
    (so every compile naming the same ``cache_dir`` shares counters and
    the eviction lock)."""
    resolved = os.path.abspath(root)
    with _STORES_LOCK:
        store = _STORES.get(resolved)
        if store is None:
            store = ArtifactStore(resolved)
            _STORES[resolved] = store
        return store
