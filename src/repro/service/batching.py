"""Execution requests, artifact grouping, and forest sharding.

The service accepts many ``(program, forest)`` requests. Before
anything executes, requests are **grouped by compiled artifact** — the
same ``(source hash, options hash)`` key the compile cache uses — so an
artifact is resolved once per wave however many requests name it. Each
group's forests are then **sharded**: split into contiguous runs of
trees sized to keep worker-pool round trips rare while still letting
every worker pull work.

Everything a worker receives must survive ``pickle`` (the process
backend ships shards to forked/spawned workers): tree *specs* rather
than built trees, module-level ``build_tree``/``collect`` callables
rather than closures, and source text plus portable pure impls rather
than live ``Program`` objects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence, Union

from repro._compat import warn_legacy
from repro.ir.program import Program
from repro.pipeline import CompileOptions, hash_program, hash_source

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.workload import Workload

_request_ids = itertools.count(1)


def default_collect(program, heap, root) -> dict:
    """Per-tree summary when a request has no collector: enough to
    cross-check batched against sequential execution (the snapshot is
    hashed so shipping results between processes stays cheap)."""
    import hashlib

    snapshot = repr(root.snapshot(program))
    return {
        "snapshot_sha": hashlib.sha256(snapshot.encode()).hexdigest(),
        "tree_bytes": heap.footprint_bytes,
    }


@dataclass
class ExecRequest:
    """One unit of service work: run a program over a forest.

    The supported construction path is a :class:`~repro.api.workload.
    Workload` — :meth:`from_workload` (or ``workload.request(...)``)
    fills ``source``/``build_tree``/``globals_map``/``pure_impls`` from
    the bundle. Filling those fields by hand still works as a
    deprecation shim.

    * ``source`` — Grafter source text (its content hash is stable
      everywhere) or a built ``Program``.
    * ``trees`` — picklable tree specs; ``build_tree(program, heap,
      spec)`` realizes each one in a worker.
    * ``fused`` — run the fused module (the product under test) or the
      unfused baseline.
    * ``collect`` — optional ``(program, heap, root) -> picklable``
      per-tree summary; defaults to :func:`default_collect`.
    * ``mode`` — ``"compiled"`` (the pipeline artifact) or
      ``"interpret"`` (the reference interpreter: zero compile latency,
      original semantics; ``fused`` is ignored). Interpret requests
      group under their own key so they never wait on a compile.
    """

    source: Union[str, Program, None] = None
    trees: Sequence = ()
    build_tree: Optional[Callable] = None
    globals_map: Optional[dict] = None
    pure_impls: Optional[dict] = None
    options: CompileOptions = field(default_factory=CompileOptions)
    fused: bool = True
    collect: Optional[Callable] = None
    workload: Optional["Workload"] = None
    mode: str = "compiled"
    request_id: int = field(default_factory=lambda: next(_request_ids))
    # the submitting span's (trace_id, span_id) — picklable, so the
    # executor can reparent worker-side spans under the request's trace
    # even across the process pool. None = no active trace at submit.
    trace_context: Optional[tuple] = None

    def __post_init__(self):
        if self.workload is not None:
            if self.source is None:
                self.source = self.workload.source
            if self.build_tree is None:
                self.build_tree = self.workload.build_tree
            if self.globals_map is None and self.workload.globals_map:
                self.globals_map = dict(self.workload.globals_map)
            if self.pure_impls is None and self.workload.pure_impls:
                self.pure_impls = dict(self.workload.pure_impls)
        else:
            warn_legacy(
                "constructing ExecRequest from loose source/build_tree "
                "fields is deprecated; use Workload.request(...) or "
                "ExecRequest.from_workload(...)"
            )
        if self.source is None or self.build_tree is None:
            raise TypeError(
                "ExecRequest needs a workload or explicit "
                "source + build_tree"
            )
        if self.mode not in ("compiled", "interpret"):
            raise ValueError(
                f"unknown execution mode {self.mode!r}; "
                "pick 'compiled' or 'interpret'"
            )

    @classmethod
    def from_workload(
        cls,
        workload: "Workload",
        trees: Sequence,
        *,
        options: Optional[CompileOptions] = None,
        fused: bool = True,
        collect: Optional[Callable] = None,
        mode: str = "compiled",
    ) -> "ExecRequest":
        """The canonical constructor: everything program-shaped comes
        from the workload bundle; only the forest and execution knobs
        are per-request."""
        return cls(
            trees=list(trees),
            options=options if options is not None else CompileOptions(),
            fused=fused,
            collect=collect,
            workload=workload,
            mode=mode,
        )

    def compile_key(self) -> tuple[str, str]:
        """The cache key this request's artifact lives under. Interpret
        requests get a distinct key (prefixed options hash) so a wave
        never groups them with compiled requests for the same source —
        their whole point is not waiting on that compile."""
        if isinstance(self.source, Program):
            source_hash = hash_program(self.source)
        else:
            source_hash = hash_source(self.source, self.pure_impls)
        options_hash = self.options.options_hash()
        if self.mode == "interpret":
            return (source_hash, f"interp:{options_hash}")
        return (source_hash, options_hash)


@dataclass
class TreeResult:
    """One executed tree."""

    request_id: int
    index: int  # position in the request's forest
    summary: object
    seconds: float


@dataclass
class RequestGroup:
    """Requests sharing one compiled artifact."""

    key: tuple[str, str]
    requests: list[ExecRequest] = field(default_factory=list)

    @property
    def tree_count(self) -> int:
        return sum(len(r.trees) for r in self.requests)


@dataclass
class Shard:
    """A contiguous run of one request's trees, the pool's work unit."""

    request: ExecRequest
    indexes: list[int]


def group_requests(requests: Sequence[ExecRequest]) -> list[RequestGroup]:
    """Group by compile key, preserving first-seen order."""
    groups: dict[tuple[str, str], RequestGroup] = {}
    for request in requests:
        key = request.compile_key()
        group = groups.get(key)
        if group is None:
            group = groups[key] = RequestGroup(key=key)
        group.requests.append(request)
    return list(groups.values())


def shard_indexes(count: int, shards: int) -> list[list[int]]:
    """Split ``range(count)`` into at most ``shards`` contiguous,
    near-equal runs (the classic block distribution)."""
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    out: list[list[int]] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        out.append(list(range(start, start + size)))
        start += size
    return [s for s in out if s]


def shard_group(group: RequestGroup, workers: int,
                shards_per_worker: int = 2) -> list[Shard]:
    """Shard every forest in a group. The target shard count scales
    with the worker pool (a couple of shards per worker keeps the pool
    busy without paying a round trip per tree)."""
    shards: list[Shard] = []
    for request in group.requests:
        count = len(request.trees)
        if count == 0:
            continue
        target = max(1, workers * shards_per_worker)
        for indexes in shard_indexes(count, target):
            shards.append(Shard(request=request, indexes=indexes))
    return shards
