"""Batched execution of traversal requests on a worker pool.

The :class:`BatchExecutor` takes waves of
:class:`~repro.service.batching.ExecRequest` objects and:

1. **groups** them by compiled artifact (one compile per artifact per
   wave, however many requests name it),
2. **resolves** each group's artifact once up front — a memory-cache
   hit, a disk-store load, or a cold compile that immediately spills
   for the next process,
3. **shards** the group's forests into contiguous runs and executes
   them on the pool,
4. **records** per-batch metrics: queue depth at wave formation, batch
   size, and p50/p99 tree/shard latency via
   :class:`repro.runtime.stats.LatencySeries`.

Backends:

* ``"thread"`` (default) — a ``ThreadPoolExecutor``; workers share the
  in-process compile cache, so only the pre-resolve ever compiles.
* ``"process"`` — a ``ProcessPoolExecutor``; shards must pickle (see
  :mod:`repro.service.batching`). Forked workers inherit the parent's
  warm cache; spawned ones fall back to the on-disk store when the
  requests carry a ``cache_dir``.
* ``"inline"`` — no pool, shards run in the caller's thread: the
  sequential baseline and the zero-dependency debugging mode.

``submit()`` is the async front door: requests queue to a dispatcher
thread that coalesces everything pending (plus a short linger window)
into one wave, so independently submitted requests for the same
artifact still batch.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro import obs
from repro._compat import suppress_legacy_warnings
from repro.pipeline import compile as pipeline_compile
from repro.runtime import Heap
from repro.runtime.stats import LatencySeries
from repro.service.batching import (
    ExecRequest,
    RequestGroup,
    Shard,
    TreeResult,
    default_collect,
    group_requests,
    shard_group,
)

_BACKENDS = ("thread", "process", "inline")

# the registry face of stats(): totals survive executor turnover and
# are scrapeable (/metrics) without walking BatchMetrics records
_EXEC_REQUESTS = obs.REGISTRY.counter(
    "repro_exec_requests_total",
    "executor requests by final status",
    labels=("status",),
)
_EXEC_TREES = obs.REGISTRY.counter(
    "repro_exec_trees_total", "trees executed to completion"
)
_EXEC_WAVES = obs.REGISTRY.counter(
    "repro_exec_waves_total", "coalesced dispatch waves executed"
)
_TREE_SECONDS = obs.REGISTRY.histogram(
    "repro_exec_tree_seconds", "per-tree traversal wall time"
)
_EXEC_MODES = obs.REGISTRY.counter(
    "repro_exec_mode_total",
    "executor requests by execution mode",
    labels=("mode",),
)


@dataclass
class ShardRun:
    """One shard's outcome: its tree results plus any spans the worker
    recorded (shipped back across the pool boundary so the submitting
    request's trace stays whole — see :func:`repro.obs.collect_spans`)."""

    trees: list[TreeResult]
    spans: Optional[list] = None


def _execute_shard(
    request: ExecRequest,
    indexes: list[int],
    trace_ctx: Optional[tuple] = None,
) -> ShardRun:
    """Run one shard: compile (warm in every interesting case — see the
    pre-resolve in ``BatchExecutor._run_group``) then build and traverse
    each tree. Module-level so the process backend can pickle it.

    ``trace_ctx`` is the dispatching group span's serialized context;
    when set, the shard records a reparented ``exec.shard`` span (and
    any child spans the warm compile emits) into a local bucket that
    rides home in the :class:`ShardRun` — a fresh worker process has
    its own tracer, so spans must travel with the result."""
    with obs.collect_spans(trace_ctx is not None) as bucket:
        with obs.span_from(
            trace_ctx,
            "exec.shard",
            request_id=request.request_id,
            trees=len(indexes),
            mode=request.mode,
        ):
            if request.mode == "interpret":
                out = _interpret_trees(request, indexes)
            else:
                with suppress_legacy_warnings():
                    result = pipeline_compile(
                        request.source,
                        options=request.options,
                        pure_impls=request.pure_impls,
                    )
                program = result.program
                compiled = (
                    result.compiled_fused
                    if request.fused
                    else result.compiled_unfused
                )
                collect = request.collect or default_collect
                out = []
                for index in indexes:
                    start = time.perf_counter()
                    heap = Heap(program)
                    root = request.build_tree(
                        program, heap, request.trees[index]
                    )
                    if request.fused:
                        compiled.run_fused(
                            heap, root, request.globals_map
                        )
                    else:
                        compiled.run_entry(
                            heap, root, request.globals_map
                        )
                    summary = collect(program, heap, root)
                    out.append(
                        TreeResult(
                            request_id=request.request_id,
                            index=index,
                            summary=summary,
                            seconds=time.perf_counter() - start,
                        )
                    )
    return ShardRun(trees=out, spans=bucket)


def _interpret_trees(
    request: ExecRequest, indexes: list[int]
) -> list[TreeResult]:
    """The interpret-mode shard body: resolve (parse, not compile) the
    program and run the reference interpreter over each tree. Same
    result contract as the compiled path — summaries come from the same
    ``collect`` on the same post-run heap/root — so callers can't tell
    the tiers apart except by latency. Module-level and closure-free so
    the process backend can pickle its way here too."""
    from repro.interp import InterpretedModule, resolve_program

    program = resolve_program(
        request.source,
        name=f"req-{request.request_id}",
        pure_impls=request.pure_impls,
        mode=request.options.language_mode,
    )
    module = InterpretedModule(program, layout=request.options.layout)
    collect = request.collect or default_collect
    out: list[TreeResult] = []
    for index in indexes:
        start = time.perf_counter()
        heap = Heap(program)
        root = request.build_tree(program, heap, request.trees[index])
        module.run_entry(heap, root, request.globals_map)
        summary = collect(program, heap, root)
        out.append(
            TreeResult(
                request_id=request.request_id,
                index=index,
                summary=summary,
                seconds=time.perf_counter() - start,
            )
        )
    return out


@dataclass
class RequestResult:
    """Outcome of one request: per-tree results in forest order, or an
    error message when its group failed to compile/execute."""

    request_id: int
    trees: list[TreeResult] = field(default_factory=list)
    error: Optional[str] = None
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def summaries(self) -> list:
        return [t.summary for t in self.trees]


@dataclass
class BatchMetrics:
    """One artifact group's execution record."""

    key: tuple[str, str]
    requests: int
    trees: int
    shards: int
    queue_depth: int
    compile_seconds: float = 0.0
    compile_cache_hit: bool = False
    wall_seconds: float = 0.0
    tree_latency: LatencySeries = field(default_factory=LatencySeries)
    shard_latency: LatencySeries = field(default_factory=LatencySeries)

    def as_dict(self) -> dict:
        return {
            "key": "/".join(h[:12] for h in self.key),
            "requests": self.requests,
            "trees": self.trees,
            "shards": self.shards,
            "queue_depth": self.queue_depth,
            "compile_seconds": self.compile_seconds,
            "compile_cache_hit": self.compile_cache_hit,
            "wall_seconds": self.wall_seconds,
            "tree_latency": self.tree_latency.summary(),
            "shard_latency": self.shard_latency.summary(),
        }


class BatchExecutor:
    """Groups, shards, and executes traversal requests (see module doc)."""

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        shards_per_worker: int = 2,
        linger_seconds: float = 0.005,
        peers: tuple = (),
        layout: Optional[str] = None,
    ):
        if backend not in _BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; pick one of {_BACKENDS}"
            )
        self.workers = max(1, workers)
        self.backend = backend
        self.cache_dir = cache_dir
        self.peers = tuple(peers)
        self.layout = layout
        self.shards_per_worker = shards_per_worker
        self.linger_seconds = linger_seconds
        self._pool = None
        self._pool_lock = threading.Lock()
        # async front door
        self._pending: "queue.Queue[tuple[ExecRequest, Future]]" = (
            queue.Queue()
        )
        self._dispatcher: Optional[threading.Thread] = None
        self._closed = False
        self._closed_lock = threading.Lock()
        # metrics
        self._metrics_lock = threading.Lock()
        self.batches: list[BatchMetrics] = []
        self.completed_requests = 0
        self.failed_requests = 0
        self.completed_trees = 0
        self.waves = 0

    # -- pool -----------------------------------------------------------

    def _get_pool(self):
        if self.backend == "inline":
            return None
        with self._pool_lock:
            if self._pool is None:
                if self._closed:
                    # backstop: never rebuild a pool after close() (a
                    # rebuilt pool would have no owner to shut it down)
                    raise RuntimeError("executor is closed")
                if self.backend == "thread":
                    self._pool = ThreadPoolExecutor(
                        max_workers=self.workers,
                        thread_name_prefix="repro-exec",
                    )
                else:
                    self._pool = ProcessPoolExecutor(
                        max_workers=self.workers
                    )
            return self._pool

    # -- synchronous API ------------------------------------------------

    def run(
        self, requests: Sequence[ExecRequest]
    ) -> list[RequestResult]:
        """Execute a wave of requests; results come back in input order."""
        requests = [self._effective(r) for r in requests]
        with self._metrics_lock:
            self.waves += 1
        _EXEC_WAVES.inc()
        by_id: dict[int, RequestResult] = {
            r.request_id: RequestResult(request_id=r.request_id)
            for r in requests
        }
        queue_depth = self._pending.qsize()
        with obs.span(
            "exec.wave", requests=len(requests), backend=self.backend
        ):
            for group in group_requests(requests):
                self._run_group(group, by_id, queue_depth)
        ordered = [by_id[r.request_id] for r in requests]
        with self._metrics_lock:
            for result in ordered:
                if result.ok:
                    self.completed_requests += 1
                    self.completed_trees += len(result.trees)
                else:
                    self.failed_requests += 1
        for request, result in zip(requests, ordered):
            status = "ok" if result.ok else "error"
            _EXEC_REQUESTS.labels(status=status).inc()
            _EXEC_MODES.labels(mode=request.mode).inc()
            if result.ok:
                _EXEC_TREES.inc(len(result.trees))
        return ordered

    def _run_group(
        self,
        group: RequestGroup,
        by_id: dict[int, RequestResult],
        queue_depth: int,
    ) -> None:
        shards = shard_group(
            group, self.workers, self.shards_per_worker
        )
        metrics = BatchMetrics(
            key=group.key,
            requests=len(group.requests),
            trees=group.tree_count,
            shards=len(shards),
            queue_depth=queue_depth,
        )
        wave_start = time.perf_counter()
        # the group span reparents under the *submitting* request's
        # trace (its serialized context rode in on the ExecRequest), so
        # a /submit trace shows its dispatch even though execution
        # happens on the dispatcher thread; with no context it falls
        # back to the ambient exec.wave span (or a no-op)
        first = group.requests[0]
        with obs.span_from(
            first.trace_context,
            "exec.group",
            requests=len(group.requests),
            trees=group.tree_count,
            shards=len(shards),
        ) as gspan:
            # resolve the artifact once per group: thread/fork workers
            # then hit the memory cache, spawned workers the disk store.
            # interpret-mode groups only parse — their whole point is
            # that nothing waits on the pipeline
            try:
                compile_start = time.perf_counter()
                if first.mode == "interpret":
                    from repro.interp import resolve_program

                    resolve_program(
                        first.source,
                        name=f"req-{first.request_id}",
                        pure_impls=first.pure_impls,
                        mode=first.options.language_mode,
                    )
                    metrics.compile_seconds = (
                        time.perf_counter() - compile_start
                    )
                    gspan.set(mode="interpret")
                else:
                    with suppress_legacy_warnings():
                        resolved = pipeline_compile(
                            first.source,
                            options=first.options,
                            pure_impls=first.pure_impls,
                        )
                    metrics.compile_seconds = (
                        time.perf_counter() - compile_start
                    )
                    metrics.compile_cache_hit = resolved.cache_hit
                    gspan.set(compile_cache_hit=resolved.cache_hit)
                    compiled = (
                        resolved.compiled_fused
                        if first.fused
                        else resolved.compiled_unfused
                    )
                    if compiled is None:
                        # emit=False options produce no runnable module
                        # — fail up front with a clear message instead
                        # of letting every shard die on a NoneType
                        # dereference
                        raise ValueError(
                            "service execution needs emitted modules; "
                            "compile with CompileOptions(emit=True)"
                        )
            except Exception as error:  # compile failure fails the group
                for request in group.requests:
                    by_id[request.request_id].error = (
                        f"compile failed: {error}"
                    )
                metrics.wall_seconds = time.perf_counter() - wave_start
                with self._metrics_lock:
                    self.batches.append(metrics)
                return
            pool = self._get_pool()
            if pool is None:
                outcomes = [
                    self._guarded_shard(
                        shard,
                        shard.request.trace_context or gspan.context,
                    )
                    for shard in shards
                ]
            else:
                futures = [
                    pool.submit(
                        _execute_shard,
                        shard.request,
                        shard.indexes,
                        # multi-request groups: each shard reparents to
                        # its own request's trace when it has one
                        shard.request.trace_context or gspan.context,
                    )
                    for shard in shards
                ]
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append(future.result())
                    except Exception as error:
                        outcomes.append(error)
            for shard, outcome in zip(shards, outcomes):
                result = by_id[shard.request.request_id]
                if isinstance(outcome, Exception):
                    result.error = f"shard failed: {outcome}"
                    continue
                obs.ingest(outcome.spans)
                shard_seconds = sum(t.seconds for t in outcome.trees)
                metrics.shard_latency.record(shard_seconds)
                for tree in outcome.trees:
                    metrics.tree_latency.record(tree.seconds)
                    _TREE_SECONDS.observe(tree.seconds)
                    result.trees.append(tree)
        for request in group.requests:
            result = by_id[request.request_id]
            result.trees.sort(key=lambda t: t.index)
            result.wall_seconds = time.perf_counter() - wave_start
        metrics.wall_seconds = time.perf_counter() - wave_start
        with self._metrics_lock:
            self.batches.append(metrics)

    def _guarded_shard(
        self, shard: Shard, trace_ctx: Optional[tuple] = None
    ):
        try:
            return _execute_shard(
                shard.request, shard.indexes, trace_ctx
            )
        except Exception as error:
            return error

    def _effective(self, request: ExecRequest) -> ExecRequest:
        """Apply executor-level defaults (the artifact cache dir, any
        read-only peer stores, and the executor's tree layout)."""
        patches = {}
        if self.cache_dir and request.options.cache_dir is None:
            patches["cache_dir"] = self.cache_dir
        if self.peers and not request.options.peers:
            patches["peers"] = self.peers
        if self.layout is not None and request.options.layout == "object":
            # requests that picked a layout explicitly keep it; the
            # executor default only fills the options default
            patches["layout"] = self.layout
        if patches:
            # dataclasses.replace re-runs __post_init__; this is the
            # executor's own copy, not a user construction
            with suppress_legacy_warnings():
                return replace(
                    request,
                    options=replace(request.options, **patches),
                )
        return request

    # -- async API ------------------------------------------------------

    def submit(self, request: ExecRequest) -> "Future[RequestResult]":
        """Queue one request; the dispatcher coalesces everything
        pending (plus a short linger window) into batched waves."""
        if request.trace_context is None:
            # capture the submitter's active span (if any) so the
            # dispatcher thread — a different context — can reparent
            # the group/shard spans under this request's trace
            request.trace_context = obs.current_context()
        ticket: "Future[RequestResult]" = Future()
        # the closed check, the enqueue, and close()'s drain are
        # mutually exclusive — a submit racing close() either fails
        # fast here or its ticket is visible to the drain
        with self._closed_lock:
            if self._closed:
                raise RuntimeError("executor is closed")
            self._pending.put((request, ticket))
        self._ensure_dispatcher()
        return ticket

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or not self._dispatcher.is_alive():
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop,
                name="repro-dispatch",
                daemon=True,
            )
            self._dispatcher.start()

    def _dispatch_loop(self) -> None:
        while not self._closed:
            try:
                first = self._pending.get(timeout=0.2)
            except queue.Empty:
                continue
            if self.linger_seconds:
                time.sleep(self.linger_seconds)
            wave = [first]
            while True:
                try:
                    wave.append(self._pending.get_nowait())
                except queue.Empty:
                    break
            requests = [request for request, _ in wave]
            try:
                results = self.run(requests)
            except Exception as error:  # defensive: never lose tickets
                for _, ticket in wave:
                    if not ticket.done():
                        ticket.set_exception(error)
                continue
            for (_, ticket), result in zip(wave, results):
                ticket.set_result(result)

    # -- metrics --------------------------------------------------------

    def stats(self) -> dict:
        """The service dashboard record."""
        with self._metrics_lock:
            tree_latency = LatencySeries()
            shard_latency = LatencySeries()
            for batch in self.batches:
                tree_latency.merge(batch.tree_latency)
                shard_latency.merge(batch.shard_latency)
            return {
                "backend": self.backend,
                "workers": self.workers,
                "waves": self.waves,
                "batches": len(self.batches),
                "completed_requests": self.completed_requests,
                "failed_requests": self.failed_requests,
                "completed_trees": self.completed_trees,
                "queue_depth": self._pending.qsize(),
                "tree_latency": tree_latency.summary(),
                "shard_latency": shard_latency.summary(),
                "recent_batches": [
                    b.as_dict() for b in self.batches[-5:]
                ],
            }

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        with self._closed_lock:
            self._closed = True
        # let an in-flight wave finish (its tickets resolve normally)
        # so shutting the pool below cannot strand it mid-run
        dispatcher = self._dispatcher
        if (
            dispatcher is not None
            and dispatcher.is_alive()
            and dispatcher is not threading.current_thread()
        ):
            dispatcher.join(timeout=60)
        # fail any tickets still queued: a caller blocked on
        # ticket.result() must see the shutdown, not hang forever
        while True:
            try:
                _, ticket = self._pending.get_nowait()
            except queue.Empty:
                break
            if not ticket.done():
                ticket.set_exception(
                    RuntimeError("executor closed before execution")
                )
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
