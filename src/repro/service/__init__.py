"""Traversal service: persistent artifacts + batched async execution.

The compiler (``repro.pipeline``) produces content-addressed artifacts;
this package makes them *servable*:

* :mod:`repro.service.store` — the on-disk, content-addressed artifact
  store (now :class:`repro.storage.DiskTier` behind a compat face)
  that survives process restarts: a cold start with a warm store skips
  the whole parse→fuse→emit pipeline, and the HTTP server's
  ``/artifact`` endpoint serves it to other hosts as a
  :class:`repro.storage.PeerTier`.
* :mod:`repro.service.batching` — execution requests, grouping by
  compiled artifact, and forest sharding.
* :mod:`repro.service.executor` — a batch executor that runs sharded
  forests on a worker pool and records per-batch metrics.
* :mod:`repro.service.api` — the front end: a workload registry, the
  :class:`TraversalService` facade, and a small stdlib HTTP server
  behind the ``repro serve`` CLI.
"""

_EXPORTS = {
    "ArtifactStore": "repro.service.store",
    "store_for": "repro.service.store",
    "ExecRequest": "repro.service.batching",
    "RequestGroup": "repro.service.batching",
    "TreeResult": "repro.service.batching",
    "group_requests": "repro.service.batching",
    "shard_indexes": "repro.service.batching",
    "BatchExecutor": "repro.service.executor",
    "RequestResult": "repro.service.executor",
    "TraversalService": "repro.service.api",
    "WORKLOADS": "repro.service.api",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    # lazy exports (PEP 562): the pipeline consults the store on every
    # cache_dir compile, and importing the whole executor/api stack
    # (concurrent.futures, http.server) there would charge ~50 ms of
    # module imports to a warm-store load that otherwise costs ~2 ms
    if name in _EXPORTS:
        import importlib

        module = importlib.import_module(_EXPORTS[name])
        value = getattr(module, name)
        globals()[name] = value
        return value
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
