"""Service front end: workload registry, facade, and HTTP server.

:class:`TraversalService` is the programmatic face of the subsystem —
submit/await/stats over a :class:`~repro.service.executor.BatchExecutor`
with an optional persistent artifact store. The workload registry maps
names (``"render"``) to request builders so callers (CLI, HTTP, tests)
can say *what* to run without holding tree-builder callables.

The HTTP layer is deliberately stdlib-only (``http.server``): the
reproduction must not grow dependencies. Endpoints::

    GET  /healthz            -> {"ok": true}
    GET  /stats              -> executor + store + cache statistics
    POST /submit             -> {"request_id": N}; JSON body names a
                                workload, e.g. {"workload": "render",
                                "trees": 64, "pages": 4}
    GET  /result/<id>        -> completion state / summaries of one id
    POST /shutdown           -> stop serving (used by the smoke test)

Handlers never execute traversals inline — submits go through the
executor's async queue, so the stats endpoint stays responsive while a
batch runs (the point of a *service*).
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro.pipeline import GLOBAL_CACHE, CompileOptions
from repro.service.batching import ExecRequest
from repro.service.executor import BatchExecutor, RequestResult
from repro.service.store import store_for


# ===========================================================================
# workload registry
# ===========================================================================


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, service-runnable workload."""

    name: str
    description: str
    make_request: Callable[..., ExecRequest]


def _render_request(
    trees: int = 8,
    pages: int = 4,
    fused: bool = True,
    options: Optional[CompileOptions] = None,
) -> ExecRequest:
    from repro.workloads.render import (
        DEFAULT_GLOBALS,
        RENDER_PURE_IMPLS,
        RENDER_SOURCE,
        build_document,
        replicated_pages_spec,
    )

    return ExecRequest(
        source=RENDER_SOURCE,
        trees=[replicated_pages_spec(pages) for _ in range(trees)],
        build_tree=build_document,
        globals_map=dict(DEFAULT_GLOBALS),
        pure_impls=RENDER_PURE_IMPLS,
        options=options if options is not None else CompileOptions(),
        fused=fused,
    )


WORKLOADS: dict[str, WorkloadSpec] = {
    # extensible: registering a workload only takes a make_request
    # builder whose trees/build_tree/impls survive pickle (see
    # repro.service.batching)
    "render": WorkloadSpec(
        name="render",
        description="render-tree layout (paper §5.1): replicated pages",
        make_request=_render_request,
    ),
}


# ===========================================================================
# the facade
# ===========================================================================


class TraversalService:
    """Submit/await/stats over a batch executor + artifact store."""

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        max_tickets: int = 1024,
    ):
        self.cache_dir = cache_dir
        self.store = store_for(cache_dir) if cache_dir else None
        self.executor = BatchExecutor(
            workers=workers, backend=backend, cache_dir=cache_dir
        )
        self.max_tickets = max_tickets
        self._tickets: "OrderedDict[int, object]" = OrderedDict()
        self._lock = threading.Lock()

    # -- submission -----------------------------------------------------

    def submit(self, request: ExecRequest) -> int:
        ticket = self.executor.submit(request)
        with self._lock:
            self._tickets[request.request_id] = ticket
            # bounded retention: results are held for polling, not
            # forever — a long-lived server must not accumulate every
            # RequestResult it ever produced. Completed tickets age out
            # first; only under max_tickets *in-flight* requests would
            # an unfinished one be dropped.
            while len(self._tickets) > self.max_tickets:
                victim = next(
                    (
                        rid
                        for rid, t in self._tickets.items()
                        if t.done()
                    ),
                    next(iter(self._tickets)),
                )
                del self._tickets[victim]
        return request.request_id

    def submit_workload(self, name: str, **kwargs) -> int:
        spec = WORKLOADS.get(name)
        if spec is None:
            raise KeyError(
                f"unknown workload {name!r}; have {sorted(WORKLOADS)}"
            )
        return self.submit(spec.make_request(**kwargs))

    # -- results --------------------------------------------------------

    def result(
        self, request_id: int, timeout: Optional[float] = None
    ) -> RequestResult:
        with self._lock:
            ticket = self._tickets.get(request_id)
        if ticket is None:
            raise KeyError(f"unknown request id {request_id}")
        return ticket.result(timeout)

    def poll(self, request_id: int) -> dict:
        """Non-blocking completion state of one request."""
        with self._lock:
            ticket = self._tickets.get(request_id)
        if ticket is None:
            return {"request_id": request_id, "state": "unknown"}
        if not ticket.done():
            return {"request_id": request_id, "state": "pending"}
        try:
            result = ticket.result(0)
        except Exception as error:
            return {
                "request_id": request_id,
                "state": "failed",
                "error": str(error),
            }
        return {
            "request_id": request_id,
            "state": "done" if result.ok else "failed",
            "error": result.error,
            "trees": len(result.trees),
            "wall_seconds": result.wall_seconds,
            "summaries": [t.summary for t in result.trees[:3]],
        }

    # -- stats ----------------------------------------------------------

    def stats(self) -> dict:
        stats = {
            "executor": self.executor.stats(),
            "compile_cache": GLOBAL_CACHE.stats(),
            "workloads": sorted(WORKLOADS),
        }
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "TraversalService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ===========================================================================
# HTTP front end
# ===========================================================================


class _Handler(BaseHTTPRequestHandler):
    service: TraversalService  # set by make_server

    # -- plumbing -------------------------------------------------------

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # quiet by default
        pass

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        elif self.path.startswith("/result/"):
            try:
                request_id = int(self.path.rsplit("/", 1)[1])
            except ValueError:
                self._reply(400, {"error": "bad request id"})
                return
            self._reply(200, self.service.poll(request_id))
        else:
            self._reply(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:
        if self.path == "/shutdown":
            self._reply(200, {"ok": True})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        if self.path != "/submit":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        try:
            payload = json.loads(self.rfile.read(length) or b"{}")
            name = payload.pop("workload")
            request_id = self.service.submit_workload(name, **payload)
        except Exception as error:
            self._reply(400, {"error": str(error)})
            return
        self._reply(200, {"request_id": request_id})


def make_server(
    service: TraversalService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 picks a free port; read
    the result from ``server.server_address``). Call ``serve_forever``
    — the ``/shutdown`` route stops it."""
    handler = type(
        "BoundHandler", (_Handler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)
