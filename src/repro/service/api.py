"""Service front end: workload registry, facade, and HTTP server.

:class:`TraversalService` is the programmatic face of the subsystem —
submit/await/stats over a :class:`~repro.service.executor.BatchExecutor`
with an optional persistent artifact store. The workload registry maps
names (``"render"``) to request builders so callers (CLI, HTTP, tests)
can say *what* to run without holding tree-builder callables.

The HTTP layer is deliberately stdlib-only (``http.server``): the
reproduction must not grow dependencies. Endpoints::

    GET  /healthz            -> {"ok": true}
    GET  /stats              -> executor + tier-labelled storage +
                                legacy cache/store statistics, plus
                                version / uptime_seconds /
                                requests_total service identity
    GET  /metrics            -> the obs registry in Prometheus text
                                exposition format (text/plain)
    GET  /trace/<trace_id>   -> every buffered span of one trace as
                                JSON (404 when the id is unknown);
                                /submit returns the trace_id when the
                                request was traced
    POST /submit             -> {"request_id": N}; JSON body names a
                                workload, e.g. {"workload": "render",
                                "trees": 64, "pages": 4} or any
                                registered name with its size knob
                                ({"workload": "kdtree", "depth": 5});
                                an optional "layout" field picks the
                                tree layout ("object" | "pooled") —
                                per-layout submit counts appear under
                                "layouts" in /stats; an optional
                                "mode" field picks the execution tier
                                ("compiled" | "interpret" — the
                                reference interpreter, zero compile
                                latency), counted per mode in /stats
                                ("modes", interpreted/
                                compiled_requests_total)
    GET  /result/<id>        -> completion state / summaries of one id
    GET  /artifact/result/<source>/<output>
    GET  /artifact/unit/<pass>/<key>
                             -> raw stored payload bytes: this server's
                                store served as a PeerTier, so another
                                host's compile can start warm here
    POST /recompile          -> {"workload": name}: rebuild through the
                                tiered store (whole-result cache
                                bypassed) and return the unit-reuse
                                report as JSON
    POST /gc                 -> {"pass": p?, "max_age_seconds": s?,
                                "max_bytes": b?}: policy GC across the
                                writable tiers
    POST /compact            -> drop unservable store entries
    POST /shutdown           -> stop serving (used by the smoke test)

Handlers never execute traversals inline — submits go through the
executor's async queue, so the stats endpoint stays responsive while a
batch runs (the point of a *service*). ``/recompile`` is the one
deliberate exception: it exists to *measure* a recompile, so it runs
the pipeline in the handler thread and returns the report.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional

from repro import __version__, obs
from repro.pipeline import GLOBAL_CACHE, CompileOptions
from repro.pipeline import compile as pipeline_compile
from repro.service.batching import ExecRequest
from repro.service.executor import BatchExecutor, RequestResult
from repro.service.store import store_for
from repro.storage import (
    TieredStore,
    is_content_hash,
    is_safe_pass_name,
    peer_tier_for,
)


# ===========================================================================
# workload registry
# ===========================================================================


@dataclass(frozen=True)
class WorkloadSpec:
    """A named, service-runnable workload.

    ``make_workload`` resolves the underlying
    :class:`~repro.api.workload.Workload` bundle lazily (workload
    packages parse/lower their programs on first use — the registry
    must import cheaply). ``size_kwarg`` names the bundle's size knob
    (``pages``, ``depth``, ``particles``) so generic callers — the CLI's
    ``--size``, the HTTP ``/submit`` body — can scale any workload
    without knowing its vocabulary.
    """

    name: str
    description: str
    make_workload: Callable[[], "object"]
    size_kwarg: str

    def workload(self):
        return self.make_workload()

    def make_request(
        self,
        trees: int = 8,
        fused: bool = True,
        options: Optional[CompileOptions] = None,
        size: Optional[int] = None,
        layout: Optional[str] = None,
        mode: Optional[str] = None,
        **spec_kwargs,
    ) -> ExecRequest:
        if size is not None:
            spec_kwargs.setdefault(self.size_kwarg, size)
        effective = options if options is not None else CompileOptions()
        if layout is not None:
            # per-request tree layout ('object' | 'pooled') — the
            # /submit body's "layout" field lands here
            effective = replace(effective, layout=layout)
        return self.workload().request(
            trees,
            options=effective,
            fused=fused,
            # per-request execution tier ('compiled' | 'interpret') —
            # the /submit body's "mode" field lands here
            mode=mode if mode is not None else "compiled",
            **spec_kwargs,
        )


# memoized: a sequential wave builds one request per tree, and the
# bundle (program lowering + content hash) must not be re-derived per
# request
@functools.lru_cache(maxsize=None)
def _render_workload():
    from repro.workloads.render import render_workload

    return render_workload()


@functools.lru_cache(maxsize=None)
def _kdtree_workload():
    from repro.workloads.kdtree import kdtree_workload

    return kdtree_workload()


@functools.lru_cache(maxsize=None)
def _fmm_workload():
    from repro.workloads.fmm import fmm_workload

    return fmm_workload()


@functools.lru_cache(maxsize=None)
def _astlang_workload():
    from repro.workloads.astlang import astlang_workload

    return astlang_workload()


WORKLOADS: dict[str, WorkloadSpec] = {
    # extensible: registering a workload takes one Workload bundle
    # whose specs/build_tree/impls survive pickle (see
    # repro.service.batching) plus the name of its size knob
    "render": WorkloadSpec(
        name="render",
        description="render-tree layout (paper §5.1): replicated pages",
        make_workload=_render_workload,
        size_kwarg="pages",
    ),
    "astlang": WorkloadSpec(
        name="astlang",
        description="AST optimization passes (paper §5.2): desugar, "
        "propagate, fold, prune",
        make_workload=_astlang_workload,
        size_kwarg="functions",
    ),
    "kdtree": WorkloadSpec(
        name="kdtree",
        description="piecewise functions on kd-trees (paper §5.3): "
        "equation schedules over balanced trees",
        make_workload=_kdtree_workload,
        size_kwarg="depth",
    ),
    "fmm": WorkloadSpec(
        name="fmm",
        description="fast multipole method (paper §5.4): 1D monopole "
        "kernel over spatial trees",
        make_workload=_fmm_workload,
        size_kwarg="particles",
    ),
}


# ===========================================================================
# the facade
# ===========================================================================


class TraversalService:
    """Submit/await/stats over a batch executor + tiered storage."""

    def __init__(
        self,
        workers: int = 2,
        backend: str = "thread",
        cache_dir: Optional[str] = None,
        max_tickets: int = 1024,
        peers: tuple = (),
        layout: Optional[str] = None,
    ):
        self.cache_dir = cache_dir
        self.peers = tuple(peers)
        self.layout = layout
        self.store = store_for(cache_dir) if cache_dir else None
        # the service's storage stack: the process memory tier, its
        # store (when persistent), and any read-only peers — what /gc
        # sweeps and the tier-labelled half of /stats reports
        self.tiers = TieredStore(
            [GLOBAL_CACHE, self.store]
            + [peer_tier_for(p) for p in self.peers]
        )
        self.executor = BatchExecutor(
            workers=workers,
            backend=backend,
            cache_dir=cache_dir,
            peers=self.peers,
            layout=layout,
        )
        self.max_tickets = max_tickets
        self._tickets: "OrderedDict[int, object]" = OrderedDict()
        self._lock = threading.Lock()
        # per-layout submission counters (reported under /stats
        # "layouts"); counted at submit time from the request the
        # executor will actually run, defaults applied
        self._layout_counts: dict[str, int] = {}
        # per-mode counters (compiled vs interpreted), surfaced in
        # /stats as modes + interpreted/compiled_requests_total
        self._mode_counts: dict[str, int] = {}
        # service identity for /stats: when it started, how many
        # submits it has ever accepted (monotonic — unlike the
        # executor's completed/failed split, this counts acceptance)
        self.started = time.time()
        self._requests_total = 0
        # request id -> trace id for traced submits, bounded like the
        # ticket table so /trace stays answerable for recent work
        self._trace_ids: "OrderedDict[int, str]" = OrderedDict()
        # expose the legacy stats() dicts through the metrics registry
        # as scrape-time views: /metrics carries the same numbers
        # /stats always has, without double bookkeeping
        obs.REGISTRY.register_view(
            "repro_cache", GLOBAL_CACHE.stats
        )
        if self.store is not None:
            obs.REGISTRY.register_view("repro_store", self.store.stats)
        obs.REGISTRY.register_view(
            "repro_service", self._identity_view
        )

    def _identity_view(self) -> dict:
        with self._lock:
            total = self._requests_total
        return {
            "uptime_seconds": time.time() - self.started,
            "requests_total": total,
        }

    # -- submission -----------------------------------------------------

    def submit(self, request: ExecRequest) -> int:
        effective_layout = request.options.layout
        if self.layout is not None and effective_layout == "object":
            effective_layout = self.layout
        # the trace root for this request (when tracing is on): the
        # executor's group/shard spans reparent under it via the
        # context stamped onto the request, even though execution
        # happens later, on other threads/processes
        with obs.span(
            "service.submit",
            request_id=request.request_id,
            trees=len(request.trees),
            layout=effective_layout,
            mode=request.mode,
        ) as span:
            if request.trace_context is None and span.recorded:
                request.trace_context = span.context
            ticket = self.executor.submit(request)
        with self._lock:
            self._requests_total += 1
            if span.recorded:
                self._trace_ids[request.request_id] = span.trace_id
                while len(self._trace_ids) > self.max_tickets:
                    self._trace_ids.popitem(last=False)
            self._layout_counts[effective_layout] = (
                self._layout_counts.get(effective_layout, 0) + 1
            )
            self._mode_counts[request.mode] = (
                self._mode_counts.get(request.mode, 0) + 1
            )
            self._tickets[request.request_id] = ticket
            # bounded retention: results are held for polling, not
            # forever — a long-lived server must not accumulate every
            # RequestResult it ever produced. Completed tickets age out
            # first; only under max_tickets *in-flight* requests would
            # an unfinished one be dropped.
            while len(self._tickets) > self.max_tickets:
                victim = next(
                    (
                        rid
                        for rid, t in self._tickets.items()
                        if t.done()
                    ),
                    next(iter(self._tickets)),
                )
                del self._tickets[victim]
        return request.request_id

    def submit_workload(self, name: str, **kwargs) -> int:
        spec = WORKLOADS.get(name)
        if spec is None:
            raise KeyError(
                f"unknown workload {name!r}; have {sorted(WORKLOADS)}"
            )
        return self.submit(spec.make_request(**kwargs))

    # -- results --------------------------------------------------------

    def result(
        self, request_id: int, timeout: Optional[float] = None
    ) -> RequestResult:
        with self._lock:
            ticket = self._tickets.get(request_id)
        if ticket is None:
            raise KeyError(f"unknown request id {request_id}")
        return ticket.result(timeout)

    def poll(self, request_id: int) -> dict:
        """Non-blocking completion state of one request."""
        with self._lock:
            ticket = self._tickets.get(request_id)
        if ticket is None:
            return {"request_id": request_id, "state": "unknown"}
        trace_id = self.trace_id_for(request_id)
        if not ticket.done():
            return {
                "request_id": request_id,
                "state": "pending",
                "trace_id": trace_id,
            }
        try:
            result = ticket.result(0)
        except Exception as error:
            return {
                "request_id": request_id,
                "state": "failed",
                "error": str(error),
                "trace_id": trace_id,
            }
        return {
            "request_id": request_id,
            "state": "done" if result.ok else "failed",
            "error": result.error,
            "trees": len(result.trees),
            "wall_seconds": result.wall_seconds,
            "summaries": [t.summary for t in result.trees[:3]],
            "trace_id": trace_id,
        }

    # -- observability --------------------------------------------------

    def trace_id_for(self, request_id: int) -> Optional[str]:
        """The trace id minted for one submit, or ``None`` when the
        request wasn't traced (tracing off, root not sampled, or the
        id has aged out of the bounded table)."""
        with self._lock:
            return self._trace_ids.get(request_id)

    def trace_spans(self, trace_id: str) -> list[dict]:
        """Every buffered span of one trace (oldest first) — the
        ``GET /trace/<id>`` body."""
        return obs.get_tracer().spans(trace_id)

    def metrics_text(self) -> str:
        """The metrics registry in Prometheus text exposition format —
        the ``GET /metrics`` body."""
        return obs.REGISTRY.render_prometheus()

    # -- stats ----------------------------------------------------------

    def stats(self) -> dict:
        # "store" is always present so dashboards can key on it: the
        # eviction/compaction counters ride alongside the executor
        # metrics when a store is attached, and read as null otherwise.
        # "storage" is the tier-labelled view of the same stack
        # (memory / disk / peers, in lookup order). The store record is
        # lifted out of the tier view rather than recomputed —
        # DiskTier.stats() globs the whole store directory, and one
        # walk per poll is enough.
        storage = self.tiers.stats()
        store = None
        if self.store is not None:
            store = next(
                (
                    {
                        key: value
                        for key, value in record.items()
                        if key not in ("label", "kind")
                    }
                    for record in storage
                    if record.get("label") == self.store.label
                ),
                None,
            ) or self.store.stats()
        with self._lock:
            layouts = dict(sorted(self._layout_counts.items()))
            modes = dict(sorted(self._mode_counts.items()))
            requests_total = self._requests_total
        return {
            "version": __version__,
            "uptime_seconds": time.time() - self.started,
            "requests_total": requests_total,
            "executor": self.executor.stats(),
            "compile_cache": GLOBAL_CACHE.stats(),
            "workloads": sorted(WORKLOADS),
            "layouts": layouts,
            "modes": modes,
            "interpreted_requests_total": modes.get("interpret", 0),
            "compiled_requests_total": modes.get("compiled", 0),
            "store": store,
            "storage": storage,
        }

    def compact_store(self) -> dict:
        """Run one artifact-store compaction (no-op without a store)."""
        if self.store is None:
            return {"removed": 0, "reclaimed_bytes": 0}
        return self.store.compact()

    def gc(
        self,
        pass_name: Optional[str] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """One GC policy across the service's writable tiers (the
        memory cache's unit layer + the store); see
        :meth:`repro.storage.TieredStore.gc`."""
        return self.tiers.gc(
            pass_name=pass_name,
            max_age_seconds=max_age_seconds,
            max_bytes=max_bytes,
        )

    # -- storage endpoints ----------------------------------------------

    def artifact_bytes(
        self, kind: str, first: str, second: str
    ) -> Optional[bytes]:
        """The raw stored payload for one artifact, or ``None`` —
        the ``GET /artifact/...`` body that lets another host mount
        this service as a :class:`~repro.storage.PeerTier`. Inputs are
        validated before touching the filesystem; the requesting peer
        re-validates the payload itself on decode."""
        if self.store is None:
            return None
        if (
            kind == "result"
            and is_content_hash(first)
            and is_content_hash(second)
        ):
            path = self.store.path_for(first, second)
        elif (
            kind == "unit"
            and is_safe_pass_name(first)
            and is_content_hash(second)
        ):
            path = self.store.unit_path_for(first, second)
        else:
            return None
        try:
            return path.read_bytes()
        except OSError:
            return None

    def recompile_workload(
        self,
        name: str,
        options: Optional[CompileOptions] = None,
        **option_overrides,
    ) -> dict:
        """Rebuild one registered workload through the tiered store —
        the whole-result cache is bypassed so every pass demonstrably
        re-runs unit by unit — and return the unit-reuse report
        (the ``POST /recompile`` body)."""
        spec = WORKLOADS.get(name)
        if spec is None:
            raise KeyError(
                f"unknown workload {name!r}; have {sorted(WORKLOADS)}"
            )
        if options is None:
            options = CompileOptions(
                cache_dir=self.cache_dir, peers=self.peers
            )
        if option_overrides:
            from dataclasses import replace

            options = replace(options, **option_overrides)
        result = pipeline_compile(
            spec.workload(),
            options=options,
            incremental=True,
            reuse_result=False,
        )
        summary = result.unit_summary()
        summary["workload"] = name
        summary["unit_report"] = result.unit_report()
        return summary

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "TraversalService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ===========================================================================
# HTTP front end
# ===========================================================================


class _Handler(BaseHTTPRequestHandler):
    service: TraversalService  # set by make_server

    # -- plumbing -------------------------------------------------------

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_bytes(self, blob: bytes) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def _reply_text(self, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # quiet by default
        pass

    # -- routes ---------------------------------------------------------

    def do_GET(self) -> None:
        if self.path == "/healthz":
            self._reply(200, {"ok": True})
        elif self.path == "/stats":
            self._reply(200, self.service.stats())
        elif self.path == "/metrics":
            self._reply_text(
                self.service.metrics_text(),
                "text/plain; version=0.0.4",
            )
        elif self.path.startswith("/trace/"):
            trace_id = self.path.rsplit("/", 1)[1]
            spans = self.service.trace_spans(trace_id)
            if not spans:
                self._reply(404, {"error": f"no trace {trace_id!r}"})
                return
            self._reply(
                200, {"trace_id": trace_id, "spans": spans}
            )
        elif self.path.startswith("/result/"):
            try:
                request_id = int(self.path.rsplit("/", 1)[1])
            except ValueError:
                self._reply(400, {"error": "bad request id"})
                return
            self._reply(200, self.service.poll(request_id))
        elif self.path.startswith("/artifact/"):
            # /artifact/result/<source>/<output>, /artifact/unit/<pass>/<key>
            parts = self.path.split("/")
            if len(parts) != 5:
                self._reply(404, {"error": "bad artifact route"})
                return
            blob = self.service.artifact_bytes(*parts[2:5])
            if blob is None:
                self._reply(404, {"error": "no such artifact"})
                return
            self._reply_bytes(blob)
        else:
            self._reply(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:
        if self.path == "/compact":
            self._reply(200, self.service.compact_store())
            return
        if self.path == "/gc":
            try:
                payload = self._json_body()
                summary = self.service.gc(
                    pass_name=payload.get("pass")
                    or payload.get("pass_name"),
                    max_age_seconds=payload.get("max_age_seconds"),
                    max_bytes=payload.get("max_bytes"),
                )
            except Exception as error:
                self._reply(400, {"error": str(error)})
                return
            self._reply(200, summary)
            return
        if self.path == "/recompile":
            try:
                payload = self._json_body()
                name = payload.pop("workload")
                if payload:
                    # option overrides stay a programmatic-API affair:
                    # letting HTTP clients patch CompileOptions would
                    # hand them cache_dir (write anywhere) and peers
                    # (server-side requests to arbitrary URLs)
                    raise ValueError(
                        f"unsupported fields {sorted(payload)} — the "
                        f"recompile body takes only 'workload'"
                    )
                summary = self.service.recompile_workload(name)
            except Exception as error:
                self._reply(400, {"error": str(error)})
                return
            self._reply(200, summary)
            return
        if self.path == "/shutdown":
            self._reply(200, {"ok": True})
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        if self.path != "/submit":
            self._reply(404, {"error": f"no route {self.path!r}"})
            return
        try:
            payload = self._json_body()
            name = payload.pop("workload")
            request_id = self.service.submit_workload(name, **payload)
        except Exception as error:
            self._reply(400, {"error": str(error)})
            return
        self._reply(
            200,
            {
                "request_id": request_id,
                "trace_id": self.service.trace_id_for(request_id),
            },
        )

    def _json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        return json.loads(self.rfile.read(length) or b"{}")


def make_server(
    service: TraversalService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """An HTTP server bound to ``host:port`` (0 picks a free port; read
    the result from ``server.server_address``). Call ``serve_forever``
    — the ``/shutdown`` route stops it."""
    handler = type(
        "BoundHandler", (_Handler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)
