"""TreeFuser baseline (paper §5.1's comparison system).

TreeFuser [Sakka et al., OOPSLA'17] fuses general recursive traversals but
requires *homogeneous* trees: "TreeFuser requires programmers to unify all
the subtypes of a class hierarchy into a single type — e.g., a tagged
union — distinguishing between them with conditionals" (paper §1). Its
language allows traverse calls under conditionals (guarded recursion), and
its dependence analysis sees the union of all branches, which is where its
spurious dependences and per-node conditional overhead come from.

This package reproduces that baseline *automatically*: :func:`lower_program`
converts any Grafter program into the tagged-union encoding (one ``TNode``
type, a ``tag`` field, tag-guarded statements, guarded traversal calls);
:func:`lower_tree` converts runtime trees. The lowered program runs on the
same interpreter and fuses with the same engine — the conditional call
blocks group only when their guards match, reproducing TreeFuser's
coarser, type-blind fusion and its instruction overhead.
"""

from repro.treefuser.lowering import LoweredProgram, lower_program, lower_tree

__all__ = ["LoweredProgram", "lower_program", "lower_tree"]
