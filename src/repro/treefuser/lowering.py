"""Heterogeneous -> homogeneous (tagged-union) program lowering.

The transformation:

* one tree type ``TNode`` holding the union of every child/data field in
  the hierarchy (slot names are ``Owner_field``, so unrelated same-named
  fields do not collide; inherited fields share their declaring owner's
  slot) plus an integer ``tag``;
* per traversal *name*, one non-virtual function whose body concatenates,
  per concrete resolved method, the method's statements each wrapped in
  ``if (this->tag == TAG || ...)`` — simple statements become guarded
  simple statements, traverse calls become *conditional call blocks*
  (TreeFuser-mode grammar);
* ``new T()`` becomes ``new TNode()`` followed by a tag assignment.

Guards use the disjunction of all concrete tags that resolve to the same
method, ordered deterministically, so two traversals' guards for the same
receiver compare equal exactly when their dispatch sets match — the
condition under which the fusion engine may group their calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from repro.errors import WorkloadError
from repro.ir.access import AccessPath, Receiver, Step
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, PureCall, UnaryOp
from repro.ir.method import Param, TraversalMethod
from repro.ir.program import EntryCall, Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)
from repro.ir.types import TreeType
from repro.ir.validate import LanguageMode, validate_program
from repro.runtime.heap import Heap
from repro.runtime.node import Node

TNODE = "TNode"
TAG_FIELD = "tag"


@dataclass
class LoweredProgram:
    """The homogeneous program plus the mapping metadata."""

    program: Program
    tags: dict[str, int]  # concrete source type -> tag value
    slot_names: dict[str, str] = dc_field(default_factory=dict)  # field label -> slot

    def tag_of(self, type_name: str) -> int:
        return self.tags[type_name]


def lower_program(source: Program) -> LoweredProgram:
    source.finalize()
    lowered = Program(f"{source.name}_treefuser")
    tnode = TreeType(TNODE)
    tnode.add_data(TAG_FIELD, "int")
    # shared environment: opaque classes, globals, pure functions
    for cls in source.opaque_classes.values():
        lowered.add_opaque_class(cls)
    for var in source.globals.values():
        lowered.add_global(var.name, var.type_name)
    for func in source.pure_functions.values():
        lowered.add_pure_function(func)
    # Field slots. A programmer writing the tagged union by hand unifies
    # same-named *data* fields across the hierarchy (one Width, one
    # Height for every node kind) — that unification is precisely where
    # TreeFuser's spurious dependences come from, so we reproduce it.
    # Child pointers keep their declaring-class identity: distinct
    # recursive roles stay distinct fields even in a hand-written union
    # (a list spine pointer is not the same slot as a content pointer),
    # and same-named inherited children already share their declaring
    # owner. Data fields with conflicting types fall back to
    # owner-prefixed slots.
    slot_names: dict[str, str] = {}
    by_name: dict[str, list] = {}
    for type_name in sorted(source.tree_types):
        for field in source.tree_types[type_name].own_fields():
            if not field.is_child:
                by_name.setdefault(field.name, []).append(field)
    unifiable: dict[str, bool] = {}
    for name, fields in by_name.items():
        data_types = {f.type_name for f in fields}
        unifiable[name] = len(data_types) == 1
    added: set[str] = set()
    for type_name in sorted(source.tree_types):
        tree_type = source.tree_types[type_name]
        for field in tree_type.own_fields():
            if field.is_child:
                slot = f"{field.owner}_{field.name}"
            elif unifiable[field.name] and field.name != TAG_FIELD:
                slot = field.name
            else:
                slot = f"{field.owner}_{field.name}"
            slot_names[field.label] = slot
            if slot in added:
                continue
            added.add(slot)
            if field.is_child:
                tnode.add_child(slot, TNODE)
            else:
                default = tree_type.data_defaults.get(field.name)
                tnode.add_data(slot, field.type_name, default=default)
    lowered.add_tree_type(tnode)
    lowered.finalize_types()
    tags = {
        name: index
        for index, name in enumerate(sorted(source.concrete_subtypes_all()))
    }
    rewriter = _Rewriter(source, lowered, slot_names, tags)
    for method_name in _traversal_names(source):
        tnode.add_method(rewriter.lower_traversal(method_name))
    if source.root_type_name is not None:
        lowered.set_entry(
            TNODE,
            [
                EntryCall(method_name=c.method_name, args=c.args)
                for c in source.entry
            ],
        )
    lowered.finalize()
    validate_program(lowered, LanguageMode.TREEFUSER)
    return LoweredProgram(program=lowered, tags=tags, slot_names=slot_names)


def _traversal_names(source: Program) -> list[str]:
    names: set[str] = set()
    for method in source.all_methods():
        names.add(method.name)
    return sorted(names)


def _declared_locals(body: list[Stmt]) -> set[str]:
    from repro.ir.stmts import walk_stmts

    names: set[str] = set()
    for stmt in walk_stmts(body):
        if isinstance(stmt, (LocalDef, AliasDef)):
            names.add(stmt.name)
    return names


class _Rewriter:
    def __init__(
        self,
        source: Program,
        lowered: Program,
        slot_names: dict[str, str],
        tags: dict[str, int],
    ):
        self.source = source
        self.lowered = lowered
        self.slot_names = slot_names
        self.tags = tags
        self._local_renames: dict[str, str] = {}

    # ------------------------------------------------------------------

    def lower_traversal(self, method_name: str) -> TraversalMethod:
        """One homogeneous function per traversal name."""
        variants: dict[str, list[str]] = {}  # qualified impl -> [types]
        impls: dict[str, TraversalMethod] = {}
        for type_name in sorted(self.tags):
            if not self.source.has_method(type_name, method_name):
                continue
            method = self.source.resolve_method(type_name, method_name)
            variants.setdefault(method.qualified_name, []).append(type_name)
            impls[method.qualified_name] = method
        params: tuple[Param, ...] | None = None
        body: list[Stmt] = []
        for index, qualified in enumerate(sorted(variants)):
            method = impls[qualified]
            if params is None:
                params = method.params
            elif [p.type_name for p in params] != [
                p.type_name for p in method.params
            ]:
                raise WorkloadError(
                    f"traversal {method_name!r} has inconsistent signatures; "
                    "the tagged-union lowering requires one signature"
                )
            guard = self._tag_guard(variants[qualified])
            # variants share one flat function scope after lowering, so
            # their locals must be renamed apart (parameters are shared
            # by signature and stay as-is)
            self._local_renames = {
                name: f"{name}__v{index}"
                for name in _declared_locals(method.body)
            }
            body.extend(self._guarded_variant(guard, method.body))
            self._local_renames = {}
        return TraversalMethod(
            name=method_name,
            owner=TNODE,
            params=params or (),
            body=body,
            virtual=False,
        )

    def _tag_guard(self, type_names: list[str]) -> Expr:
        tag_read = DataAccess(path=self._this_tag_path())
        terms: list[Expr] = [
            BinOp(op="==", lhs=tag_read, rhs=Const(self.tags[t], "int"))
            for t in sorted(type_names)
        ]
        guard = terms[0]
        for term in terms[1:]:
            guard = BinOp(op="||", lhs=guard, rhs=term)
        return guard

    def _this_tag_path(self) -> AccessPath:
        tag_field = self.lowered.resolve_field(TNODE, TAG_FIELD)
        return AccessPath.this(Step(field=tag_field))

    # ------------------------------------------------------------------
    # statement rewriting
    # ------------------------------------------------------------------

    def _guarded_variant(self, guard: Expr, body: list[Stmt]) -> list[Stmt]:
        """Wrap one variant's statements in tag guards.

        Consecutive simple statements share a single guarded block — a
        hand-written tagged union evaluates ``tag == T`` once and
        branches, not once per statement — while every traverse call gets
        its own guarded block so the fusion engine can still group calls
        individually (TreeFuser's call-specific partial fusion). The
        coarser simple blocks also union their accesses into one
        dependence vertex, matching TreeFuser's statement granularity.
        """
        result: list[Stmt] = []
        run: list[Stmt] = []

        def flush() -> None:
            if run:
                result.append(If(cond=guard, then_body=list(run), else_body=[]))
                run.clear()

        for stmt in body:
            lowered = self.lower_stmt(stmt)
            if isinstance(stmt, TraverseStmt):
                flush()
                result.append(If(cond=guard, then_body=lowered, else_body=[]))
            else:
                run.extend(lowered)
        flush()
        return result

    def lower_stmt(self, stmt: Stmt) -> list[Stmt]:
        if isinstance(stmt, Assign):
            return [
                Assign(
                    target=self.lower_path(stmt.target),
                    value=self.lower_expr(stmt.value),
                )
            ]
        if isinstance(stmt, LocalDef):
            init = None if stmt.init is None else self.lower_expr(stmt.init)
            name = self._local_renames.get(stmt.name, stmt.name)
            return [LocalDef(name=name, type_name=stmt.type_name, init=init)]
        if isinstance(stmt, AliasDef):
            name = self._local_renames.get(stmt.name, stmt.name)
            return [
                AliasDef(
                    name=name,
                    type_name=TNODE,
                    target=self.lower_path(stmt.target),
                )
            ]
        if isinstance(stmt, If):
            return [
                If(
                    cond=self.lower_expr(stmt.cond),
                    then_body=[
                        s for sub in stmt.then_body for s in self.lower_stmt(sub)
                    ],
                    else_body=[
                        s for sub in stmt.else_body for s in self.lower_stmt(sub)
                    ],
                )
            ]
        if isinstance(stmt, While):
            return [
                While(
                    cond=self.lower_expr(stmt.cond),
                    body=[
                        s for sub in stmt.body for s in self.lower_stmt(sub)
                    ],
                )
            ]
        if isinstance(stmt, Return):
            return [Return()]
        if isinstance(stmt, New):
            target = self.lower_path(stmt.target)
            tag_field = self.lowered.resolve_field(TNODE, TAG_FIELD)
            tag_path = AccessPath(
                target.base, target.steps + (Step(field=tag_field),)
            )
            return [
                New(target=target, type_name=TNODE),
                Assign(
                    target=tag_path,
                    value=Const(self.tags[stmt.type_name], "int"),
                ),
            ]
        if isinstance(stmt, Delete):
            return [Delete(target=self.lower_path(stmt.target))]
        if isinstance(stmt, PureStmt):
            return [PureStmt(call=self.lower_expr(stmt.call))]
        if isinstance(stmt, TraverseStmt):
            if stmt.receiver.is_this:
                receiver = Receiver(child=None)
            else:
                slot = self.slot_names[stmt.receiver.child.label]
                child_field = self.lowered.resolve_field(TNODE, slot)
                receiver = Receiver(child=child_field)
            return [
                TraverseStmt(
                    receiver=receiver,
                    method_name=stmt.method_name,
                    args=tuple(self.lower_expr(a) for a in stmt.args),
                )
            ]
        raise WorkloadError(f"cannot lower statement {stmt!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # paths and expressions
    # ------------------------------------------------------------------

    def lower_path(self, path: AccessPath) -> AccessPath:
        steps = []
        for step in path.steps:
            label = step.field.label
            if label in self.slot_names:
                lowered_field = self.lowered.resolve_field(
                    TNODE, self.slot_names[label]
                )
            else:
                # a member of an opaque class: unchanged
                lowered_field = step.field
            steps.append(Step(field=lowered_field, pre_cast=None))
        base = path.base
        if path.is_local and path.base_name in self._local_renames:
            base = f"local:{self._local_renames[path.base_name]}"
        return AccessPath(base, tuple(steps))

    def lower_expr(self, expr: Expr):
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, DataAccess):
            return DataAccess(path=self.lower_path(expr.path))
        if isinstance(expr, BinOp):
            return BinOp(
                op=expr.op,
                lhs=self.lower_expr(expr.lhs),
                rhs=self.lower_expr(expr.rhs),
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(op=expr.op, operand=self.lower_expr(expr.operand))
        if isinstance(expr, PureCall):
            return PureCall(
                func_name=expr.func_name,
                args=tuple(self.lower_expr(a) for a in expr.args),
            )
        raise WorkloadError(f"cannot lower expression {expr!r}")  # pragma: no cover


# ---------------------------------------------------------------------------
# runtime tree lowering
# ---------------------------------------------------------------------------


def lower_tree(
    source: Program,
    lowered: LoweredProgram,
    heap: Heap,
    root: Node,
) -> Node:
    """Convert a heterogeneous runtime tree into its tagged-union twin.

    Nodes are allocated in preorder, approximating the construction-order
    locality of the original builders; data values are copied into their
    slots (opaque objects are copied by value)."""
    from repro.runtime.values import ObjectValue

    program = lowered.program

    def convert(node: Node) -> Node:
        twin = Node.new(program, heap, TNODE)
        twin.set(TAG_FIELD, lowered.tag_of(node.type_name))
        children: list[tuple[str, Node]] = []
        for field_name, field in source.fields_of(node.type_name).items():
            slot = lowered.slot_names[field.label]
            value = node.fields[field_name]
            if field.is_child:
                if value is not None:
                    children.append((slot, value))
            elif isinstance(value, ObjectValue):
                twin.set(slot, value.copy())
            else:
                twin.set(slot, value)
        for slot, child in children:
            twin.set(slot, convert(child))
        return twin

    return convert(root)
