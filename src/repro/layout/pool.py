"""Structure-of-arrays forest pools.

A :class:`ForestPool` serializes a tree (or a whole batch's forest) into
flat, parallel pools: one Python list per schema field name (a
*column*), a list of integer type tags, and child links as integer row
indices. The pooled codegen backend
(:mod:`repro.codegen.pooled_backend`) compiles traversals directly
against the columns — ``this.fields['W']`` becomes ``_c_W[this]`` with
``this`` a row index — so batched execution allocates nothing per
request (clone the pool, run, write back) and the representation
pickles without walking an object graph.

Row order is DFS preorder of each added tree, the order fused
traversals visit nodes, so consecutive accesses walk the columns mostly
forward. Dynamic type tags are integer indices into a per-pool
``type_table`` (every tree type registered up front, sorted, so tag
assignment is deterministic and dispatch dicts are int-keyed).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import RuntimeFailure
from repro.ir.program import Program
from repro.ir.types import is_primitive
from repro.runtime.heap import Heap
from repro.runtime.node import Node, default_fields
from repro.runtime.values import ObjectValue, copy_value


def column_names(program: Program) -> list[str]:
    """The union of field names across every tree type, sorted — the
    pool's column set and the pooled module's binding order."""
    names: set[str] = set()
    for type_name in program.tree_types:
        names.update(program.fields_of(type_name))
    return sorted(names)


class ForestPool:
    """One forest in structure-of-arrays form.

    * ``tags[i]`` — integer type tag of row *i* (index into
      ``type_table``)
    * ``columns[name][i]`` — row *i*'s value for field *name*: a child
      row index (or ``None``), a primitive, or an :class:`ObjectValue`;
      ``None`` filler where row *i*'s type has no such field
    * ``roots`` — row indices of the added trees, in add order
    * ``nodes[i]`` — the original :class:`Node` behind row *i*
      (``None`` for rows allocated by generated code via :meth:`new`);
      dropped on :meth:`clone` and on pickling
    """

    def __init__(self, program: Program):
        program.finalize()
        self.program = program
        self.type_table: list[str] = sorted(program.tree_types)
        self._type_ids = {
            name: tag for tag, name in enumerate(self.type_table)
        }
        self.tags: list[int] = []
        self.columns: dict[str, list] = {
            name: [] for name in column_names(program)
        }
        self.roots: list[int] = []
        self.nodes: list[Optional[Node]] = []
        self.object_columns = frozenset(
            name
            for type_name in program.tree_types
            for name, field in program.fields_of(type_name).items()
            if not field.is_child and not is_primitive(field.type_name)
        )

    def __len__(self) -> int:
        return len(self.tags)

    def type_id(self, type_name: str) -> int:
        return self._type_ids[type_name]

    def type_name(self, index: int) -> str:
        return self.type_table[self.tags[index]]

    # -- construction ----------------------------------------------------

    @classmethod
    def from_tree(cls, program: Program, root: Node) -> "ForestPool":
        pool = cls(program)
        pool.add_tree(root)
        return pool

    @classmethod
    def from_forest(cls, program: Program, roots) -> "ForestPool":
        pool = cls(program)
        for root in roots:
            pool.add_tree(root)
        return pool

    def add_tree(self, root: Node) -> int:
        """Serialize one tree into the pool (rows in DFS preorder);
        returns the root's row index and records it in ``roots``."""
        program = self.program
        base = len(self.tags)
        order: list[Node] = []
        index_of: dict[int, int] = {}
        stack = [root]
        while stack:
            node = stack.pop()
            index_of[id(node)] = base + len(order)
            order.append(node)
            children = [
                node.fields[name]
                for name, field in program.fields_of(
                    node.type_name
                ).items()
                if field.is_child and node.fields[name] is not None
            ]
            stack.extend(reversed(children))
        for node in order:
            fields = program.fields_of(node.type_name)
            self.tags.append(self._type_ids[node.type_name])
            self.nodes.append(node)
            for name, column in self.columns.items():
                field = fields.get(name)
                if field is None:
                    column.append(None)
                elif field.is_child:
                    child = node.fields[name]
                    column.append(
                        None if child is None else index_of[id(child)]
                    )
                else:
                    column.append(node.fields[name])
        self.roots.append(index_of[id(root)])
        return index_of[id(root)]

    def new(self, type_name: str) -> int:
        """Allocate one default-initialized row (what a generated ``new``
        statement calls); the row has no backing node until
        :meth:`write_back` materializes one."""
        program = self.program
        if type_name not in program.tree_types:
            raise RuntimeFailure(
                f"cannot instantiate unknown type {type_name!r}"
            )
        if program.tree_types[type_name].abstract:
            raise RuntimeFailure(
                f"cannot instantiate abstract type {type_name}"
            )
        fields = default_fields(program, type_name)
        index = len(self.tags)
        self.tags.append(self._type_ids[type_name])
        self.nodes.append(None)
        for name, column in self.columns.items():
            column.append(fields.get(name))
        return index

    # -- accessors -------------------------------------------------------

    def make_indexer(self, name: str) -> Callable[[int], object]:
        """A closure reading column *name* by row index (the
        torchinductor ``make_indexer`` idiom — hands callers the bound
        list method, no attribute or dict hop per access)."""
        return self.columns[name].__getitem__

    def make_writer(self, name: str) -> Callable[[int, object], None]:
        """The writing twin of :meth:`make_indexer`."""
        return self.columns[name].__setitem__

    # -- round-trips -----------------------------------------------------

    def clone(self) -> "ForestPool":
        """An independent copy sharing no mutable state: primitive/child
        columns copy by slice, object columns element-wise (value
        semantics). Backing nodes are dropped — a clone exists to be run
        and read out, not written back into someone else's tree."""
        twin = ForestPool.__new__(ForestPool)
        twin.program = self.program
        twin.type_table = self.type_table
        twin._type_ids = self._type_ids
        twin.object_columns = self.object_columns
        twin.tags = list(self.tags)
        twin.roots = list(self.roots)
        twin.nodes = [None] * len(self.tags)
        twin.columns = {
            name: (
                [copy_value(value) for value in column]
                if name in self.object_columns
                else list(column)
            )
            for name, column in self.columns.items()
        }
        return twin

    def write_back(self, heap: Heap) -> list[Node]:
        """Push every row's state back into its backing :class:`Node`,
        materializing fresh nodes (on *heap*) for rows generated code
        allocated — after this, the original tree objects reflect the
        pooled run exactly as an object-graph run would have left them.
        Returns the per-row node list."""
        program = self.program
        nodes = self.nodes
        for index in range(len(self.tags)):
            if nodes[index] is None:
                nodes[index] = Node.new(
                    program, heap, self.type_table[self.tags[index]]
                )
        columns = self.columns
        for index, node in enumerate(nodes):
            node_fields = node.fields
            for name, field in program.fields_of(node.type_name).items():
                value = columns[name][index]
                if field.is_child:
                    node_fields[name] = (
                        None if value is None else nodes[value]
                    )
                else:
                    node_fields[name] = value
        return nodes

    def to_tree(self, heap: Heap, index: int) -> Node:
        """Materialize the subtree rooted at row *index* as a fresh node
        tree on *heap* (values copied — the pool stays untouched)."""
        program = self.program
        columns = self.columns
        order: list[int] = []
        stack = [index]
        while stack:
            row = stack.pop()
            order.append(row)
            fields = program.fields_of(self.type_table[self.tags[row]])
            children = [
                columns[name][row]
                for name, field in fields.items()
                if field.is_child and columns[name][row] is not None
            ]
            stack.extend(reversed(children))
        made = {
            row: Node.new(
                program, heap, self.type_table[self.tags[row]]
            )
            for row in order
        }
        for row in order:
            node = made[row]
            for name, field in program.fields_of(node.type_name).items():
                value = columns[name][row]
                if field.is_child:
                    node.fields[name] = (
                        None if value is None else made[value]
                    )
                else:
                    node.fields[name] = copy_value(value)
        return made[index]

    def snapshot(self, index: int) -> dict:
        """Structural snapshot of the subtree at row *index*, matching
        :meth:`repro.runtime.node.Node.snapshot` byte for byte — the
        differential tests diff the two directly."""
        program = self.program
        columns = self.columns
        done: dict[int, dict] = {}
        stack: list[tuple[int, bool]] = [(index, False)]
        while stack:
            row, expanded = stack.pop()
            type_name = self.type_table[self.tags[row]]
            fields = program.fields_of(type_name)
            if not expanded:
                stack.append((row, True))
                for name, field in fields.items():
                    child = columns[name][row] if field.is_child else None
                    if field.is_child and child is not None:
                        stack.append((child, False))
                continue
            data = {"__type__": type_name}
            for name, field in fields.items():
                value = columns[name][row]
                if field.is_child:
                    data[name] = None if value is None else done[value]
                elif isinstance(value, ObjectValue):
                    data[name] = (value.class_name, dict(value.members))
                else:
                    data[name] = value
            done[row] = data
        return done[index]

    # -- pickling --------------------------------------------------------

    def __getstate__(self):
        state = dict(self.__dict__)
        # backing nodes are transport-hostile (and meaningless in
        # another process) — a restored pool is a value, like a clone
        state["nodes"] = [None] * len(self.tags)
        return state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ForestPool({self.program.name!r}, rows={len(self.tags)}, "
            f"trees={len(self.roots)})"
        )
