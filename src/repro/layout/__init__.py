"""Tree layouts: object graphs and structure-of-arrays forest pools."""

from repro.layout.base import (
    LAYOUT_NAMES,
    ObjectGraphLayout,
    PooledLayout,
    TreeLayout,
    layout_for,
)
from repro.layout.pool import ForestPool, column_names

__all__ = [
    "LAYOUT_NAMES",
    "ForestPool",
    "ObjectGraphLayout",
    "PooledLayout",
    "TreeLayout",
    "column_names",
    "layout_for",
]
