"""Tree layouts: how a program's trees are represented at run time.

A :class:`TreeLayout` names one representation and knows how to move a
tree into it, run compiled code against it, and get the tree back out.
Two implementations exist:

* :class:`ObjectGraphLayout` (``"object"``) — the seed representation:
  :class:`~repro.runtime.node.Node` objects whose ``fields`` dicts hold
  children and data directly. Zero ingest cost; every generated access
  is an attribute + dict hop.
* :class:`PooledLayout` (``"pooled"``) — structure-of-arrays
  :class:`~repro.layout.pool.ForestPool` columns indexed by integer
  rows. Pays one serialization per tree (amortized across a batch via
  :meth:`ForestPool.clone`), then every generated access is a list
  subscript.

The knob is ``CompileOptions(layout=...)``: it participates in the
options hash, so pooled and object artifacts content-address separately
in every storage tier.
"""

from __future__ import annotations

from repro.errors import ReproError

LAYOUT_NAMES = ("object", "pooled")


class TreeLayout:
    """Protocol for one tree representation (see module docstring)."""

    name: str = "?"

    def from_tree(self, program, root):
        """Ingest *root* into this layout's run-time representation."""
        raise NotImplementedError

    def to_tree(self, program, heap, handle):
        """Materialize a representation handle back into a ``Node``."""
        raise NotImplementedError

    def compile_program(self, program):
        """An eagerly-compiled unfused module for this layout."""
        raise NotImplementedError

    def compile_fused(self, fused):
        """An eagerly-compiled fused module for this layout."""
        raise NotImplementedError


class ObjectGraphLayout(TreeLayout):
    name = "object"

    def from_tree(self, program, root):
        return root

    def to_tree(self, program, heap, handle):
        return handle

    def compile_program(self, program):
        from repro.codegen.python_backend import CompiledProgram

        return CompiledProgram(program)

    def compile_fused(self, fused):
        from repro.codegen.python_backend import CompiledFused

        return CompiledFused(fused)


class PooledLayout(TreeLayout):
    name = "pooled"

    def from_tree(self, program, root):
        from repro.layout.pool import ForestPool

        return ForestPool.from_tree(program, root)

    def to_tree(self, program, heap, handle):
        return handle.to_tree(heap, handle.roots[0])

    def compile_program(self, program):
        from repro.codegen.pooled_backend import CompiledPooledProgram

        return CompiledPooledProgram(program)

    def compile_fused(self, fused):
        from repro.codegen.pooled_backend import CompiledPooledFused

        return CompiledPooledFused(fused)


_LAYOUTS = {
    "object": ObjectGraphLayout(),
    "pooled": PooledLayout(),
}


def layout_for(name: str) -> TreeLayout:
    """The layout registered under *name*; raises for unknown names so
    a typo'd ``--layout`` fails before anything is compiled or cached."""
    try:
        return _LAYOUTS[name]
    except KeyError:
        known = ", ".join(sorted(_LAYOUTS))
        raise ReproError(
            f"unknown tree layout {name!r} (known layouts: {known})"
        ) from None
