"""The paper's four case studies (§5), written in the Grafter language.

* :mod:`repro.workloads.render`  — §5.1: render tree, 17 node types, the
  five layout passes of Table 2, and the document generators behind
  Fig. 9 and Table 3.
* :mod:`repro.workloads.astlang` — §5.2: ASTs of a small imperative
  language, 20 node types, the six passes of Table 2 (desugaring,
  two-traversal constant propagation, folding, branch removal), and the
  program generators behind Fig. 11 and Table 4.
* :mod:`repro.workloads.kdtree`  — §5.3: piecewise functions on kd-trees,
  the Table 5 traversals (including leaf-splitting range operations), and
  the Table 6 equation schedules behind Fig. 12.
* :mod:`repro.workloads.fmm`     — §5.4: a fast-multipole-method-shaped
  workload with an upward multipole pass plus the two fusible downward
  passes behind Fig. 13.

Every workload module exposes ``program()`` (the parsed, validated
Grafter program), input builders, and a pure-Python *oracle* used by the
test suite to check that the traversals compute what they claim.
"""
