"""Case study 3: piecewise functions on kd-trees (paper §5.3, MADNESS).

A single-variable piecewise function is a kd-tree: interior nodes split
the domain, leaves hold cubic polynomial coefficients for their
subinterval. The Table 5 operations are traversals:

``scale``, ``add``, ``square``, ``differentiate`` — leaf-local algebra
(``square`` and ``multXRange`` truncate back to cubic degree, the
reproduction's stand-in for MADNESS' basis projection);
``addRange``/``multXRange``/``addXRange`` — range-restricted updates that
require *splitting* leaves straddling the range boundary (topology
mutation; the split logic lives in a ``splitForRange`` traversal that the
equation schedules insert before range operations);
``integrate`` — bottom-up reduction; ``project`` — point evaluation that
truncates every subtree not containing the point.

Equations compose these into schedules (Table 6), and fusion merges each
schedule's compatible traversals — the paper's point that manual fusion
is impractical because every equation needs a different combination.
"""

from repro.workloads.kdtree.schema import (
    KD_SOURCE,
    kd_program,
    KD_DEFAULT_GLOBALS,
)
from repro.workloads.kdtree.embedded import kd_embedded_program
from repro.workloads.kdtree.build import build_balanced_tree, leaf_segments
from repro.workloads.kdtree.equations import (
    EQ1_SCHEDULE,
    EQ2_SCHEDULE,
    EQ3_SCHEDULE,
    equation_program,
)
from repro.workloads.kdtree.oracle import PiecewiseOracle


def kdtree_spec(depth: int = 5, seed: int = 23) -> tuple:
    """Default input spec: a balanced tree of ``2**depth`` leaves."""
    return (depth, seed)


def build_kdtree(program, heap, spec):
    """Realize one function kd-tree from a :func:`kdtree_spec` tuple."""
    depth, seed = spec
    return build_balanced_tree(program, heap, depth, seed=seed)


def kdtree_workload(schedule=None, name: str = "kdtree-eq1"):
    """A piecewise-function equation as a one-object workload bundle.

    Defaults to the Table 6 equation-1 schedule; pass another schedule
    (and a distinct ``name``) for the other equations. The program is
    the embedded definition — pinned byte-identical to the string DSL's
    by ``tests/api/test_kdtree_equivalence.py``, so the string and
    embedded spellings share one compile-cache entry.
    """
    from repro.api import Workload

    return Workload.from_program(
        kd_embedded_program(
            schedule if schedule is not None else EQ1_SCHEDULE, name=name
        ),
        build_kdtree,
        globals_map=dict(KD_DEFAULT_GLOBALS),
        make_spec=kdtree_spec,
        description="piecewise functions on kd-trees (paper §5.3): "
        "equation schedules over balanced trees",
    )


__all__ = [
    "kdtree_workload",
    "kdtree_spec",
    "build_kdtree",
    "KD_SOURCE",
    "kd_program",
    "kd_embedded_program",
    "KD_DEFAULT_GLOBALS",
    "build_balanced_tree",
    "leaf_segments",
    "EQ1_SCHEDULE",
    "EQ2_SCHEDULE",
    "EQ3_SCHEDULE",
    "equation_program",
    "PiecewiseOracle",
]
