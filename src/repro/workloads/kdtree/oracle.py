"""Reference piecewise-function algebra (same truncation rules).

``PiecewiseOracle`` holds segments (lo, hi, cubic coefficients) and
applies each Table 5 operation directly, including boundary splitting —
independent of the traversal machinery, so it cross-checks both the
traversal semantics and the fusion."""

from __future__ import annotations


class PiecewiseOracle:
    def __init__(self, segments: list[tuple]):
        # segments: (lo, hi, (c0, c1, c2, c3)) in domain order
        self.segments = [
            (lo, hi, tuple(coeffs)) for lo, hi, coeffs in segments
        ]

    # -- whole-domain operations ---------------------------------------

    def scale(self, c: float) -> None:
        self.segments = [
            (lo, hi, tuple(k * c for k in coeffs))
            for lo, hi, coeffs in self.segments
        ]

    def add_const(self, c: float) -> None:
        self.segments = [
            (lo, hi, (coeffs[0] + c, coeffs[1], coeffs[2], coeffs[3]))
            for lo, hi, coeffs in self.segments
        ]

    def square(self) -> None:
        def sq(c):
            return (
                c[0] * c[0],
                2 * c[0] * c[1],
                2 * c[0] * c[2] + c[1] * c[1],
                2 * c[0] * c[3] + 2 * c[1] * c[2],
            )

        self.segments = [(lo, hi, sq(c)) for lo, hi, c in self.segments]

    def differentiate(self) -> None:
        self.segments = [
            (lo, hi, (c[1], 2 * c[2], 3 * c[3], 0.0))
            for lo, hi, c in self.segments
        ]

    # -- range operations (with boundary splitting) -----------------------

    def split_for_range(self, a: float, b: float, min_width: float = 0.5) -> None:
        changed = True
        while changed:
            changed = False
            result = []
            for lo, hi, coeffs in self.segments:
                straddles = lo < b and hi > a and not (lo >= a and hi <= b)
                if straddles and (hi - lo) > min_width:
                    mid = (lo + hi) / 2.0
                    result.append((lo, mid, coeffs))
                    result.append((mid, hi, coeffs))
                    changed = True
                else:
                    result.append((lo, hi, coeffs))
            self.segments = result

    def add_range(self, c: float, a: float, b: float) -> None:
        self.segments = [
            (lo, hi,
             (co[0] + c, co[1], co[2], co[3])
             if lo >= a and hi <= b else co)
            for lo, hi, co in self.segments
        ]

    def mult_x_range(self, a: float, b: float) -> None:
        self.segments = [
            (lo, hi,
             (0.0, co[0], co[1], co[2]) if lo >= a and hi <= b else co)
            for lo, hi, co in self.segments
        ]

    def add_x_range(self, a: float, b: float) -> None:
        self.segments = [
            (lo, hi,
             (co[0], co[1] + 1.0, co[2], co[3])
             if lo >= a and hi <= b else co)
            for lo, hi, co in self.segments
        ]

    # -- queries --------------------------------------------------------

    def integrate(self, a: float, b: float) -> float:
        total = 0.0
        for lo, hi, c in self.segments:
            if hi > a and lo < b:
                clip_lo = max(lo, a)
                clip_hi = min(hi, b)
                total += self._antiderivative(c, clip_hi) - self._antiderivative(
                    c, clip_lo
                )
        return total

    @staticmethod
    def _antiderivative(c, x: float) -> float:
        return x * (c[0] + x * (c[1] / 2 + x * (c[2] / 3 + x * c[3] / 4)))

    def project(self, x0: float) -> float:
        for lo, hi, c in self.segments:
            if lo <= x0 <= hi:
                return c[0] + x0 * (c[1] + x0 * (c[2] + x0 * c[3]))
        raise ValueError(f"{x0} outside the function domain")

    def apply_schedule(self, schedule) -> dict:
        """Apply a Table 6 schedule; returns {'integral':…, 'value':…}
        for any integrate/project results produced."""
        results = {}
        for method, args in schedule:
            if method == "scale":
                self.scale(*args)
            elif method == "addC":
                self.add_const(*args)
            elif method == "square":
                self.square()
            elif method == "differentiate":
                self.differentiate()
            elif method == "splitForRange":
                self.split_for_range(*args)
            elif method == "addRange":
                self.add_range(*args)
            elif method == "multXRange":
                self.mult_x_range(*args)
            elif method == "addXRange":
                self.add_x_range(*args)
            elif method == "integrate":
                results["integral"] = self.integrate(*args)
            elif method == "project":
                results["value"] = self.project(*args)
            else:
                raise ValueError(f"unknown operation {method!r}")
        return results
