"""Table 6's three equations as traversal schedules.

Each equation becomes a ``main`` with a different sequence of traversal
calls on the function tree — "the schedule of traversals in this
case-study depends on the constructed equation" (paper §5.3), which is
why manual fusion is impractical and automatic fusion shines.

Polynomial caveat (documented in DESIGN.md): ``square`` and
``multXRange`` truncate to cubic degree, standing in for MADNESS' basis
projection, so the *schedules* are the paper's while absolute values
follow the truncated algebra (the oracle applies the same algebra).
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.workloads.kdtree.schema import kd_program

# x^4 (f''(x))^2 + sum_{i=0..3} x^i   (range ops over the whole domain)
EQ1_SCHEDULE = [
    ("differentiate", ()),
    ("differentiate", ()),
    ("square", ()),
    ("splitForRange", (0.0, 1024.0)),
    ("multXRange", (0.0, 1024.0)),
    ("multXRange", (0.0, 1024.0)),
    ("multXRange", (0.0, 1024.0)),
    ("multXRange", (0.0, 1024.0)),
    ("addC", (1.0,)),
    ("addXRange", (0.0, 1024.0)),
]

# f^(5)(x) at x = 0 — five derivatives then a point projection
EQ2_SCHEDULE = [
    ("differentiate", ()),
    ("differentiate", ()),
    ("differentiate", ()),
    ("differentiate", ()),
    ("differentiate", ()),
    ("project", (0.0,)),
]

# integral of x^3 (f(x) + .5)^2 u(0) — add, square, three x-multiplies
# restricted to x >= 0, then integrate
EQ3_SCHEDULE = [
    ("addC", (0.5,)),
    ("square", ()),
    ("splitForRange", (512.0, 1024.0)),
    ("multXRange", (512.0, 1024.0)),
    ("multXRange", (512.0, 1024.0)),
    ("multXRange", (512.0, 1024.0)),
    ("integrate", (0.0, 1024.0)),
]

Schedule = list[tuple[str, tuple]]


def _main_for(schedule: Schedule) -> str:
    lines = ["int main() {", "    FunctionKd* f = ...;"]
    for method, args in schedule:
        rendered = ", ".join(_render_arg(a) for a in args)
        lines.append(f"    f->{method}({rendered});")
    lines.append("}")
    return "\n".join(lines)


def _render_arg(value) -> str:
    if isinstance(value, float):
        text = repr(value)
        return text if "." in text or "e" in text else text + ".0"
    return str(value)


def equation_program(schedule: Schedule, name: str = "kdtree-eq") -> Program:
    """The kd-tree program with this equation's schedule as its entry."""
    return kd_program(_main_for(schedule), name=name)
