"""The kd-tree Grafter program (types + the Table 5 traversals).

``kind``: 0 = interior, 1 = leaf. The traversal entry sequence differs
per equation, so :func:`kd_program` takes the schedule and splices the
corresponding ``main``; the class definitions are shared.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.program import Program

KIND_INTERIOR = 0
KIND_LEAF = 1

# One split block rewrites a leaf child that straddles [a, b] into an
# interior with two half-leaves carrying the same coefficients (restricting
# a polynomial to a subinterval keeps its coefficients in this
# representation, so the split is exact). The block is emitted twice in
# Interior (Left/Right) and once in FunctionKd (Root).
_SPLIT_BLOCK = """
        if (this->{C}.kind == 1 && this->{C}.Lo < b && this->{C}.Hi > a
            && !(this->{C}.Lo >= a && this->{C}.Hi <= b)
            && (this->{C}.Hi - this->{C}.Lo) > MIN_WIDTH) {{
            double lo{S} = this->{C}.Lo;
            double hi{S} = this->{C}.Hi;
            double mid{S} = (lo{S} + hi{S}) / 2.0;
            double c0{S} = static_cast<KdLeaf*>(this->{C})->C0;
            double c1{S} = static_cast<KdLeaf*>(this->{C})->C1;
            double c2{S} = static_cast<KdLeaf*>(this->{C})->C2;
            double c3{S} = static_cast<KdLeaf*>(this->{C})->C3;
            delete this->{C};
            this->{C} = new Interior();
            this->{C}.kind = 0;
            this->{C}.Lo = lo{S};
            this->{C}.Hi = hi{S};
            static_cast<Interior*>(this->{C})->Split = mid{S};
            static_cast<Interior*>(this->{C})->Left = new KdLeaf();
            static_cast<Interior*>(this->{C})->Left.kind = 1;
            static_cast<Interior*>(this->{C})->Left.Lo = lo{S};
            static_cast<Interior*>(this->{C})->Left.Hi = mid{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Left)->C0 = c0{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Left)->C1 = c1{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Left)->C2 = c2{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Left)->C3 = c3{S};
            static_cast<Interior*>(this->{C})->Right = new KdLeaf();
            static_cast<Interior*>(this->{C})->Right.kind = 1;
            static_cast<Interior*>(this->{C})->Right.Lo = mid{S};
            static_cast<Interior*>(this->{C})->Right.Hi = hi{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Right)->C0 = c0{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Right)->C1 = c1{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Right)->C2 = c2{S};
            static_cast<KdLeaf*>(static_cast<Interior*>(this->{C})->Right)->C3 = c3{S};
        }}
"""

KD_SOURCE = (
    """
double MIN_WIDTH;

_pure_ double evalCubic(double c0, double c1, double c2, double c3, double x);
_pure_ double integCubic(double c0, double c1, double c2, double c3,
                         double lo, double hi);
_pure_ double fmax2(double a, double b);
_pure_ double fmin2(double a, double b);

_abstract_ _tree_ class KdNode {
    double Lo = 0;
    double Hi = 0;
    int kind = 0;
    double Integral = 0;
    double Value = 0;
    _traversal_ virtual void scale(double c) {}
    _traversal_ virtual void addC(double c) {}
    _traversal_ virtual void square() {}
    _traversal_ virtual void differentiate() {}
    _traversal_ virtual void splitForRange(double a, double b) {}
    _traversal_ virtual void addRange(double c, double a, double b) {}
    _traversal_ virtual void multXRange(double a, double b) {}
    _traversal_ virtual void addXRange(double a, double b) {}
    _traversal_ virtual void integrate(double a, double b) {}
    _traversal_ virtual void project(double x0) {}
};

_tree_ class KdLeaf : public KdNode {
    double C0 = 0;
    double C1 = 0;
    double C2 = 0;
    double C3 = 0;
    _traversal_ void scale(double c) {
        this->C0 = this->C0 * c;
        this->C1 = this->C1 * c;
        this->C2 = this->C2 * c;
        this->C3 = this->C3 * c;
    }
    _traversal_ void addC(double c) {
        this->C0 = this->C0 + c;
    }
    _traversal_ void square() {
        double t0 = this->C0 * this->C0;
        double t1 = 2.0 * this->C0 * this->C1;
        double t2 = 2.0 * this->C0 * this->C2 + this->C1 * this->C1;
        double t3 = 2.0 * this->C0 * this->C3 + 2.0 * this->C1 * this->C2;
        this->C0 = t0;
        this->C1 = t1;
        this->C2 = t2;
        this->C3 = t3;
    }
    _traversal_ void differentiate() {
        this->C0 = this->C1;
        this->C1 = 2.0 * this->C2;
        this->C2 = 3.0 * this->C3;
        this->C3 = 0.0;
    }
    _traversal_ void addRange(double c, double a, double b) {
        if (this->Lo >= a && this->Hi <= b) {
            this->C0 = this->C0 + c;
        }
    }
    _traversal_ void multXRange(double a, double b) {
        if (this->Lo >= a && this->Hi <= b) {
            double t1 = this->C0;
            double t2 = this->C1;
            double t3 = this->C2;
            this->C0 = 0.0;
            this->C1 = t1;
            this->C2 = t2;
            this->C3 = t3;
        }
    }
    _traversal_ void addXRange(double a, double b) {
        if (this->Lo >= a && this->Hi <= b) {
            this->C1 = this->C1 + 1.0;
        }
    }
    _traversal_ void integrate(double a, double b) {
        this->Integral = 0.0;
        if (this->Hi > a && this->Lo < b) {
            this->Integral = integCubic(this->C0, this->C1, this->C2,
                                        this->C3, fmax2(this->Lo, a),
                                        fmin2(this->Hi, b));
        }
    }
    _traversal_ void project(double x0) {
        if (x0 < this->Lo || x0 > this->Hi) return;
        this->Value = evalCubic(this->C0, this->C1, this->C2, this->C3, x0);
    }
};

_tree_ class Interior : public KdNode {
    _child_ KdNode* Left;
    _child_ KdNode* Right;
    double Split = 0;
    _traversal_ void scale(double c) {
        this->Left->scale(c);
        this->Right->scale(c);
    }
    _traversal_ void addC(double c) {
        this->Left->addC(c);
        this->Right->addC(c);
    }
    _traversal_ void square() {
        this->Left->square();
        this->Right->square();
    }
    _traversal_ void differentiate() {
        this->Left->differentiate();
        this->Right->differentiate();
    }
    _traversal_ void splitForRange(double a, double b) {
"""
    + _SPLIT_BLOCK.format(C="Left", S="L")
    + _SPLIT_BLOCK.format(C="Right", S="R")
    + """
        this->Left->splitForRange(a, b);
        this->Right->splitForRange(a, b);
    }
    _traversal_ void addRange(double c, double a, double b) {
        this->Left->addRange(c, a, b);
        this->Right->addRange(c, a, b);
    }
    _traversal_ void multXRange(double a, double b) {
        this->Left->multXRange(a, b);
        this->Right->multXRange(a, b);
    }
    _traversal_ void addXRange(double a, double b) {
        this->Left->addXRange(a, b);
        this->Right->addXRange(a, b);
    }
    _traversal_ void integrate(double a, double b) {
        this->Left->integrate(a, b);
        this->Right->integrate(a, b);
        this->Integral = this->Left.Integral + this->Right.Integral;
    }
    _traversal_ void project(double x0) {
        if (x0 < this->Lo || x0 > this->Hi) return;
        this->Left->project(x0);
        this->Right->project(x0);
        if (x0 <= this->Split) {
            this->Value = this->Left.Value;
        } else {
            this->Value = this->Right.Value;
        }
    }
};

_tree_ class FunctionKd {
    _child_ KdNode* Root;
    double Integral = 0;
    double Value = 0;
    double Lo = 0;
    double Hi = 0;
    int kind = 0;
    _traversal_ void scale(double c) { this->Root->scale(c); }
    _traversal_ void addC(double c) { this->Root->addC(c); }
    _traversal_ void square() { this->Root->square(); }
    _traversal_ void differentiate() { this->Root->differentiate(); }
    _traversal_ void splitForRange(double a, double b) {
"""
    + _SPLIT_BLOCK.format(C="Root", S="T")
    + """
        this->Root->splitForRange(a, b);
    }
    _traversal_ void addRange(double c, double a, double b) {
        this->Root->addRange(c, a, b);
    }
    _traversal_ void multXRange(double a, double b) {
        this->Root->multXRange(a, b);
    }
    _traversal_ void addXRange(double a, double b) {
        this->Root->addXRange(a, b);
    }
    _traversal_ void integrate(double a, double b) {
        this->Root->integrate(a, b);
        this->Integral = this->Root.Integral;
    }
    _traversal_ void project(double x0) {
        this->Root->project(x0);
        this->Value = this->Root.Value;
    }
};
"""
)


# The bound impls live with the embedded definition (module-level named
# functions whose references are stable across processes). Both
# frontends bind the *same* callables, which is what makes the embedded
# program hash identically to this source string's parse — the same
# arrangement the render twin uses.
from repro.workloads.kdtree.embedded import (
    KD_EMBEDDED_GLOBALS,
    evalCubic,
    fmax2,
    fmin2,
    integCubic,
)

KD_PURE_IMPLS = {
    "evalCubic": evalCubic,
    "integCubic": integCubic,
    "fmax2": fmax2,
    "fmin2": fmin2,
}

KD_DEFAULT_GLOBALS = dict(KD_EMBEDDED_GLOBALS)

_PROGRAM_CACHE: dict[str, Program] = {}


def kd_program(main_source: str, name: str = "kdtree") -> Program:
    """Parse the kd-tree classes plus an equation-specific ``main``."""
    key = f"{name}:{main_source}"
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = parse_program(
            KD_SOURCE + "\n" + main_source,
            name=name,
            pure_impls=KD_PURE_IMPLS,
        )
    return _PROGRAM_CACHE[key]
