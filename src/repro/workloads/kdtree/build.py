"""Balanced kd-tree construction over a domain interval."""

from __future__ import annotations

import random

from repro.ir.program import Program
from repro.runtime import Heap, Node
from repro.workloads.kdtree.schema import KIND_INTERIOR, KIND_LEAF


def build_balanced_tree(
    program: Program,
    heap: Heap,
    depth: int,
    lo: float = 0.0,
    hi: float = 1024.0,
    seed: int = 23,
) -> Node:
    """A FunctionKd over [lo, hi] with 2**depth leaves (paper §5.3:
    'a balanced kd-tree constructed by uniformly partitioning the
    interval'). Leaf coefficients are small random cubics."""
    rng = random.Random(seed)

    def build(node_lo: float, node_hi: float, level: int) -> Node:
        if level == 0:
            return Node.new(
                program, heap, "KdLeaf",
                Lo=node_lo, Hi=node_hi, kind=KIND_LEAF,
                C0=rng.uniform(-1, 1),
                C1=rng.uniform(-0.5, 0.5),
                C2=rng.uniform(-0.01, 0.01),
                C3=rng.uniform(-0.0001, 0.0001),
            )
        mid = (node_lo + node_hi) / 2.0
        interior = Node.new(
            program, heap, "Interior",
            Lo=node_lo, Hi=node_hi, kind=KIND_INTERIOR, Split=mid,
        )
        interior.set("Left", build(node_lo, mid, level - 1))
        interior.set("Right", build(mid, node_hi, level - 1))
        return interior

    function = Node.new(program, heap, "FunctionKd", Lo=lo, Hi=hi)
    function.set("Root", build(lo, hi, depth))
    return function


def leaf_segments(program: Program, function: Node) -> list[tuple]:
    """The piecewise representation as (lo, hi, (c0, c1, c2, c3)) tuples,
    in domain order — used by the oracle comparison."""
    segments: list[tuple] = []

    def walk(node: Node) -> None:
        if node.type_name == "KdLeaf":
            segments.append(
                (
                    node.get("Lo"),
                    node.get("Hi"),
                    (
                        node.get("C0"),
                        node.get("C1"),
                        node.get("C2"),
                        node.get("C3"),
                    ),
                )
            )
            return
        walk(node.get("Left"))
        walk(node.get("Right"))

    walk(function.get("Root"))
    return segments
