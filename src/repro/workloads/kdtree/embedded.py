"""The kd-tree workload as a Python-embedded definition.

The same classes and Table 5 traversals as
:data:`repro.workloads.kdtree.schema.KD_SOURCE`, written with
``@repro.schema`` / ``@repro.traversal`` instead of a source string.
Lowering produces a structurally identical program — canonical print,
content hash, and generated Python are byte-for-byte the string DSL's
(pinned by ``tests/api/test_kdtree_equivalence.py``).

The split blocks were the embedded frontend's last string-DSL escape
hatch: rewriting a straddling leaf into an interior requires
``static_cast`` member chains
(``static_cast<KdLeaf*>(this->Left)->C0``), which embedded code now
spells :func:`repro.cast`::

    c0L: float = cast(KdLeaf, this.Left).C0
    cast(Interior, this.Left).Split = midL
    cast(KdLeaf, cast(Interior, this.Left).Left).C0 = c0L

The pure-function impls (``evalCubic``/``integCubic``/``fmax2``/
``fmin2``) are declared here with ``@repro.pure`` and re-exported by
:mod:`repro.workloads.kdtree.schema` so both frontends bind the *same*
callables and therefore hash alike.

Equation schedules are data (Table 6), not code, so the entry sequence
comes from :func:`repro.api.embed.entry_calls` instead of a fixed
``@repro.entry`` function: :func:`kd_embedded_program` takes a schedule
and splices it in, exactly like :func:`~.schema.kd_program` splices a
``main``.
"""

from __future__ import annotations

import repro
from repro.api.embed import cast, entry_calls, lower
from repro.ir.program import Program

# ---------------------------------------------------------------- globals

MIN_WIDTH = repro.Global(float, 0.5)


# -------------------------------------------------------- pure functions


@repro.pure
def evalCubic(c0: float, c1: float, c2: float, c3: float, x: float) -> float:
    return c0 + x * (c1 + x * (c2 + x * c3))


@repro.pure
def integCubic(
    c0: float, c1: float, c2: float, c3: float, lo: float, hi: float
) -> float:
    def antiderivative(x):
        return x * (c0 + x * (c1 / 2 + x * (c2 / 3 + x * c3 / 4)))

    if hi <= lo:
        return 0.0
    return antiderivative(hi) - antiderivative(lo)


@repro.pure
def fmax2(a: float, b: float) -> float:
    return a if a >= b else b


@repro.pure
def fmin2(a: float, b: float) -> float:
    return a if a <= b else b


# ------------------------------------------------------------- the tree


@repro.schema(abstract=True)
class KdNode:
    Lo: float = 0
    Hi: float = 0
    kind: int = 0
    Integral: float = 0
    Value: float = 0

    @repro.traversal(virtual=True)
    def scale(this, c: float):
        pass

    @repro.traversal(virtual=True)
    def addC(this, c: float):
        pass

    @repro.traversal(virtual=True)
    def square(this):
        pass

    @repro.traversal(virtual=True)
    def differentiate(this):
        pass

    @repro.traversal(virtual=True)
    def splitForRange(this, a: float, b: float):
        pass

    @repro.traversal(virtual=True)
    def addRange(this, c: float, a: float, b: float):
        pass

    @repro.traversal(virtual=True)
    def multXRange(this, a: float, b: float):
        pass

    @repro.traversal(virtual=True)
    def addXRange(this, a: float, b: float):
        pass

    @repro.traversal(virtual=True)
    def integrate(this, a: float, b: float):
        pass

    @repro.traversal(virtual=True)
    def project(this, x0: float):
        pass


@repro.schema
class KdLeaf(KdNode):
    C0: float = 0
    C1: float = 0
    C2: float = 0
    C3: float = 0

    @repro.traversal
    def scale(this, c: float):
        this.C0 = this.C0 * c
        this.C1 = this.C1 * c
        this.C2 = this.C2 * c
        this.C3 = this.C3 * c

    @repro.traversal
    def addC(this, c: float):
        this.C0 = this.C0 + c

    @repro.traversal
    def square(this):
        t0: float = this.C0 * this.C0
        t1: float = 2.0 * this.C0 * this.C1
        t2: float = 2.0 * this.C0 * this.C2 + this.C1 * this.C1
        t3: float = 2.0 * this.C0 * this.C3 + 2.0 * this.C1 * this.C2
        this.C0 = t0
        this.C1 = t1
        this.C2 = t2
        this.C3 = t3

    @repro.traversal
    def differentiate(this):
        this.C0 = this.C1
        this.C1 = 2.0 * this.C2
        this.C2 = 3.0 * this.C3
        this.C3 = 0.0

    @repro.traversal
    def addRange(this, c: float, a: float, b: float):
        if this.Lo >= a and this.Hi <= b:
            this.C0 = this.C0 + c

    @repro.traversal
    def multXRange(this, a: float, b: float):
        if this.Lo >= a and this.Hi <= b:
            t1: float = this.C0
            t2: float = this.C1
            t3: float = this.C2
            this.C0 = 0.0
            this.C1 = t1
            this.C2 = t2
            this.C3 = t3

    @repro.traversal
    def addXRange(this, a: float, b: float):
        if this.Lo >= a and this.Hi <= b:
            this.C1 = this.C1 + 1.0

    @repro.traversal
    def integrate(this, a: float, b: float):
        this.Integral = 0.0
        if this.Hi > a and this.Lo < b:
            this.Integral = integCubic(
                this.C0,
                this.C1,
                this.C2,
                this.C3,
                fmax2(this.Lo, a),
                fmin2(this.Hi, b),
            )

    @repro.traversal
    def project(this, x0: float):
        if x0 < this.Lo or x0 > this.Hi:
            return
        this.Value = evalCubic(this.C0, this.C1, this.C2, this.C3, x0)


@repro.schema
class Interior(KdNode):
    Left: KdNode
    Right: KdNode
    Split: float = 0

    @repro.traversal
    def scale(this, c: float):
        this.Left.scale(c)
        this.Right.scale(c)

    @repro.traversal
    def addC(this, c: float):
        this.Left.addC(c)
        this.Right.addC(c)

    @repro.traversal
    def square(this):
        this.Left.square()
        this.Right.square()

    @repro.traversal
    def differentiate(this):
        this.Left.differentiate()
        this.Right.differentiate()

    @repro.traversal
    def splitForRange(this, a: float, b: float):
        if (
            this.Left.kind == 1
            and this.Left.Lo < b
            and this.Left.Hi > a
            and not (this.Left.Lo >= a and this.Left.Hi <= b)
            and (this.Left.Hi - this.Left.Lo) > MIN_WIDTH
        ):
            loL: float = this.Left.Lo
            hiL: float = this.Left.Hi
            midL: float = (loL + hiL) / 2.0
            c0L: float = cast(KdLeaf, this.Left).C0
            c1L: float = cast(KdLeaf, this.Left).C1
            c2L: float = cast(KdLeaf, this.Left).C2
            c3L: float = cast(KdLeaf, this.Left).C3
            del this.Left
            this.Left = Interior()
            this.Left.kind = 0
            this.Left.Lo = loL
            this.Left.Hi = hiL
            cast(Interior, this.Left).Split = midL
            cast(Interior, this.Left).Left = KdLeaf()
            cast(Interior, this.Left).Left.kind = 1
            cast(Interior, this.Left).Left.Lo = loL
            cast(Interior, this.Left).Left.Hi = midL
            cast(KdLeaf, cast(Interior, this.Left).Left).C0 = c0L
            cast(KdLeaf, cast(Interior, this.Left).Left).C1 = c1L
            cast(KdLeaf, cast(Interior, this.Left).Left).C2 = c2L
            cast(KdLeaf, cast(Interior, this.Left).Left).C3 = c3L
            cast(Interior, this.Left).Right = KdLeaf()
            cast(Interior, this.Left).Right.kind = 1
            cast(Interior, this.Left).Right.Lo = midL
            cast(Interior, this.Left).Right.Hi = hiL
            cast(KdLeaf, cast(Interior, this.Left).Right).C0 = c0L
            cast(KdLeaf, cast(Interior, this.Left).Right).C1 = c1L
            cast(KdLeaf, cast(Interior, this.Left).Right).C2 = c2L
            cast(KdLeaf, cast(Interior, this.Left).Right).C3 = c3L
        if (
            this.Right.kind == 1
            and this.Right.Lo < b
            and this.Right.Hi > a
            and not (this.Right.Lo >= a and this.Right.Hi <= b)
            and (this.Right.Hi - this.Right.Lo) > MIN_WIDTH
        ):
            loR: float = this.Right.Lo
            hiR: float = this.Right.Hi
            midR: float = (loR + hiR) / 2.0
            c0R: float = cast(KdLeaf, this.Right).C0
            c1R: float = cast(KdLeaf, this.Right).C1
            c2R: float = cast(KdLeaf, this.Right).C2
            c3R: float = cast(KdLeaf, this.Right).C3
            del this.Right
            this.Right = Interior()
            this.Right.kind = 0
            this.Right.Lo = loR
            this.Right.Hi = hiR
            cast(Interior, this.Right).Split = midR
            cast(Interior, this.Right).Left = KdLeaf()
            cast(Interior, this.Right).Left.kind = 1
            cast(Interior, this.Right).Left.Lo = loR
            cast(Interior, this.Right).Left.Hi = midR
            cast(KdLeaf, cast(Interior, this.Right).Left).C0 = c0R
            cast(KdLeaf, cast(Interior, this.Right).Left).C1 = c1R
            cast(KdLeaf, cast(Interior, this.Right).Left).C2 = c2R
            cast(KdLeaf, cast(Interior, this.Right).Left).C3 = c3R
            cast(Interior, this.Right).Right = KdLeaf()
            cast(Interior, this.Right).Right.kind = 1
            cast(Interior, this.Right).Right.Lo = midR
            cast(Interior, this.Right).Right.Hi = hiR
            cast(KdLeaf, cast(Interior, this.Right).Right).C0 = c0R
            cast(KdLeaf, cast(Interior, this.Right).Right).C1 = c1R
            cast(KdLeaf, cast(Interior, this.Right).Right).C2 = c2R
            cast(KdLeaf, cast(Interior, this.Right).Right).C3 = c3R
        this.Left.splitForRange(a, b)
        this.Right.splitForRange(a, b)

    @repro.traversal
    def addRange(this, c: float, a: float, b: float):
        this.Left.addRange(c, a, b)
        this.Right.addRange(c, a, b)

    @repro.traversal
    def multXRange(this, a: float, b: float):
        this.Left.multXRange(a, b)
        this.Right.multXRange(a, b)

    @repro.traversal
    def addXRange(this, a: float, b: float):
        this.Left.addXRange(a, b)
        this.Right.addXRange(a, b)

    @repro.traversal
    def integrate(this, a: float, b: float):
        this.Left.integrate(a, b)
        this.Right.integrate(a, b)
        this.Integral = this.Left.Integral + this.Right.Integral

    @repro.traversal
    def project(this, x0: float):
        if x0 < this.Lo or x0 > this.Hi:
            return
        this.Left.project(x0)
        this.Right.project(x0)
        if x0 <= this.Split:
            this.Value = this.Left.Value
        else:
            this.Value = this.Right.Value


@repro.schema
class FunctionKd:
    Root: KdNode
    Integral: float = 0
    Value: float = 0
    Lo: float = 0
    Hi: float = 0
    kind: int = 0

    @repro.traversal
    def scale(this, c: float):
        this.Root.scale(c)

    @repro.traversal
    def addC(this, c: float):
        this.Root.addC(c)

    @repro.traversal
    def square(this):
        this.Root.square()

    @repro.traversal
    def differentiate(this):
        this.Root.differentiate()

    @repro.traversal
    def splitForRange(this, a: float, b: float):
        if (
            this.Root.kind == 1
            and this.Root.Lo < b
            and this.Root.Hi > a
            and not (this.Root.Lo >= a and this.Root.Hi <= b)
            and (this.Root.Hi - this.Root.Lo) > MIN_WIDTH
        ):
            loT: float = this.Root.Lo
            hiT: float = this.Root.Hi
            midT: float = (loT + hiT) / 2.0
            c0T: float = cast(KdLeaf, this.Root).C0
            c1T: float = cast(KdLeaf, this.Root).C1
            c2T: float = cast(KdLeaf, this.Root).C2
            c3T: float = cast(KdLeaf, this.Root).C3
            del this.Root
            this.Root = Interior()
            this.Root.kind = 0
            this.Root.Lo = loT
            this.Root.Hi = hiT
            cast(Interior, this.Root).Split = midT
            cast(Interior, this.Root).Left = KdLeaf()
            cast(Interior, this.Root).Left.kind = 1
            cast(Interior, this.Root).Left.Lo = loT
            cast(Interior, this.Root).Left.Hi = midT
            cast(KdLeaf, cast(Interior, this.Root).Left).C0 = c0T
            cast(KdLeaf, cast(Interior, this.Root).Left).C1 = c1T
            cast(KdLeaf, cast(Interior, this.Root).Left).C2 = c2T
            cast(KdLeaf, cast(Interior, this.Root).Left).C3 = c3T
            cast(Interior, this.Root).Right = KdLeaf()
            cast(Interior, this.Root).Right.kind = 1
            cast(Interior, this.Root).Right.Lo = midT
            cast(Interior, this.Root).Right.Hi = hiT
            cast(KdLeaf, cast(Interior, this.Root).Right).C0 = c0T
            cast(KdLeaf, cast(Interior, this.Root).Right).C1 = c1T
            cast(KdLeaf, cast(Interior, this.Root).Right).C2 = c2T
            cast(KdLeaf, cast(Interior, this.Root).Right).C3 = c3T
        this.Root.splitForRange(a, b)

    @repro.traversal
    def addRange(this, c: float, a: float, b: float):
        this.Root.addRange(c, a, b)

    @repro.traversal
    def multXRange(this, a: float, b: float):
        this.Root.multXRange(a, b)

    @repro.traversal
    def addXRange(this, a: float, b: float):
        this.Root.addXRange(a, b)

    @repro.traversal
    def integrate(this, a: float, b: float):
        this.Root.integrate(a, b)
        this.Integral = this.Root.Integral

    @repro.traversal
    def project(this, x0: float):
        this.Root.project(x0)
        this.Value = this.Root.Value


# ---------------------------------------------------------------- lowering

KD_EMBEDDED_GLOBALS = {"MIN_WIDTH": MIN_WIDTH.default}

_CLASSES = [KdNode, KdLeaf, Interior, FunctionKd]
_PURES = [evalCubic, integCubic, fmax2, fmin2]

_PROGRAM_CACHE: dict[str, Program] = {}


def kd_embedded_program(schedule, name: str = "kdtree-eq") -> Program:
    """Lower the embedded classes with this equation's schedule as the
    entry sequence (the embedded counterpart of
    :func:`~repro.workloads.kdtree.schema.kd_program`)."""
    key = f"{name}:{schedule!r}"
    if key not in _PROGRAM_CACHE:
        _PROGRAM_CACHE[key] = lower(
            name,
            classes=_CLASSES,
            pures=_PURES,
            globals_={"MIN_WIDTH": MIN_WIDTH},
            entry=entry_calls("FunctionKd", schedule),
        )
    return _PROGRAM_CACHE[key]
