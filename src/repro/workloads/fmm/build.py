"""FMM input construction: random particles -> balanced spatial tree."""

from __future__ import annotations

import random

from repro.ir.program import Program
from repro.runtime import Heap, Node
from repro.workloads.fmm.schema import LEAF_CAPACITY


def random_particles(count: int, seed: int = 31) -> list[tuple[float, float]]:
    """(position, mass) pairs uniform in [0, 1) x [0.5, 1.5)."""
    rng = random.Random(seed)
    return [(rng.random(), 0.5 + rng.random()) for _ in range(count)]


def build_fmm_tree(
    program: Program, heap: Heap, particles: list[tuple[float, float]]
) -> Node:
    """Median-split spatial binary tree with LEAF_CAPACITY masses/leaf.

    Position order determines the split; leaves hold up to four masses
    (missing slots stay 0, which is mass-neutral for every kernel)."""
    ordered = sorted(particles)

    def build(lo: int, hi: int) -> Node:
        count = hi - lo
        if count <= LEAF_CAPACITY:
            masses = [m for _, m in ordered[lo:hi]] + [0.0] * (
                LEAF_CAPACITY - count
            )
            center = (
                sum(x for x, _ in ordered[lo:hi]) / count if count else 0.0
            )
            return Node.new(
                program, heap, "FmmLeaf",
                P0=masses[0], P1=masses[1], P2=masses[2], P3=masses[3],
                Center=center,
            )
        mid = (lo + hi) // 2
        cell = Node.new(
            program, heap, "FmmCell", Center=ordered[mid][0]
        )
        cell.set("Left", build(lo, mid))
        cell.set("Right", build(mid, hi))
        return cell

    if len(ordered) <= LEAF_CAPACITY:
        # keep the root an FmmCell (the entry type): split whatever we have
        root = Node.new(program, heap, "FmmCell")
        half = max(1, len(ordered) // 2)
        root.set("Left", build(0, half))
        root.set("Right", build(half, len(ordered)))
        return root
    return build(0, len(ordered))
