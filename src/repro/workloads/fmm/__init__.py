"""Case study 4: fast multipole method (paper §5.4).

The paper reimplements the Treelogy FMM benchmark and reports that
Grafter fully fuses its two traversals for up to 22% runtime gains. We
reproduce the *fusion structure* over a simplified 1D monopole kernel
(documented substitution — the original needs the full Treelogy particle
benchmark): a spatial binary tree over particles with

1. ``computeMultipoles``  — upward (post-order) mass aggregation; this
   phase cannot fuse with the downward phases (each node's local
   expansion needs its multipole first) and runs as its own traversal in
   both versions, like the paper's tree-build phase;
2. ``computeLocals``      — downward local-expansion propagation;
3. ``evaluatePotentials`` — leaf evaluation plus upward reduction of the
   total potential.

Passes 2 and 3 — "the two FMM traversals" — fuse completely.
"""

from repro.workloads.fmm.schema import FMM_SOURCE, fmm_program, FMM_DEFAULT_GLOBALS
from repro.workloads.fmm.build import build_fmm_tree, random_particles
from repro.workloads.fmm.oracle import fmm_oracle


def fmm_spec(particles: int = 128, seed: int = 31) -> list:
    """Default input spec: ``particles`` random (position, mass) pairs
    (the spec is the particle list itself — plainly picklable)."""
    return random_particles(particles, seed)


def fmm_workload():
    """The fast-multipole case study as a one-object workload bundle."""
    from repro.api import Workload

    return Workload.from_program(
        fmm_program(),
        build_fmm_tree,
        globals_map=dict(FMM_DEFAULT_GLOBALS),
        make_spec=fmm_spec,
        description="fast multipole method (paper §5.4): 1D monopole "
        "kernel over spatial trees",
    )


__all__ = [
    "fmm_workload",
    "fmm_spec",
    "FMM_SOURCE",
    "fmm_program",
    "FMM_DEFAULT_GLOBALS",
    "build_fmm_tree",
    "random_particles",
    "fmm_oracle",
]
