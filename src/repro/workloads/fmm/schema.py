"""The FMM Grafter program: 3 tree types, 3 traversals (2 fusible)."""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.program import Program

LEAF_CAPACITY = 4

FMM_SOURCE = """
double FMM_MU;
double FMM_DECAY;

_pure_ double selfInteract(double p0, double p1, double p2, double p3);

_abstract_ _tree_ class FmmNode {
    double Multipole = 0;
    double Local = 0;
    double Potential = 0;
    double Center = 0;
    _traversal_ virtual void computeMultipoles() {}
    _traversal_ virtual void computeLocals(double parentLocal) {}
    _traversal_ virtual void evaluatePotentials() {}
};

_tree_ class FmmLeaf : public FmmNode {
    double P0 = 0;
    double P1 = 0;
    double P2 = 0;
    double P3 = 0;
    _traversal_ void computeMultipoles() {
        this->Multipole = this->P0 + this->P1 + this->P2 + this->P3;
    }
    _traversal_ void computeLocals(double parentLocal) {
        this->Local = parentLocal + this->Multipole * FMM_MU;
    }
    _traversal_ void evaluatePotentials() {
        this->Potential = this->Local * this->Multipole
            + selfInteract(this->P0, this->P1, this->P2, this->P3);
    }
};

_tree_ class FmmCell : public FmmNode {
    _child_ FmmNode* Left;
    _child_ FmmNode* Right;
    _traversal_ void computeMultipoles() {
        this->Left->computeMultipoles();
        this->Right->computeMultipoles();
        this->Multipole = this->Left.Multipole + this->Right.Multipole;
    }
    _traversal_ void computeLocals(double parentLocal) {
        this->Local = parentLocal + this->Multipole * FMM_MU;
        this->Left->computeLocals(this->Local * FMM_DECAY);
        this->Right->computeLocals(this->Local * FMM_DECAY);
    }
    _traversal_ void evaluatePotentials() {
        this->Left->evaluatePotentials();
        this->Right->evaluatePotentials();
        this->Potential = this->Left.Potential + this->Right.Potential;
    }
};

int main() {
    FmmCell* root = ...;
    root->computeMultipoles();
    root->computeLocals(0.0);
    root->evaluatePotentials();
}
"""


def _self_interact(p0, p1, p2, p3):
    particles = (p0, p1, p2, p3)
    total = 0.0
    for i in range(4):
        for j in range(i + 1, 4):
            total += particles[i] * particles[j]
    return total


FMM_PURE_IMPLS = {"selfInteract": _self_interact}

FMM_DEFAULT_GLOBALS = {"FMM_MU": 0.125, "FMM_DECAY": 0.5}

_PROGRAM_CACHE: Program | None = None


def fmm_program() -> Program:
    global _PROGRAM_CACHE
    if _PROGRAM_CACHE is None:
        _PROGRAM_CACHE = parse_program(
            FMM_SOURCE, name="fmm", pure_impls=FMM_PURE_IMPLS
        )
    return _PROGRAM_CACHE
