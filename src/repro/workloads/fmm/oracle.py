"""Reference implementation of the three FMM recurrences."""

from __future__ import annotations

from repro.ir.program import Program
from repro.runtime import Node
from repro.workloads.fmm.schema import FMM_DEFAULT_GLOBALS, _self_interact


def fmm_oracle(
    program: Program, root: Node, globals_map: dict | None = None
) -> dict[int, dict[str, float]]:
    """Expected Multipole/Local/Potential per node id."""
    env = dict(FMM_DEFAULT_GLOBALS)
    env.update(globals_map or {})
    mu = env["FMM_MU"]
    decay = env["FMM_DECAY"]
    expected: dict[int, dict[str, float]] = {}

    def multipoles(node: Node) -> float:
        if node.type_name == "FmmLeaf":
            value = sum(node.get(p) for p in ("P0", "P1", "P2", "P3"))
        else:
            value = multipoles(node.get("Left")) + multipoles(node.get("Right"))
        expected[id(node)] = {"Multipole": value}
        return value

    def locals_(node: Node, parent_local: float) -> None:
        local = parent_local + expected[id(node)]["Multipole"] * mu
        expected[id(node)]["Local"] = local
        if node.type_name == "FmmCell":
            locals_(node.get("Left"), local * decay)
            locals_(node.get("Right"), local * decay)

    def potentials(node: Node) -> float:
        if node.type_name == "FmmLeaf":
            masses = [node.get(p) for p in ("P0", "P1", "P2", "P3")]
            value = expected[id(node)]["Local"] * sum(masses) + _self_interact(
                *masses
            )
        else:
            value = potentials(node.get("Left")) + potentials(node.get("Right"))
        expected[id(node)]["Potential"] = value
        return value

    multipoles(root)
    locals_(root, 0.0)
    potentials(root)
    return expected
