"""The render-tree workload as a Python-embedded definition.

The same 17 tree types and 5 traversal passes as
:data:`repro.workloads.render.schema.RENDER_SOURCE`, written with
``@repro.schema`` / ``@repro.traversal`` instead of a source string.
Lowering produces a structurally identical program: the canonical print,
the content hash, and the fused generated Python are byte-for-byte the
ones the string DSL yields (pinned by
``tests/api/test_render_equivalence.py``) — the embedded frontend is a
second *spelling*, not a second *language*.

The pure-function impls (`imax`/`imin`/`idiv`/`pos`) are declared here
with ``@repro.pure`` — which captures them as the bound impls
automatically — and re-exported by :mod:`repro.workloads.render.schema`
so both frontends bind the *same* callables and therefore hash alike.

Width modes: 0 = AUTO (content-sized), 1 = REL (fixed pixels in
``RelWidth``), 2 = FLEX (takes a share of leftover space per
``FlexGrow``).
"""

from __future__ import annotations

import repro
from repro.ir.program import Program

# ---------------------------------------------------------------- globals

PAGE_WIDTH = repro.Global(int, 800)
CHAR_WIDTH = repro.Global(int, 6)
BASE_FONT = repro.Global(int, 12)
PAGE_MARGIN = repro.Global(int, 10)
BUTTON_PAD = repro.Global(int, 4)
PAGE_GAP = repro.Global(int, 20)


# ----------------------------------------------------------- opaque data


@repro.schema
class String:
    Length: int


@repro.schema
class BorderInfo:
    Size: int


# -------------------------------------------------------- pure functions


@repro.pure
def imax(a: int, b: int) -> int:
    return a if a >= b else b


@repro.pure
def imin(a: int, b: int) -> int:
    return a if a <= b else b


@repro.pure
def idiv(a: int, b: int) -> int:
    return a // b if b else a


@repro.pure
def pos(a: int) -> int:
    return a if a > 0 else 0


# ---------------------------------------------------------------- elements


@repro.schema(abstract=True)
class Element:
    PrefWidth: int = 0
    Width: int = 0
    Height: int = 0
    RelWidth: int = 0
    FlexGrow: int = 0
    FontSize: int = 0
    PosX: int = 0
    PosY: int = 0
    WidthMode: int = 0

    @repro.traversal(virtual=True)
    def resolveFlexWidths(this):
        this.PrefWidth = this.RelWidth

    @repro.traversal(virtual=True)
    def resolveRelativeWidths(this, avail: int):
        this.Width = this.PrefWidth
        if this.WidthMode == 2:
            this.Width = this.PrefWidth + pos(avail) * this.FlexGrow // 10

    @repro.traversal(virtual=True)
    def setFontStyle(this, size: int):
        this.FontSize = size

    @repro.traversal(virtual=True)
    def computeHeights(this):
        this.Height = this.FontSize

    @repro.traversal(virtual=True)
    def computePositions(this, x: int, y: int):
        this.PosX = x
        this.PosY = y


@repro.schema
class TextBox(Element):
    Text: String

    @repro.traversal
    def resolveFlexWidths(this):
        this.PrefWidth = this.Text.Length * CHAR_WIDTH
        if this.WidthMode == 1:
            this.PrefWidth = this.RelWidth

    @repro.traversal
    def computeHeights(this):
        this.Height = this.FontSize * (
            this.Text.Length * CHAR_WIDTH // imax(this.Width, 1) + 1
        )


@repro.schema
class Image(Element):
    NaturalWidth: int = 0
    NaturalHeight: int = 0

    @repro.traversal
    def resolveFlexWidths(this):
        this.PrefWidth = this.NaturalWidth
        if this.WidthMode == 1:
            this.PrefWidth = this.RelWidth

    @repro.traversal
    def computeHeights(this):
        this.Height = this.NaturalHeight * imax(this.Width, 1) // imax(
            this.NaturalWidth, 1
        )


@repro.schema
class Button(Element):
    Label: String

    @repro.traversal
    def resolveFlexWidths(this):
        this.PrefWidth = this.Label.Length * CHAR_WIDTH + 2 * BUTTON_PAD

    @repro.traversal
    def setFontStyle(this, size: int):
        this.FontSize = size - 1

    @repro.traversal
    def computeHeights(this):
        this.Height = this.FontSize + 2 * BUTTON_PAD


# -------------------------------------------------------- element lists


@repro.schema(abstract=True)
class ElementList:
    TotalPref: int = 0
    TotalFlex: int = 0
    TotalHeight: int = 0
    MaxHeight: int = 0

    @repro.traversal(virtual=True)
    def resolveFlexWidths(this):
        pass

    @repro.traversal(virtual=True)
    def resolveRelativeWidths(this, avail: int):
        pass

    @repro.traversal(virtual=True)
    def setFontStyle(this, size: int):
        pass

    @repro.traversal(virtual=True)
    def computeHeights(this):
        pass

    @repro.traversal(virtual=True)
    def computePositions(this, x: int, y: int):
        pass


@repro.schema
class ElementListInner(ElementList):
    Item: Element
    Next: ElementList

    @repro.traversal
    def resolveFlexWidths(this):
        this.Item.resolveFlexWidths()
        this.Next.resolveFlexWidths()
        this.TotalPref = this.Item.PrefWidth + this.Next.TotalPref
        this.TotalFlex = this.Item.FlexGrow + this.Next.TotalFlex

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Item.resolveRelativeWidths(avail)
        this.Next.resolveRelativeWidths(avail)

    @repro.traversal
    def setFontStyle(this, size: int):
        this.Item.setFontStyle(size)
        this.Next.setFontStyle(size)

    @repro.traversal
    def computeHeights(this):
        this.Item.computeHeights()
        this.Next.computeHeights()
        this.TotalHeight = this.Item.Height + this.Next.TotalHeight
        this.MaxHeight = imax(this.Item.Height, this.Next.MaxHeight)

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.Item.computePositions(x, y)
        this.Next.computePositions(x + this.Item.Width, y)


@repro.schema
class ElementListEnd(ElementList):
    pass


# ------------------------------------------------------ vertical container


@repro.schema
class VerticalContainer(Element):
    Children: ElementList
    Border: BorderInfo

    @repro.traversal
    def resolveFlexWidths(this):
        this.Children.resolveFlexWidths()
        this.PrefWidth = this.Children.TotalPref + 2 * this.Border.Size
        if this.WidthMode == 1:
            this.PrefWidth = this.RelWidth

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Width = this.PrefWidth
        if this.WidthMode == 2:
            this.Width = this.PrefWidth + pos(avail) * this.FlexGrow // 10
        this.Children.resolveRelativeWidths(
            this.Width - 2 * this.Border.Size - this.Children.TotalPref
        )

    @repro.traversal
    def setFontStyle(this, size: int):
        this.FontSize = size
        this.Children.setFontStyle(size - 1)

    @repro.traversal
    def computeHeights(this):
        this.Children.computeHeights()
        this.Height = this.Children.TotalHeight + 2 * this.Border.Size

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.PosX = x
        this.PosY = y
        this.Children.computePositions(
            x + this.Border.Size, y + this.Border.Size
        )


# ------------------------------------------------------------------- rows


@repro.schema
class HorizontalContainer:
    Items: ElementList
    PrefWidth: int = 0
    TotalFlex: int = 0
    Width: int = 0
    Height: int = 0
    PosX: int = 0
    PosY: int = 0

    @repro.traversal
    def resolveFlexWidths(this):
        this.Items.resolveFlexWidths()
        this.PrefWidth = this.Items.TotalPref
        this.TotalFlex = this.Items.TotalFlex

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Width = avail
        this.Items.resolveRelativeWidths(avail - this.PrefWidth)

    @repro.traversal
    def setFontStyle(this, size: int):
        this.Items.setFontStyle(size)

    @repro.traversal
    def computeHeights(this):
        this.Items.computeHeights()
        this.Height = this.Items.MaxHeight

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.PosX = x
        this.PosY = y
        this.Items.computePositions(x, y)


@repro.schema(abstract=True)
class HorizList:
    MaxPref: int = 0
    TotalHeight: int = 0

    @repro.traversal(virtual=True)
    def resolveFlexWidths(this):
        pass

    @repro.traversal(virtual=True)
    def resolveRelativeWidths(this, avail: int):
        pass

    @repro.traversal(virtual=True)
    def setFontStyle(this, size: int):
        pass

    @repro.traversal(virtual=True)
    def computeHeights(this):
        pass

    @repro.traversal(virtual=True)
    def computePositions(this, x: int, y: int):
        pass


@repro.schema
class HorizListInner(HorizList):
    Row: HorizontalContainer
    Next: HorizList

    @repro.traversal
    def resolveFlexWidths(this):
        this.Row.resolveFlexWidths()
        this.Next.resolveFlexWidths()
        this.MaxPref = imax(this.Row.PrefWidth, this.Next.MaxPref)

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Row.resolveRelativeWidths(avail)
        this.Next.resolveRelativeWidths(avail)

    @repro.traversal
    def setFontStyle(this, size: int):
        this.Row.setFontStyle(size)
        this.Next.setFontStyle(size)

    @repro.traversal
    def computeHeights(this):
        this.Row.computeHeights()
        this.Next.computeHeights()
        this.TotalHeight = this.Row.Height + this.Next.TotalHeight

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.Row.computePositions(x, y)
        this.Next.computePositions(x, y + this.Row.Height)


@repro.schema
class HorizListEnd(HorizList):
    pass


# ------------------------------------------------------------------ pages


@repro.schema
class Page:
    Rows: HorizList
    PrefWidth: int = 0
    Width: int = 0
    Height: int = 0
    PosX: int = 0
    PosY: int = 0

    @repro.traversal
    def resolveFlexWidths(this):
        this.Rows.resolveFlexWidths()
        this.PrefWidth = this.Rows.MaxPref

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Width = avail
        this.Rows.resolveRelativeWidths(avail - 2 * PAGE_MARGIN)

    @repro.traversal
    def setFontStyle(this, size: int):
        this.Rows.setFontStyle(size)

    @repro.traversal
    def computeHeights(this):
        this.Rows.computeHeights()
        this.Height = this.Rows.TotalHeight + 2 * PAGE_MARGIN

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.PosX = x
        this.PosY = y
        this.Rows.computePositions(x + PAGE_MARGIN, y + PAGE_MARGIN)


@repro.schema(abstract=True)
class PageList:
    TotalHeight: int = 0

    @repro.traversal(virtual=True)
    def resolveFlexWidths(this):
        pass

    @repro.traversal(virtual=True)
    def resolveRelativeWidths(this, avail: int):
        pass

    @repro.traversal(virtual=True)
    def setFontStyle(this, size: int):
        pass

    @repro.traversal(virtual=True)
    def computeHeights(this):
        pass

    @repro.traversal(virtual=True)
    def computePositions(this, x: int, y: int):
        pass


@repro.schema
class PageListInner(PageList):
    Content: Page
    Next: PageList

    @repro.traversal
    def resolveFlexWidths(this):
        this.Content.resolveFlexWidths()
        this.Next.resolveFlexWidths()

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Content.resolveRelativeWidths(avail)
        this.Next.resolveRelativeWidths(avail)

    @repro.traversal
    def setFontStyle(this, size: int):
        this.Content.setFontStyle(size)
        this.Next.setFontStyle(size)

    @repro.traversal
    def computeHeights(this):
        this.Content.computeHeights()
        this.Next.computeHeights()
        this.TotalHeight = (
            this.Content.Height + this.Next.TotalHeight + PAGE_GAP
        )

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.Content.computePositions(x, y)
        this.Next.computePositions(x, y + this.Content.Height + PAGE_GAP)


@repro.schema
class PageListEnd(PageList):
    pass


# --------------------------------------------------------------- document


@repro.schema
class Document:
    Pages: PageList
    Height: int = 0

    @repro.traversal
    def resolveFlexWidths(this):
        this.Pages.resolveFlexWidths()

    @repro.traversal
    def resolveRelativeWidths(this, avail: int):
        this.Pages.resolveRelativeWidths(PAGE_WIDTH)

    @repro.traversal
    def setFontStyle(this, size: int):
        this.Pages.setFontStyle(BASE_FONT)

    @repro.traversal
    def computeHeights(this):
        this.Pages.computeHeights()
        this.Height = this.Pages.TotalHeight

    @repro.traversal
    def computePositions(this, x: int, y: int):
        this.Pages.computePositions(0, 0)


@repro.entry(Document)
def main(doc):
    doc.resolveFlexWidths()
    doc.resolveRelativeWidths(0)
    doc.setFontStyle(0)
    doc.computeHeights()
    doc.computePositions(0, 0)


# ------------------------------------------------------------ the workload

# the single source of the render globals' runtime defaults:
# schema.DEFAULT_GLOBALS is derived from this, so the two frontends
# cannot drift apart
RENDER_EMBEDDED_GLOBALS = repro.default_globals(__name__)

_PROGRAM_CACHE: Program | None = None


def render_embedded_program() -> Program:
    """The lowered, validated render program (cached per process)."""
    global _PROGRAM_CACHE
    if _PROGRAM_CACHE is None:
        _PROGRAM_CACHE = repro.lower_module(__name__, name="render")
    return _PROGRAM_CACHE


def render_spec(pages: int = 4, seed: int = 7):
    """Default input: the Fig. 9 replicated-pages document."""
    from repro.workloads.render.docs import replicated_pages_spec

    return replicated_pages_spec(pages, seed)


def render_workload() -> "repro.Workload":
    """The render case study as a one-object workload bundle."""
    from repro.workloads.render.docs import build_document

    return repro.Workload.from_program(
        render_embedded_program(),
        build_document,
        globals_map=dict(RENDER_EMBEDDED_GLOBALS),
        make_spec=render_spec,
        description="render-tree layout (paper §5.1): replicated pages",
    )
