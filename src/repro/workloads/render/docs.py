"""Document builders: the input trees for Fig. 9 and Table 3.

``replicated_pages_spec`` mirrors the paper's setup ("we created documents
of various sizes by replicating the page shown in Figure 8"); the three
Table 3 documents are: many simple pages (Doc1), one dense page (Doc2),
and pages of different sizes (Doc3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.runtime import Heap, Node
from repro.runtime.values import ObjectValue
from repro.ir.program import Program
from repro.workloads.render.schema import MODE_AUTO, MODE_FLEX, MODE_REL


@dataclass
class ItemSpec:
    kind: str  # 'text' | 'image' | 'button' | 'vbox'
    text_len: int = 0
    natural_w: int = 0
    natural_h: int = 0
    width_mode: int = MODE_AUTO
    rel_width: int = 0
    flex_grow: int = 0
    border: int = 0
    children: list["ItemSpec"] = field(default_factory=list)


@dataclass
class RowSpec:
    items: list[ItemSpec]


@dataclass
class PageSpec:
    rows: list[RowSpec]


@dataclass
class DocSpec:
    name: str
    pages: list[PageSpec]

    def count_elements(self) -> int:
        def items_in(item: ItemSpec) -> int:
            return 1 + sum(items_in(c) for c in item.children)

        return sum(
            items_in(item)
            for page in self.pages
            for row in page.rows
            for item in row.items
        )


# ---------------------------------------------------------------------------
# specs
# ---------------------------------------------------------------------------


def _figure8_page(rng: random.Random) -> PageSpec:
    """A page shaped like the paper's Fig. 8: a heading row, a media row
    (image + caption), a button bar, and a sidebar-like vertical box."""
    heading = RowSpec(items=[ItemSpec("text", text_len=rng.randint(18, 30))])
    media = RowSpec(
        items=[
            ItemSpec(
                "image",
                natural_w=rng.choice([120, 160, 200]),
                natural_h=rng.choice([80, 100, 120]),
            ),
            ItemSpec("text", text_len=rng.randint(40, 90)),
        ]
    )
    buttons = RowSpec(
        items=[
            ItemSpec("button", text_len=rng.randint(3, 8)),
            ItemSpec("button", text_len=rng.randint(3, 8)),
            ItemSpec(
                "text",
                text_len=rng.randint(5, 12),
                width_mode=MODE_FLEX,
                flex_grow=rng.randint(2, 6),
            ),
        ]
    )
    sidebar = RowSpec(
        items=[
            ItemSpec(
                "vbox",
                border=rng.randint(1, 3),
                children=[
                    ItemSpec("text", text_len=rng.randint(10, 24)),
                    ItemSpec("button", text_len=rng.randint(3, 6)),
                    ItemSpec(
                        "image",
                        natural_w=80,
                        natural_h=60,
                        width_mode=MODE_REL,
                        rel_width=rng.choice([60, 90, 120]),
                    ),
                ],
            ),
            ItemSpec("text", text_len=rng.randint(30, 60)),
        ]
    )
    return PageSpec(rows=[heading, media, buttons, sidebar])


def replicated_pages_spec(num_pages: int, seed: int = 7) -> DocSpec:
    """Fig. 9's documents: the same page template replicated."""
    rng = random.Random(seed)
    template = _figure8_page(rng)
    return DocSpec(name=f"pages{num_pages}", pages=[template] * num_pages)


def doc1_spec(num_pages: int = 300, seed: int = 11) -> DocSpec:
    """Table 3 Doc1: many simple pages (scaled from the paper's 10^5)."""
    rng = random.Random(seed)
    pages = []
    for _ in range(num_pages):
        pages.append(
            PageSpec(
                rows=[
                    RowSpec(items=[ItemSpec("text", text_len=rng.randint(8, 20))]),
                    RowSpec(
                        items=[
                            ItemSpec("text", text_len=rng.randint(8, 20)),
                            ItemSpec("button", text_len=rng.randint(3, 6)),
                        ]
                    ),
                ]
            )
        )
    return DocSpec(name="Doc1", pages=pages)


def doc2_spec(rows: int = 160, seed: int = 13) -> DocSpec:
    """Table 3 Doc2: one dense page."""
    rng = random.Random(seed)
    page_rows = []
    for index in range(rows):
        if index % 5 == 4:
            page_rows.append(
                RowSpec(
                    items=[
                        ItemSpec(
                            "vbox",
                            border=2,
                            children=[
                                ItemSpec("text", text_len=rng.randint(10, 40)),
                                ItemSpec("text", text_len=rng.randint(10, 40)),
                                ItemSpec("button", text_len=5),
                            ],
                        )
                    ]
                )
            )
        else:
            page_rows.append(
                RowSpec(
                    items=[
                        ItemSpec("text", text_len=rng.randint(20, 80)),
                        ItemSpec(
                            "image",
                            natural_w=rng.choice([100, 150]),
                            natural_h=rng.choice([75, 100]),
                        ),
                        ItemSpec(
                            "text",
                            text_len=rng.randint(5, 15),
                            width_mode=MODE_FLEX,
                            flex_grow=3,
                        ),
                    ]
                )
            )
    return DocSpec(name="Doc2", pages=[PageSpec(rows=page_rows)])


def doc3_spec(num_pages: int = 120, seed: int = 17) -> DocSpec:
    """Table 3 Doc3: pages of different sizes."""
    rng = random.Random(seed)
    pages = []
    for index in range(num_pages):
        page = _figure8_page(rng)
        # vary the page size: light, medium, heavy
        extra_rows = [0, 3, 10][index % 3]
        for _ in range(extra_rows):
            page.rows.append(
                RowSpec(
                    items=[
                        ItemSpec("text", text_len=rng.randint(10, 60)),
                        ItemSpec("button", text_len=rng.randint(3, 8)),
                    ]
                )
            )
        pages.append(page)
    return DocSpec(name="Doc3", pages=pages)


# ---------------------------------------------------------------------------
# tree construction
# ---------------------------------------------------------------------------


def build_document(program: Program, heap: Heap, spec: DocSpec) -> Node:
    """Build the runtime tree for *spec*.

    Nodes are allocated in document order (preorder), like a builder
    producing the tree while reading the input — the allocation-order
    locality the paper's experiments rely on. List spines are built
    iteratively so kilo-page documents do not hit recursion limits.
    """
    document = Node.new(program, heap, "Document")

    def make_string(length: int) -> ObjectValue:
        return ObjectValue("String", {"Length": length})

    def build_item(item: ItemSpec) -> Node:
        common = {
            "WidthMode": item.width_mode,
            "RelWidth": item.rel_width,
            "FlexGrow": item.flex_grow,
        }
        if item.kind == "text":
            return Node.new(
                program, heap, "TextBox", Text=make_string(item.text_len), **common
            )
        if item.kind == "image":
            return Node.new(
                program, heap, "Image",
                NaturalWidth=item.natural_w, NaturalHeight=item.natural_h,
                **common,
            )
        if item.kind == "button":
            return Node.new(
                program, heap, "Button", Label=make_string(item.text_len), **common
            )
        if item.kind == "vbox":
            node = Node.new(
                program, heap, "VerticalContainer",
                Border=ObjectValue("BorderInfo", {"Size": item.border}),
                **common,
            )
            node.set("Children", build_element_list(item.children))
            return node
        raise ValueError(f"unknown item kind {item.kind!r}")

    def build_element_list(items: list[ItemSpec]) -> Node:
        spine = []
        for item in items:
            inner = Node.new(program, heap, "ElementListInner")
            inner.set("Item", build_item(item))
            spine.append(inner)
        tail = Node.new(program, heap, "ElementListEnd")
        for inner, nxt in zip(spine, spine[1:] + [tail]):
            inner.set("Next", nxt)
        return spine[0] if spine else tail

    def build_rows(rows: list[RowSpec]) -> Node:
        spine = []
        for row_spec in rows:
            inner = Node.new(program, heap, "HorizListInner")
            row = Node.new(program, heap, "HorizontalContainer")
            row.set("Items", build_element_list(row_spec.items))
            inner.set("Row", row)
            spine.append(inner)
        tail = Node.new(program, heap, "HorizListEnd")
        for inner, nxt in zip(spine, spine[1:] + [tail]):
            inner.set("Next", nxt)
        return spine[0] if spine else tail

    spine = []
    for page_spec in spec.pages:
        inner = Node.new(program, heap, "PageListInner")
        page = Node.new(program, heap, "Page")
        page.set("Rows", build_rows(page_spec.rows))
        inner.set("Content", page)
        spine.append(inner)
    tail = Node.new(program, heap, "PageListEnd")
    for inner, nxt in zip(spine, spine[1:] + [tail]):
        inner.set("Next", nxt)
    document.set("Pages", spine[0] if spine else tail)
    return document
