"""The render-tree Grafter program: 17 tree types, 5 passes (Table 2).

Width modes: 0 = AUTO (content-sized), 1 = REL (fixed/relative pixels in
``RelWidth``), 2 = FLEX (takes a share of leftover space per
``FlexGrow``).
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.program import Program

MODE_AUTO = 0
MODE_REL = 1
MODE_FLEX = 2

RENDER_SOURCE = """
int PAGE_WIDTH;
int CHAR_WIDTH;
int BASE_FONT;
int PAGE_MARGIN;
int BUTTON_PAD;
int PAGE_GAP;

class String { int Length; };
class BorderInfo { int Size; };

_pure_ int imax(int a, int b);
_pure_ int imin(int a, int b);
_pure_ int idiv(int a, int b);
_pure_ int pos(int a);

// ---------------------------------------------------------------- elements

_abstract_ _tree_ class Element {
    int PrefWidth = 0;
    int Width = 0;
    int Height = 0;
    int RelWidth = 0;
    int FlexGrow = 0;
    int FontSize = 0;
    int PosX = 0;
    int PosY = 0;
    int WidthMode = 0;
    _traversal_ virtual void resolveFlexWidths() {
        this->PrefWidth = this->RelWidth;
    }
    _traversal_ virtual void resolveRelativeWidths(int avail) {
        this->Width = this->PrefWidth;
        if (this->WidthMode == 2) {
            this->Width = this->PrefWidth + pos(avail) * this->FlexGrow / 10;
        }
    }
    _traversal_ virtual void setFontStyle(int size) {
        this->FontSize = size;
    }
    _traversal_ virtual void computeHeights() {
        this->Height = this->FontSize;
    }
    _traversal_ virtual void computePositions(int x, int y) {
        this->PosX = x;
        this->PosY = y;
    }
};

_tree_ class TextBox : public Element {
    String Text;
    _traversal_ void resolveFlexWidths() {
        this->PrefWidth = this->Text.Length * CHAR_WIDTH;
        if (this->WidthMode == 1) {
            this->PrefWidth = this->RelWidth;
        }
    }
    _traversal_ void computeHeights() {
        this->Height = this->FontSize *
            (this->Text.Length * CHAR_WIDTH / imax(this->Width, 1) + 1);
    }
};

_tree_ class Image : public Element {
    int NaturalWidth = 0;
    int NaturalHeight = 0;
    _traversal_ void resolveFlexWidths() {
        this->PrefWidth = this->NaturalWidth;
        if (this->WidthMode == 1) {
            this->PrefWidth = this->RelWidth;
        }
    }
    _traversal_ void computeHeights() {
        this->Height = this->NaturalHeight * imax(this->Width, 1)
            / imax(this->NaturalWidth, 1);
    }
};

_tree_ class Button : public Element {
    String Label;
    _traversal_ void resolveFlexWidths() {
        this->PrefWidth = this->Label.Length * CHAR_WIDTH + 2 * BUTTON_PAD;
    }
    _traversal_ void setFontStyle(int size) {
        this->FontSize = size - 1;
    }
    _traversal_ void computeHeights() {
        this->Height = this->FontSize + 2 * BUTTON_PAD;
    }
};

// -------------------------------------------------------- element lists

_abstract_ _tree_ class ElementList {
    int TotalPref = 0;
    int TotalFlex = 0;
    int TotalHeight = 0;
    int MaxHeight = 0;
    _traversal_ virtual void resolveFlexWidths() {}
    _traversal_ virtual void resolveRelativeWidths(int avail) {}
    _traversal_ virtual void setFontStyle(int size) {}
    _traversal_ virtual void computeHeights() {}
    _traversal_ virtual void computePositions(int x, int y) {}
};

_tree_ class ElementListInner : public ElementList {
    _child_ Element* Item;
    _child_ ElementList* Next;
    _traversal_ void resolveFlexWidths() {
        this->Item->resolveFlexWidths();
        this->Next->resolveFlexWidths();
        this->TotalPref = this->Item->PrefWidth + this->Next->TotalPref;
        this->TotalFlex = this->Item->FlexGrow + this->Next->TotalFlex;
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Item->resolveRelativeWidths(avail);
        this->Next->resolveRelativeWidths(avail);
    }
    _traversal_ void setFontStyle(int size) {
        this->Item->setFontStyle(size);
        this->Next->setFontStyle(size);
    }
    _traversal_ void computeHeights() {
        this->Item->computeHeights();
        this->Next->computeHeights();
        this->TotalHeight = this->Item->Height + this->Next->TotalHeight;
        this->MaxHeight = imax(this->Item->Height, this->Next->MaxHeight);
    }
    _traversal_ void computePositions(int x, int y) {
        this->Item->computePositions(x, y);
        this->Next->computePositions(x + this->Item->Width, y);
    }
};

_tree_ class ElementListEnd : public ElementList {
};

// ------------------------------------------------------ vertical container

_tree_ class VerticalContainer : public Element {
    _child_ ElementList* Children;
    BorderInfo Border;
    _traversal_ void resolveFlexWidths() {
        this->Children->resolveFlexWidths();
        this->PrefWidth = this->Children->TotalPref + 2 * this->Border.Size;
        if (this->WidthMode == 1) {
            this->PrefWidth = this->RelWidth;
        }
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Width = this->PrefWidth;
        if (this->WidthMode == 2) {
            this->Width = this->PrefWidth + pos(avail) * this->FlexGrow / 10;
        }
        this->Children->resolveRelativeWidths(
            this->Width - 2 * this->Border.Size - this->Children->TotalPref);
    }
    _traversal_ void setFontStyle(int size) {
        this->FontSize = size;
        this->Children->setFontStyle(size - 1);
    }
    _traversal_ void computeHeights() {
        this->Children->computeHeights();
        this->Height = this->Children->TotalHeight + 2 * this->Border.Size;
    }
    _traversal_ void computePositions(int x, int y) {
        this->PosX = x;
        this->PosY = y;
        this->Children->computePositions(
            x + this->Border.Size, y + this->Border.Size);
    }
};

// ------------------------------------------------------------------- rows

_tree_ class HorizontalContainer {
    _child_ ElementList* Items;
    int PrefWidth = 0;
    int TotalFlex = 0;
    int Width = 0;
    int Height = 0;
    int PosX = 0;
    int PosY = 0;
    _traversal_ void resolveFlexWidths() {
        this->Items->resolveFlexWidths();
        this->PrefWidth = this->Items->TotalPref;
        this->TotalFlex = this->Items->TotalFlex;
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Width = avail;
        this->Items->resolveRelativeWidths(avail - this->PrefWidth);
    }
    _traversal_ void setFontStyle(int size) {
        this->Items->setFontStyle(size);
    }
    _traversal_ void computeHeights() {
        this->Items->computeHeights();
        this->Height = this->Items->MaxHeight;
    }
    _traversal_ void computePositions(int x, int y) {
        this->PosX = x;
        this->PosY = y;
        this->Items->computePositions(x, y);
    }
};

_abstract_ _tree_ class HorizList {
    int MaxPref = 0;
    int TotalHeight = 0;
    _traversal_ virtual void resolveFlexWidths() {}
    _traversal_ virtual void resolveRelativeWidths(int avail) {}
    _traversal_ virtual void setFontStyle(int size) {}
    _traversal_ virtual void computeHeights() {}
    _traversal_ virtual void computePositions(int x, int y) {}
};

_tree_ class HorizListInner : public HorizList {
    _child_ HorizontalContainer* Row;
    _child_ HorizList* Next;
    _traversal_ void resolveFlexWidths() {
        this->Row->resolveFlexWidths();
        this->Next->resolveFlexWidths();
        this->MaxPref = imax(this->Row->PrefWidth, this->Next->MaxPref);
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Row->resolveRelativeWidths(avail);
        this->Next->resolveRelativeWidths(avail);
    }
    _traversal_ void setFontStyle(int size) {
        this->Row->setFontStyle(size);
        this->Next->setFontStyle(size);
    }
    _traversal_ void computeHeights() {
        this->Row->computeHeights();
        this->Next->computeHeights();
        this->TotalHeight = this->Row->Height + this->Next->TotalHeight;
    }
    _traversal_ void computePositions(int x, int y) {
        this->Row->computePositions(x, y);
        this->Next->computePositions(x, y + this->Row->Height);
    }
};

_tree_ class HorizListEnd : public HorizList {
};

// ------------------------------------------------------------------ pages

_tree_ class Page {
    _child_ HorizList* Rows;
    int PrefWidth = 0;
    int Width = 0;
    int Height = 0;
    int PosX = 0;
    int PosY = 0;
    _traversal_ void resolveFlexWidths() {
        this->Rows->resolveFlexWidths();
        this->PrefWidth = this->Rows->MaxPref;
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Width = avail;
        this->Rows->resolveRelativeWidths(avail - 2 * PAGE_MARGIN);
    }
    _traversal_ void setFontStyle(int size) {
        this->Rows->setFontStyle(size);
    }
    _traversal_ void computeHeights() {
        this->Rows->computeHeights();
        this->Height = this->Rows->TotalHeight + 2 * PAGE_MARGIN;
    }
    _traversal_ void computePositions(int x, int y) {
        this->PosX = x;
        this->PosY = y;
        this->Rows->computePositions(x + PAGE_MARGIN, y + PAGE_MARGIN);
    }
};

_abstract_ _tree_ class PageList {
    int TotalHeight = 0;
    _traversal_ virtual void resolveFlexWidths() {}
    _traversal_ virtual void resolveRelativeWidths(int avail) {}
    _traversal_ virtual void setFontStyle(int size) {}
    _traversal_ virtual void computeHeights() {}
    _traversal_ virtual void computePositions(int x, int y) {}
};

_tree_ class PageListInner : public PageList {
    _child_ Page* Content;
    _child_ PageList* Next;
    _traversal_ void resolveFlexWidths() {
        this->Content->resolveFlexWidths();
        this->Next->resolveFlexWidths();
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Content->resolveRelativeWidths(avail);
        this->Next->resolveRelativeWidths(avail);
    }
    _traversal_ void setFontStyle(int size) {
        this->Content->setFontStyle(size);
        this->Next->setFontStyle(size);
    }
    _traversal_ void computeHeights() {
        this->Content->computeHeights();
        this->Next->computeHeights();
        this->TotalHeight = this->Content->Height + this->Next->TotalHeight
            + PAGE_GAP;
    }
    _traversal_ void computePositions(int x, int y) {
        this->Content->computePositions(x, y);
        this->Next->computePositions(
            x, y + this->Content->Height + PAGE_GAP);
    }
};

_tree_ class PageListEnd : public PageList {
};

// --------------------------------------------------------------- document

_tree_ class Document {
    _child_ PageList* Pages;
    int Height = 0;
    _traversal_ void resolveFlexWidths() {
        this->Pages->resolveFlexWidths();
    }
    _traversal_ void resolveRelativeWidths(int avail) {
        this->Pages->resolveRelativeWidths(PAGE_WIDTH);
    }
    _traversal_ void setFontStyle(int size) {
        this->Pages->setFontStyle(BASE_FONT);
    }
    _traversal_ void computeHeights() {
        this->Pages->computeHeights();
        this->Height = this->Pages->TotalHeight;
    }
    _traversal_ void computePositions(int x, int y) {
        this->Pages->computePositions(0, 0);
    }
};

int main() {
    Document* doc = ...;
    doc->resolveFlexWidths();
    doc->resolveRelativeWidths(0);
    doc->setFontStyle(0);
    doc->computeHeights();
    doc->computePositions(0, 0);
}
"""

# The bound impls live with the embedded definition (module-level named
# functions — their impl references are stable across processes, so
# compiled render artifacts can be served from the on-disk store and
# shipped to worker processes). Both frontends bind the *same*
# callables, which is what makes the embedded program hash identically
# to this source string's parse. The globals' runtime defaults are
# shared the same way, so the twins cannot drift at run time either.
from repro.workloads.render.embedded import (
    RENDER_EMBEDDED_GLOBALS,
    idiv,
    imax,
    imin,
    pos,
)

_PURE_IMPLS = {
    "imax": imax,
    "imin": imin,
    "idiv": idiv,
    "pos": pos,
}

# public alias for callers (the traversal service) that compile
# RENDER_SOURCE text directly instead of going through render_program()
RENDER_PURE_IMPLS = _PURE_IMPLS

DEFAULT_GLOBALS = dict(RENDER_EMBEDDED_GLOBALS)

_PROGRAM_CACHE: Program | None = None


def render_program() -> Program:
    """The parsed, validated render-tree program (cached)."""
    global _PROGRAM_CACHE
    if _PROGRAM_CACHE is None:
        _PROGRAM_CACHE = parse_program(
            RENDER_SOURCE, name="render", pure_impls=_PURE_IMPLS
        )
    return _PROGRAM_CACHE
