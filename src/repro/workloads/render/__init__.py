"""Case study 1: render-tree layout (paper §5.1).

A document is a list of pages; each page is a list of rows (horizontal
containers); each row is a list of elements — text boxes, images,
buttons, and vertical containers that nest further elements (Fig. 7/8).
The five passes of Table 2 run over this tree:

1. ``resolveFlexWidths``     — bottom-up measurement: preferred widths
   and flex totals are aggregated up the tree.
2. ``resolveRelativeWidths`` — top-down distribution: available width
   flows down, flex/relative elements take their share.
3. ``setFontStyle``          — top-down font-size propagation.
4. ``computeHeights``        — bottom-up: element heights (text wraps at
   the resolved width and font) aggregate into rows, pages, document.
5. ``computePositions``      — top-down: (x, y) assignment, where each
   sibling's origin depends on the previous sibling's extent.

The measurement/distribution pair conflicts at aggregating containers
(pass 2 reads the aggregate pass 1 computes at the same node before
recursing), so the five passes fuse into *two* coarse traversals — the
~0.4x node-visit ratio of the paper's Fig. 9a — and the blockage is
type-specific, which is exactly what the TreeFuser baseline cannot
express.
"""

from repro.workloads.render.schema import (
    DEFAULT_GLOBALS,
    RENDER_PURE_IMPLS,
    RENDER_SOURCE,
    render_program,
)
from repro.workloads.render.docs import (
    DocSpec,
    build_document,
    doc1_spec,
    doc2_spec,
    doc3_spec,
    replicated_pages_spec,
)
from repro.workloads.render.embedded import (
    render_embedded_program,
    render_spec,
    render_workload,
)
from repro.workloads.render.oracle import layout_oracle

__all__ = [
    "render_program",
    "render_embedded_program",
    "render_workload",
    "render_spec",
    "RENDER_SOURCE",
    "RENDER_PURE_IMPLS",
    "DEFAULT_GLOBALS",
    "DocSpec",
    "build_document",
    "doc1_spec",
    "doc2_spec",
    "doc3_spec",
    "replicated_pages_spec",
    "layout_oracle",
]
