"""Reference layout engine, written independently of the Grafter program.

Recomputes the five passes in idiomatic recursive Python over the runtime
tree and returns the expected field values per node (by node identity).
The test suite runs the Grafter program (unfused, Grafter-fused, and
TreeFuser-fused) and checks every node against this oracle.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.runtime import Node
from repro.workloads.render.schema import DEFAULT_GLOBALS, MODE_FLEX, MODE_REL


class ExpectedLayout:
    """Expected values keyed by node id."""

    def __init__(self):
        self.values: dict[int, dict[str, int]] = {}

    def record(self, node: Node, **fields: int) -> None:
        self.values.setdefault(id(node), {}).update(fields)

    def expected_for(self, node: Node) -> dict[str, int]:
        return self.values.get(id(node), {})


def layout_oracle(
    program: Program, document: Node, globals_map: dict | None = None
) -> ExpectedLayout:
    env = dict(DEFAULT_GLOBALS)
    env.update(globals_map or {})
    out = ExpectedLayout()

    char_w = env["CHAR_WIDTH"]
    page_margin = env["PAGE_MARGIN"]
    button_pad = env["BUTTON_PAD"]
    page_gap = env["PAGE_GAP"]

    def elements_of(list_node: Node):
        items = []
        node = list_node
        while node.type_name == "ElementListInner":
            items.append(node)
            node = node.get("Next")
        return items, node

    def rows_of(list_node: Node):
        rows = []
        node = list_node
        while node.type_name == "HorizListInner":
            rows.append(node)
            node = node.get("Next")
        return rows, node

    def pages_of(list_node: Node):
        pages = []
        node = list_node
        while node.type_name == "PageListInner":
            pages.append(node)
            node = node.get("Next")
        return pages, node

    # ---------------- pass 1: preferred widths (bottom-up) ----------------

    def pref_width(element: Node) -> int:
        kind = element.type_name
        if kind == "TextBox":
            pref = element.get("Text").get("Length") * char_w
            if element.get("WidthMode") == MODE_REL:
                pref = element.get("RelWidth")
        elif kind == "Image":
            pref = element.get("NaturalWidth")
            if element.get("WidthMode") == MODE_REL:
                pref = element.get("RelWidth")
        elif kind == "Button":
            pref = element.get("Label").get("Length") * char_w + 2 * button_pad
        elif kind == "VerticalContainer":
            items, end = elements_of(element.get("Children"))
            total = sum(pref_width(i.get("Item")) for i in items)
            _record_list_prefs(items, end)
            pref = total + 2 * element.get("Border").get("Size")
            if element.get("WidthMode") == MODE_REL:
                pref = element.get("RelWidth")
        else:
            raise AssertionError(kind)
        out.record(element, PrefWidth=pref)
        return pref

    def _record_list_prefs(items: list[Node], end: Node) -> None:
        total_pref = 0
        total_flex = 0
        for inner in reversed(items):
            element = inner.get("Item")
            total_pref += _expected_pref(element)
            total_flex += element.get("FlexGrow")
            out.record(inner, TotalPref=total_pref, TotalFlex=total_flex)

    def _expected_pref(element: Node) -> int:
        recorded = out.expected_for(element)
        if "PrefWidth" in recorded:
            return recorded["PrefWidth"]
        return pref_width(element)

    # ---------------- pass 2: width distribution (top-down) ---------------

    def distribute(element: Node, avail: int) -> None:
        pref = out.expected_for(element)["PrefWidth"]
        width = pref
        if element.get("WidthMode") == MODE_FLEX:
            width = pref + max(avail, 0) * element.get("FlexGrow") // 10
        out.record(element, Width=width)
        if element.type_name == "VerticalContainer":
            items, _ = elements_of(element.get("Children"))
            total_pref = sum(
                out.expected_for(i.get("Item"))["PrefWidth"] for i in items
            )
            child_avail = width - 2 * element.get("Border").get("Size") - total_pref
            for inner in items:
                distribute(inner.get("Item"), child_avail)

    # ---------------- pass 3: font styles (top-down) ----------------------

    def fonts(element: Node, size: int) -> None:
        if element.type_name == "Button":
            out.record(element, FontSize=size - 1)
        else:
            out.record(element, FontSize=size)
        if element.type_name == "VerticalContainer":
            items, _ = elements_of(element.get("Children"))
            for inner in items:
                fonts(inner.get("Item"), size - 1)

    # ---------------- pass 4: heights (bottom-up) -------------------------

    def height(element: Node) -> int:
        expected = out.expected_for(element)
        kind = element.type_name
        if kind == "TextBox":
            width = max(expected["Width"], 1)
            length = element.get("Text").get("Length")
            value = expected["FontSize"] * (length * char_w // width + 1)
        elif kind == "Image":
            value = (
                element.get("NaturalHeight")
                * max(expected["Width"], 1)
                // max(element.get("NaturalWidth"), 1)
            )
        elif kind == "Button":
            value = expected["FontSize"] + 2 * button_pad
        elif kind == "VerticalContainer":
            items, _ = elements_of(element.get("Children"))
            total = 0
            max_h = 0
            for inner in reversed(items):
                item_height = height(inner.get("Item"))
                total += item_height
                max_h = max(max_h, item_height)
                out.record(inner, TotalHeight=total)
            value = total + 2 * element.get("Border").get("Size")
        else:
            raise AssertionError(kind)
        out.record(element, Height=value)
        return value

    # ---------------- pass 5: positions (top-down) ------------------------

    def positions(element: Node, x: int, y: int) -> None:
        out.record(element, PosX=x, PosY=y)
        if element.type_name == "VerticalContainer":
            border = element.get("Border").get("Size")
            items, _ = elements_of(element.get("Children"))
            cx = x + border
            for inner in items:
                positions(inner.get("Item"), cx, y + border)
                cx += out.expected_for(inner.get("Item"))["Width"]

    # ---------------- drive the whole document ----------------------------

    pages, _ = pages_of(document.get("Pages"))
    page_width = env["PAGE_WIDTH"]
    base_font = env["BASE_FONT"]

    for page_inner in pages:
        page = page_inner.get("Content")
        rows, _ = rows_of(page.get("Rows"))
        # pass 1
        max_pref = 0
        for row_inner in rows:
            row = row_inner.get("Row")
            items, end = elements_of(row.get("Items"))
            for inner in items:
                pref_width(inner.get("Item"))
            _record_list_prefs(items, end)
            row_pref = sum(
                out.expected_for(i.get("Item"))["PrefWidth"] for i in items
            )
            out.record(row, PrefWidth=row_pref)
            max_pref = max(max_pref, row_pref)
        out.record(page, PrefWidth=max_pref)
        # pass 2
        out.record(page, Width=page_width)
        row_avail = page_width - 2 * page_margin
        for row_inner in rows:
            row = row_inner.get("Row")
            out.record(row, Width=row_avail)
            leftover = row_avail - out.expected_for(row)["PrefWidth"]
            items, _ = elements_of(row.get("Items"))
            for inner in items:
                distribute(inner.get("Item"), leftover)
        # pass 3
        for row_inner in rows:
            items, _ = elements_of(row_inner.get("Row").get("Items"))
            for inner in items:
                fonts(inner.get("Item"), base_font)
        # pass 4
        page_total = 0
        for row_inner in reversed(rows):
            row = row_inner.get("Row")
            items, _ = elements_of(row.get("Items"))
            row_height = 0
            item_total = 0
            for inner in reversed(items):
                item_height = height(inner.get("Item"))
                item_total += item_height
                row_height = max(row_height, item_height)
                out.record(inner, TotalHeight=item_total, MaxHeight=row_height)
            out.record(row, Height=row_height)
            page_total += row_height
            out.record(row_inner, TotalHeight=page_total)
        out.record(page, Height=page_total + 2 * page_margin)
        # pass 5 (per page; y origin filled in below)

    # document-level aggregation and positions
    doc_total = 0
    for page_inner in reversed(pages):
        page = page_inner.get("Content")
        doc_total += out.expected_for(page)["Height"] + page_gap
        out.record(page_inner, TotalHeight=doc_total)
    out.record(document, Height=doc_total)

    y_cursor = 0
    for page_inner in pages:
        page = page_inner.get("Content")
        out.record(page, PosX=0, PosY=y_cursor)
        rows, _ = rows_of(page.get("Rows"))
        row_y = y_cursor + page_margin
        for row_inner in rows:
            row = row_inner.get("Row")
            out.record(row, PosX=page_margin, PosY=row_y)
            items, _ = elements_of(row.get("Items"))
            item_x = page_margin
            for inner in items:
                positions(inner.get("Item"), item_x, row_y)
                item_x += out.expected_for(inner.get("Item"))["Width"]
            row_y += out.expected_for(row)["Height"]
        y_cursor += out.expected_for(page)["Height"] + page_gap
    return out
