"""The AST-language Grafter program: 20 tree types, 6 traversals.

Expression/statement kinds live in data fields (``kind``) so parents can
inspect children generically; ``isLit`` distinguishes genuine literal
nodes from operator nodes that folding marked constant but has not yet
collapsed.
"""

from __future__ import annotations

from repro.frontend import parse_program
from repro.ir.program import Program

K_CONST = 1
K_VAR = 2
K_ADD = 3
K_SUB = 4
K_MUL = 5
K_INCR = 6
K_DECR = 7

S_ASSIGN = 1
S_IF = 2

AST_SOURCE = """
_pure_ int applyOp(int op, int a, int b);

// ------------------------------------------------------------- expressions

_abstract_ _tree_ class Expr {
    int kind = 0;
    int value = 0;
    int varId = 0;
    int isLit = 0;
    _traversal_ virtual void desugarIncr() {}
    _traversal_ virtual void desugarDecr() {}
    _traversal_ virtual void replaceVarRefs(int vid, int val) {}
    _traversal_ virtual void foldConstants() {}
};

_tree_ class ConstExpr : public Expr {
};

_tree_ class VarRef : public Expr {
};

_tree_ class IncrExpr : public Expr {
    _child_ Expr* Operand;
};

_tree_ class DecrExpr : public Expr {
    _child_ Expr* Operand;
};

_abstract_ _tree_ class BinaryExpr : public Expr {
    _child_ Expr* Left;
    _child_ Expr* Right;
    _traversal_ void desugarIncr() {
        this->Left->desugarIncr();
        this->Right->desugarIncr();
        if (this->Left.kind == 6) {
            int vid = static_cast<IncrExpr*>(this->Left)->Operand.varId;
            delete this->Left;
            this->Left = new AddExpr();
            this->Left.kind = 3;
            static_cast<AddExpr*>(this->Left)->Left = new VarRef();
            static_cast<AddExpr*>(this->Left)->Left.kind = 2;
            static_cast<AddExpr*>(this->Left)->Left.varId = vid;
            static_cast<AddExpr*>(this->Left)->Right = new ConstExpr();
            static_cast<AddExpr*>(this->Left)->Right.kind = 1;
            static_cast<AddExpr*>(this->Left)->Right.isLit = 1;
            static_cast<AddExpr*>(this->Left)->Right.value = 1;
        }
        if (this->Right.kind == 6) {
            int vid2 = static_cast<IncrExpr*>(this->Right)->Operand.varId;
            delete this->Right;
            this->Right = new AddExpr();
            this->Right.kind = 3;
            static_cast<AddExpr*>(this->Right)->Left = new VarRef();
            static_cast<AddExpr*>(this->Right)->Left.kind = 2;
            static_cast<AddExpr*>(this->Right)->Left.varId = vid2;
            static_cast<AddExpr*>(this->Right)->Right = new ConstExpr();
            static_cast<AddExpr*>(this->Right)->Right.kind = 1;
            static_cast<AddExpr*>(this->Right)->Right.isLit = 1;
            static_cast<AddExpr*>(this->Right)->Right.value = 1;
        }
    }
    _traversal_ void desugarDecr() {
        this->Left->desugarDecr();
        this->Right->desugarDecr();
        if (this->Left.kind == 7) {
            int vid = static_cast<DecrExpr*>(this->Left)->Operand.varId;
            delete this->Left;
            this->Left = new SubExpr();
            this->Left.kind = 4;
            static_cast<SubExpr*>(this->Left)->Left = new VarRef();
            static_cast<SubExpr*>(this->Left)->Left.kind = 2;
            static_cast<SubExpr*>(this->Left)->Left.varId = vid;
            static_cast<SubExpr*>(this->Left)->Right = new ConstExpr();
            static_cast<SubExpr*>(this->Left)->Right.kind = 1;
            static_cast<SubExpr*>(this->Left)->Right.isLit = 1;
            static_cast<SubExpr*>(this->Left)->Right.value = 1;
        }
        if (this->Right.kind == 7) {
            int vid2 = static_cast<DecrExpr*>(this->Right)->Operand.varId;
            delete this->Right;
            this->Right = new SubExpr();
            this->Right.kind = 4;
            static_cast<SubExpr*>(this->Right)->Left = new VarRef();
            static_cast<SubExpr*>(this->Right)->Left.kind = 2;
            static_cast<SubExpr*>(this->Right)->Left.varId = vid2;
            static_cast<SubExpr*>(this->Right)->Right = new ConstExpr();
            static_cast<SubExpr*>(this->Right)->Right.kind = 1;
            static_cast<SubExpr*>(this->Right)->Right.isLit = 1;
            static_cast<SubExpr*>(this->Right)->Right.value = 1;
        }
    }
    _traversal_ void replaceVarRefs(int vid, int val) {
        this->Left->replaceVarRefs(vid, val);
        this->Right->replaceVarRefs(vid, val);
        if (this->Left.kind == 2 && this->Left.varId == vid) {
            delete this->Left;
            this->Left = new ConstExpr();
            this->Left.kind = 1;
            this->Left.isLit = 1;
            this->Left.value = val;
        }
        if (this->Right.kind == 2 && this->Right.varId == vid) {
            delete this->Right;
            this->Right = new ConstExpr();
            this->Right.kind = 1;
            this->Right.isLit = 1;
            this->Right.value = val;
        }
    }
    _traversal_ void foldConstants() {
        this->Left->foldConstants();
        this->Right->foldConstants();
        if (this->Left.kind == 1 && this->Right.kind == 1) {
            this->value = applyOp(this->kind, this->Left.value,
                                  this->Right.value);
            this->kind = 1;
        }
    }
};

_tree_ class AddExpr : public BinaryExpr { };
_tree_ class SubExpr : public BinaryExpr { };
_tree_ class MulExpr : public BinaryExpr { };

// -------------------------------------------------------------- statements

_abstract_ _tree_ class Stmt {
    int kind = 0;
    int varId = 0;
    _traversal_ virtual void desugarIncr() {}
    _traversal_ virtual void desugarDecr() {}
    _traversal_ virtual void propagateConstants() {}
    _traversal_ virtual void replaceVarRefs(int vid, int val) {}
    _traversal_ virtual void foldConstants() {}
    _traversal_ virtual void removeUnusedBranches() {}
};

_abstract_ _tree_ class StmtList {
    _traversal_ virtual void desugarIncr() {}
    _traversal_ virtual void desugarDecr() {}
    _traversal_ virtual void propagateConstants() {}
    _traversal_ virtual void replaceVarRefs(int vid, int val) {}
    _traversal_ virtual void foldConstants() {}
    _traversal_ virtual void removeUnusedBranches() {}
};

_tree_ class AssignStmt : public Stmt {
    _child_ Expr* Rhs;
    _traversal_ void desugarIncr() {
        this->Rhs->desugarIncr();
        if (this->Rhs.kind == 6) {
            int vid = static_cast<IncrExpr*>(this->Rhs)->Operand.varId;
            delete this->Rhs;
            this->Rhs = new AddExpr();
            this->Rhs.kind = 3;
            static_cast<AddExpr*>(this->Rhs)->Left = new VarRef();
            static_cast<AddExpr*>(this->Rhs)->Left.kind = 2;
            static_cast<AddExpr*>(this->Rhs)->Left.varId = vid;
            static_cast<AddExpr*>(this->Rhs)->Right = new ConstExpr();
            static_cast<AddExpr*>(this->Rhs)->Right.kind = 1;
            static_cast<AddExpr*>(this->Rhs)->Right.isLit = 1;
            static_cast<AddExpr*>(this->Rhs)->Right.value = 1;
        }
    }
    _traversal_ void desugarDecr() {
        this->Rhs->desugarDecr();
        if (this->Rhs.kind == 7) {
            int vid = static_cast<DecrExpr*>(this->Rhs)->Operand.varId;
            delete this->Rhs;
            this->Rhs = new SubExpr();
            this->Rhs.kind = 4;
            static_cast<SubExpr*>(this->Rhs)->Left = new VarRef();
            static_cast<SubExpr*>(this->Rhs)->Left.kind = 2;
            static_cast<SubExpr*>(this->Rhs)->Left.varId = vid;
            static_cast<SubExpr*>(this->Rhs)->Right = new ConstExpr();
            static_cast<SubExpr*>(this->Rhs)->Right.kind = 1;
            static_cast<SubExpr*>(this->Rhs)->Right.isLit = 1;
            static_cast<SubExpr*>(this->Rhs)->Right.value = 1;
        }
    }
    _traversal_ void replaceVarRefs(int vid, int val) {
        this->Rhs->replaceVarRefs(vid, val);
        if (this->Rhs.kind == 2 && this->Rhs.varId == vid) {
            delete this->Rhs;
            this->Rhs = new ConstExpr();
            this->Rhs.kind = 1;
            this->Rhs.isLit = 1;
            this->Rhs.value = val;
        }
    }
    _traversal_ void foldConstants() {
        this->Rhs->foldConstants();
        if (this->Rhs.kind == 1 && this->Rhs.isLit == 0) {
            int v = this->Rhs.value;
            delete this->Rhs;
            this->Rhs = new ConstExpr();
            this->Rhs.kind = 1;
            this->Rhs.isLit = 1;
            this->Rhs.value = v;
        }
    }
};

_tree_ class IfStmt : public Stmt {
    _child_ Expr* Cond;
    _child_ StmtList* Then;
    _child_ StmtList* Else;
    _traversal_ void desugarIncr() {
        this->Cond->desugarIncr();
        this->Then->desugarIncr();
        this->Else->desugarIncr();
        if (this->Cond.kind == 6) {
            int vid = static_cast<IncrExpr*>(this->Cond)->Operand.varId;
            delete this->Cond;
            this->Cond = new AddExpr();
            this->Cond.kind = 3;
            static_cast<AddExpr*>(this->Cond)->Left = new VarRef();
            static_cast<AddExpr*>(this->Cond)->Left.kind = 2;
            static_cast<AddExpr*>(this->Cond)->Left.varId = vid;
            static_cast<AddExpr*>(this->Cond)->Right = new ConstExpr();
            static_cast<AddExpr*>(this->Cond)->Right.kind = 1;
            static_cast<AddExpr*>(this->Cond)->Right.isLit = 1;
            static_cast<AddExpr*>(this->Cond)->Right.value = 1;
        }
    }
    _traversal_ void desugarDecr() {
        this->Cond->desugarDecr();
        this->Then->desugarDecr();
        this->Else->desugarDecr();
        if (this->Cond.kind == 7) {
            int vid = static_cast<DecrExpr*>(this->Cond)->Operand.varId;
            delete this->Cond;
            this->Cond = new SubExpr();
            this->Cond.kind = 4;
            static_cast<SubExpr*>(this->Cond)->Left = new VarRef();
            static_cast<SubExpr*>(this->Cond)->Left.kind = 2;
            static_cast<SubExpr*>(this->Cond)->Left.varId = vid;
            static_cast<SubExpr*>(this->Cond)->Right = new ConstExpr();
            static_cast<SubExpr*>(this->Cond)->Right.kind = 1;
            static_cast<SubExpr*>(this->Cond)->Right.isLit = 1;
            static_cast<SubExpr*>(this->Cond)->Right.value = 1;
        }
    }
    _traversal_ void propagateConstants() {
        this->Then->propagateConstants();
        this->Else->propagateConstants();
    }
    _traversal_ void replaceVarRefs(int vid, int val) {
        this->Cond->replaceVarRefs(vid, val);
        if (this->Cond.kind == 2 && this->Cond.varId == vid) {
            delete this->Cond;
            this->Cond = new ConstExpr();
            this->Cond.kind = 1;
            this->Cond.isLit = 1;
            this->Cond.value = val;
        }
        this->Then->replaceVarRefs(vid, val);
        this->Else->replaceVarRefs(vid, val);
    }
    _traversal_ void foldConstants() {
        this->Cond->foldConstants();
        if (this->Cond.kind == 1 && this->Cond.isLit == 0) {
            int v = this->Cond.value;
            delete this->Cond;
            this->Cond = new ConstExpr();
            this->Cond.kind = 1;
            this->Cond.isLit = 1;
            this->Cond.value = v;
        }
        this->Then->foldConstants();
        this->Else->foldConstants();
    }
    _traversal_ void removeUnusedBranches() {
        this->Then->removeUnusedBranches();
        this->Else->removeUnusedBranches();
        if (this->Cond.kind == 1 && this->Cond.isLit == 1) {
            if (this->Cond.value != 0) {
                delete this->Else;
                this->Else = new StmtListEnd();
            }
            if (this->Cond.value == 0) {
                delete this->Then;
                this->Then = new StmtListEnd();
            }
        }
    }
};

_tree_ class StmtListInner : public StmtList {
    _child_ Stmt* S;
    _child_ StmtList* Next;
    _traversal_ void desugarIncr() {
        this->S->desugarIncr();
        this->Next->desugarIncr();
    }
    _traversal_ void desugarDecr() {
        this->S->desugarDecr();
        this->Next->desugarDecr();
    }
    _traversal_ void propagateConstants() {
        this->S->propagateConstants();
        int vid = 0 - 1;
        int val = 0;
        if (this->S.kind == 1 &&
            static_cast<AssignStmt*>(this->S)->Rhs.kind == 1) {
            vid = this->S.varId;
            val = static_cast<AssignStmt*>(this->S)->Rhs.value;
        }
        this->Next->replaceVarRefs(vid, val);
        this->Next->propagateConstants();
    }
    _traversal_ void replaceVarRefs(int vid, int val) {
        if (vid < 0) return;
        this->S->replaceVarRefs(vid, val);
        if (this->S.kind == 1 && this->S.varId == vid) return;
        this->Next->replaceVarRefs(vid, val);
    }
    _traversal_ void foldConstants() {
        this->S->foldConstants();
        this->Next->foldConstants();
    }
    _traversal_ void removeUnusedBranches() {
        this->S->removeUnusedBranches();
        this->Next->removeUnusedBranches();
    }
};

_tree_ class StmtListEnd : public StmtList {
};

// --------------------------------------------------------------- functions

_tree_ class Function {
    _child_ StmtList* Body;
    _traversal_ void desugarIncr() { this->Body->desugarIncr(); }
    _traversal_ void desugarDecr() { this->Body->desugarDecr(); }
    _traversal_ void propagateConstants() {
        this->Body->propagateConstants();
    }
    _traversal_ void foldConstants() { this->Body->foldConstants(); }
    _traversal_ void removeUnusedBranches() {
        this->Body->removeUnusedBranches();
    }
};

_abstract_ _tree_ class FunctionList {
    _traversal_ virtual void desugarIncr() {}
    _traversal_ virtual void desugarDecr() {}
    _traversal_ virtual void propagateConstants() {}
    _traversal_ virtual void foldConstants() {}
    _traversal_ virtual void removeUnusedBranches() {}
};

_tree_ class FunctionListInner : public FunctionList {
    _child_ Function* Fn;
    _child_ FunctionList* Next;
    _traversal_ void desugarIncr() {
        this->Fn->desugarIncr();
        this->Next->desugarIncr();
    }
    _traversal_ void desugarDecr() {
        this->Fn->desugarDecr();
        this->Next->desugarDecr();
    }
    _traversal_ void propagateConstants() {
        this->Fn->propagateConstants();
        this->Next->propagateConstants();
    }
    _traversal_ void foldConstants() {
        this->Fn->foldConstants();
        this->Next->foldConstants();
    }
    _traversal_ void removeUnusedBranches() {
        this->Fn->removeUnusedBranches();
        this->Next->removeUnusedBranches();
    }
};

_tree_ class FunctionListEnd : public FunctionList {
};

_tree_ class Program {
    _child_ FunctionList* Functions;
    _traversal_ void desugarIncr() { this->Functions->desugarIncr(); }
    _traversal_ void desugarDecr() { this->Functions->desugarDecr(); }
    _traversal_ void propagateConstants() {
        this->Functions->propagateConstants();
    }
    _traversal_ void foldConstants() { this->Functions->foldConstants(); }
    _traversal_ void removeUnusedBranches() {
        this->Functions->removeUnusedBranches();
    }
};

int main() {
    Program* root = ...;
    root->desugarIncr();
    root->desugarDecr();
    root->propagateConstants();
    root->foldConstants();
    root->removeUnusedBranches();
}
"""


def _apply_op(op: int, a: int, b: int) -> int:
    if op == K_ADD:
        return a + b
    if op == K_SUB:
        return a - b
    if op == K_MUL:
        return a * b
    raise ValueError(f"not a binary operator kind: {op}")


_PROGRAM_CACHE: Program | None = None


def ast_program() -> Program:
    """The parsed, validated AST-language program (cached)."""
    global _PROGRAM_CACHE
    if _PROGRAM_CACHE is None:
        _PROGRAM_CACHE = parse_program(
            AST_SOURCE, name="astlang", pure_impls={"applyOp": _apply_op}
        )
    return _PROGRAM_CACHE
