"""Case study 2: AST traversals (paper §5.2).

A small imperative language — functions containing assignments, ``if``
statements and integer expressions with ``x++``/``x--`` sugar — is
represented as a heterogeneous AST of 20 node types (Fig. 10). Six
traversals (Table 2) run over it:

1. ``desugarIncr``          — rewrite ``x++`` into ``x + 1`` (topology
   mutation: the parent deletes the sugar node and builds the sum).
2. ``desugarDecr``          — same for ``x--``.
3. ``propagateConstants``   — finds ``x = <const>`` assignments and, for
   each, *launches* a ``replaceVarRefs`` traversal over the following
   statements (the paper's "written as two traversals").
4. ``replaceVarRefs(v,c)``  — replaces reads of ``v`` by ``c``; truncates
   dynamically when ``v`` is reassigned (the paper's §5.2 source of
   fused-code instruction overhead).
5. ``foldConstants``        — marks constant subexpressions bottom-up and
   collapses them into literal nodes (mutation).
6. ``removeUnusedBranches`` — deletes the dead arm of ``if`` statements
   whose condition folded to a literal (mutation).
"""

from repro.workloads.astlang.schema import (
    AST_SOURCE,
    K_ADD,
    K_CONST,
    K_DECR,
    K_INCR,
    K_MUL,
    K_SUB,
    K_VAR,
    S_ASSIGN,
    S_IF,
    ast_program,
)
from repro.workloads.astlang.programs import (
    AstBuilder,
    prog1_spec,
    prog2_spec,
    prog3_spec,
    replicated_functions,
)
from repro.workloads.astlang.oracle import (
    check_desugared,
    check_folded,
    check_pruned,
    evaluate_program,
)


def astlang_spec(functions: int = 12, seed: int = 3) -> tuple:
    """Default input spec: ``functions`` replicated template functions
    (shipped as a tuple so it pickles into service workers)."""
    return (functions, seed)


def build_astlang_tree(program, heap, spec):
    """Realize one AST from an :func:`astlang_spec` tuple."""
    functions, seed = spec
    return replicated_functions(program, heap, functions, seed)


def astlang_workload():
    """The AST-optimizer case study as a one-object workload bundle."""
    from repro.api import Workload

    return Workload.from_program(
        ast_program(),
        build_astlang_tree,
        make_spec=astlang_spec,
        description="AST optimization passes (paper §5.2): desugar, "
        "propagate, fold, prune",
    )


__all__ = [
    "astlang_workload",
    "astlang_spec",
    "build_astlang_tree",
    "AST_SOURCE",
    "ast_program",
    "K_CONST", "K_VAR", "K_ADD", "K_SUB", "K_MUL", "K_INCR", "K_DECR",
    "S_ASSIGN", "S_IF",
    "AstBuilder",
    "replicated_functions",
    "prog1_spec",
    "prog2_spec",
    "prog3_spec",
    "evaluate_program",
    "check_desugared",
    "check_folded",
    "check_pruned",
]
