"""AST input generators: the trees behind Fig. 11 and Table 4.

``AstBuilder`` assembles runtime ASTs node-by-node (setting the ``kind``
discriminator fields the traversals dispatch on). The three Table 4
configurations:

* Prog1 — a large number of normal-sized functions (most fusible).
* Prog2 — one large function (fusion only inside one body).
* Prog3 — functions with long live ranges: constants defined early and
  used much later, so ``replaceVarRefs`` sub-traversals run long before
  truncating.
"""

from __future__ import annotations

import random

from repro.ir.program import Program
from repro.runtime import Heap, Node
from repro.workloads.astlang.schema import (
    K_ADD,
    K_CONST,
    K_DECR,
    K_INCR,
    K_MUL,
    K_SUB,
    K_VAR,
    S_ASSIGN,
    S_IF,
)


class AstBuilder:
    """Convenience constructors for runtime AST nodes."""

    def __init__(self, program: Program, heap: Heap):
        self.program = program
        self.heap = heap

    # -- expressions -------------------------------------------------------

    def const(self, value: int) -> Node:
        return Node.new(
            self.program, self.heap, "ConstExpr",
            kind=K_CONST, value=value, isLit=1,
        )

    def var(self, var_id: int) -> Node:
        return Node.new(
            self.program, self.heap, "VarRef", kind=K_VAR, varId=var_id
        )

    def incr(self, var_id: int) -> Node:
        return Node.new(
            self.program, self.heap, "IncrExpr",
            kind=K_INCR, Operand=self.var(var_id),
        )

    def decr(self, var_id: int) -> Node:
        return Node.new(
            self.program, self.heap, "DecrExpr",
            kind=K_DECR, Operand=self.var(var_id),
        )

    def binop(self, op_kind: int, left: Node, right: Node) -> Node:
        type_name = {K_ADD: "AddExpr", K_SUB: "SubExpr", K_MUL: "MulExpr"}[op_kind]
        return Node.new(
            self.program, self.heap, type_name,
            kind=op_kind, Left=left, Right=right,
        )

    def add(self, left: Node, right: Node) -> Node:
        return self.binop(K_ADD, left, right)

    def sub(self, left: Node, right: Node) -> Node:
        return self.binop(K_SUB, left, right)

    def mul(self, left: Node, right: Node) -> Node:
        return self.binop(K_MUL, left, right)

    # -- statements ----------------------------------------------------------

    def assign(self, var_id: int, rhs: Node) -> Node:
        return Node.new(
            self.program, self.heap, "AssignStmt",
            kind=S_ASSIGN, varId=var_id, Rhs=rhs,
        )

    def if_stmt(self, cond: Node, then: list[Node], orelse: list[Node]) -> Node:
        return Node.new(
            self.program, self.heap, "IfStmt",
            kind=S_IF,
            Cond=cond,
            Then=self.stmt_list(then),
            Else=self.stmt_list(orelse),
        )

    def stmt_list(self, stmts: list[Node]) -> Node:
        spine = []
        for stmt in stmts:
            inner = Node.new(self.program, self.heap, "StmtListInner")
            inner.set("S", stmt)
            spine.append(inner)
        tail = Node.new(self.program, self.heap, "StmtListEnd")
        for inner, nxt in zip(spine, spine[1:] + [tail]):
            inner.set("Next", nxt)
        return spine[0] if spine else tail

    # -- functions / program ---------------------------------------------------

    def function(self, stmts: list[Node]) -> Node:
        return Node.new(
            self.program, self.heap, "Function", Body=self.stmt_list(stmts)
        )

    def program_node(self, functions: list[Node]) -> Node:
        root = Node.new(self.program, self.heap, "Program")
        spine = []
        for function in functions:
            inner = Node.new(self.program, self.heap, "FunctionListInner")
            inner.set("Fn", function)
            spine.append(inner)
        tail = Node.new(self.program, self.heap, "FunctionListEnd")
        for inner, nxt in zip(spine, spine[1:] + [tail]):
            inner.set("Next", nxt)
        root.set("Functions", spine[0] if spine else tail)
        return root


def _template_function(builder: AstBuilder, rng: random.Random) -> Node:
    """One function exercising every pass: sugar, constants to propagate,
    foldable arithmetic, and a branch that folding makes dead."""
    v0, v1, v2, v3 = 0, 1, 2, 3
    stmts = [
        builder.assign(v0, builder.const(rng.randint(1, 9))),
        builder.assign(v1, builder.add(builder.var(v0), builder.const(3))),
        builder.assign(v2, builder.incr(v1)),
        builder.assign(v1, builder.decr(v1)),
        builder.if_stmt(
            builder.sub(builder.var(v0), builder.var(v0)),  # folds to 0
            [builder.assign(v3, builder.const(rng.randint(10, 19)))],
            [builder.assign(v3, builder.mul(builder.var(v0), builder.const(2)))],
        ),
        builder.assign(v2, builder.add(builder.var(v3), builder.incr(v2))),
    ]
    return builder.function(stmts)


def replicated_functions(
    program: Program, heap: Heap, num_functions: int, seed: int = 3
) -> Node:
    """Fig. 11 inputs: a representative function replicated (the paper:
    'This function was replicated in order to obtain bigger trees')."""
    rng = random.Random(seed)
    builder = AstBuilder(program, heap)
    functions = [
        _template_function(builder, rng) for _ in range(num_functions)
    ]
    return builder.program_node(functions)


def prog1_spec(program: Program, heap: Heap, num_functions: int = 120,
               seed: int = 5) -> Node:
    """Table 4 Prog1: many normal-sized functions."""
    return replicated_functions(program, heap, num_functions, seed)


def prog2_spec(program: Program, heap: Heap, num_stmts: int = 400,
               seed: int = 7) -> Node:
    """Table 4 Prog2: one large function."""
    rng = random.Random(seed)
    builder = AstBuilder(program, heap)
    stmts = []
    for index in range(num_stmts):
        var = index % 8
        choice = rng.random()
        if choice < 0.3:
            stmts.append(builder.assign(var, builder.const(rng.randint(0, 9))))
        elif choice < 0.6:
            stmts.append(
                builder.assign(
                    var,
                    builder.add(
                        builder.var((var + 1) % 8), builder.const(rng.randint(1, 5))
                    ),
                )
            )
        elif choice < 0.75:
            stmts.append(builder.assign(var, builder.incr(var)))
        else:
            stmts.append(
                builder.if_stmt(
                    builder.var((var + 2) % 8),
                    [builder.assign(var, builder.const(1))],
                    [builder.assign(var, builder.decr(var))],
                )
            )
    return builder.program_node([builder.function(stmts)])


def prog3_spec(program: Program, heap: Heap, num_functions: int = 20,
               stmts_per_function: int = 60, seed: int = 9) -> Node:
    """Table 4 Prog3: long live ranges — constants assigned once at the
    top, referenced across the whole body, never reassigned, so each
    replaceVarRefs launch sweeps the entire remaining list."""
    rng = random.Random(seed)
    builder = AstBuilder(program, heap)
    functions = []
    for _ in range(num_functions):
        stmts = [builder.assign(0, builder.const(rng.randint(1, 9)))]
        for index in range(stmts_per_function):
            var = 1 + index % 6
            stmts.append(
                builder.assign(
                    var,
                    builder.add(builder.var(0), builder.const(rng.randint(0, 4))),
                )
            )
        functions.append(builder.function(stmts))
    return builder.program_node(functions)
