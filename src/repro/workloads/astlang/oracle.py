"""Reference semantics for the AST language.

``evaluate_program`` runs the mini-language with a straightforward
recursive evaluator, giving the observable meaning of an AST: the final
variable environment of every function. Optimization passes must preserve
it. The ``check_*`` predicates verify the structural postconditions of
each pass.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.runtime import Node
from repro.workloads.astlang.schema import (
    K_ADD,
    K_CONST,
    K_DECR,
    K_INCR,
    K_MUL,
    K_SUB,
    K_VAR,
    S_ASSIGN,
    S_IF,
)


def _stmt_nodes(stmt_list: Node):
    node = stmt_list
    while node.type_name == "StmtListInner":
        yield node.get("S")
        node = node.get("Next")


def _function_nodes(program_node: Node):
    node = program_node.get("Functions")
    while node.type_name == "FunctionListInner":
        yield node.get("Fn")
        node = node.get("Next")


def eval_expr(expr: Node, env: dict[int, int]) -> int:
    kind = expr.get("kind")
    if kind == K_CONST:
        return expr.get("value")
    if kind == K_VAR:
        return env.get(expr.get("varId"), 0)
    if kind == K_INCR:
        return eval_expr(expr.get("Operand"), env) + 1
    if kind == K_DECR:
        return eval_expr(expr.get("Operand"), env) - 1
    left = eval_expr(expr.get("Left"), env)
    right = eval_expr(expr.get("Right"), env)
    if kind == K_ADD:
        return left + right
    if kind == K_SUB:
        return left - right
    if kind == K_MUL:
        return left * right
    raise AssertionError(f"bad expression kind {kind}")


def eval_stmts(stmt_list: Node, env: dict[int, int]) -> None:
    for stmt in _stmt_nodes(stmt_list):
        if stmt.get("kind") == S_ASSIGN:
            env[stmt.get("varId")] = eval_expr(stmt.get("Rhs"), env)
        elif stmt.get("kind") == S_IF:
            if eval_expr(stmt.get("Cond"), env) != 0:
                eval_stmts(stmt.get("Then"), env)
            else:
                eval_stmts(stmt.get("Else"), env)
        else:
            raise AssertionError(f"bad statement kind {stmt.get('kind')}")


def evaluate_program(program: Program, root: Node) -> list[dict[int, int]]:
    """Final variable environments, one per function — the observable
    meaning the optimization passes must preserve."""
    results = []
    for function in _function_nodes(root):
        env: dict[int, int] = {}
        eval_stmts(function.get("Body"), env)
        results.append(env)
    return results


# ---------------------------------------------------------------------------
# structural postconditions
# ---------------------------------------------------------------------------


def check_desugared(program: Program, root: Node) -> bool:
    """After desugaring: no ++/-- nodes anywhere."""
    return all(
        node.type_name not in ("IncrExpr", "DecrExpr")
        and (node.type_name in ("Program", "Function", "FunctionListInner",
                                "FunctionListEnd", "StmtListInner",
                                "StmtListEnd", "AssignStmt", "IfStmt")
             or node.get("kind") not in (K_INCR, K_DECR))
        for node in root.walk(program)
        if node.type_name not in ("Program", "Function", "FunctionListInner",
                                  "FunctionListEnd", "StmtListInner",
                                  "StmtListEnd")
    ) and not any(
        node.type_name in ("IncrExpr", "DecrExpr")
        for node in root.walk(program)
    )


def check_folded(program: Program, root: Node) -> bool:
    """After folding: no operator node has two literal children (it
    would have been folded and collapsed into a literal)."""
    for node in root.walk(program):
        if node.type_name in ("AddExpr", "SubExpr", "MulExpr"):
            left = node.get("Left")
            right = node.get("Right")
            if left.get("kind") == K_CONST and right.get("kind") == K_CONST:
                return False
    return True


def check_pruned(program: Program, root: Node) -> bool:
    """After branch removal: every if with a literal condition has an
    empty dead arm."""
    for node in root.walk(program):
        if node.type_name != "IfStmt":
            continue
        cond = node.get("Cond")
        if cond.get("kind") == K_CONST and cond.get("isLit") == 1:
            dead = node.get("Else") if cond.get("value") != 0 else node.get("Then")
            if dead.type_name != "StmtListEnd":
                return False
    return True


def count_kinds(program: Program, root: Node) -> dict[str, int]:
    """Node-type census (useful in tests and reports)."""
    counts: dict[str, int] = {}
    for node in root.walk(program):
        counts[node.type_name] = counts.get(node.type_name, 0) + 1
    return counts
