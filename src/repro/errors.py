"""Exception hierarchy for the Grafter reproduction.

Every error raised by the package derives from :class:`ReproError`, so
applications embedding the library can catch one type. The sub-hierarchy
mirrors the pipeline stages: frontend (parsing), validation (language
restrictions of Fig. 3 in the paper), analysis, fusion and runtime.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class FrontendError(ReproError):
    """Lexing or parsing failure in the Grafter surface syntax."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class ValidationError(ReproError):
    """The program violates Grafter's language restrictions (paper Fig. 3)."""


class EmbedError(ReproError):
    """A Python-embedded traversal definition could not be lowered to IR.

    Carries the offending construct's source location (``filename``,
    ``line``) when known, so the message points at the decorated Python
    code rather than at the lowering machinery."""

    def __init__(self, message: str, filename: str = "", line: int = 0):
        self.filename = filename
        self.line = line
        if filename:
            message = f"{filename}:{line}: {message}"
        super().__init__(message)


class AnalysisError(ReproError):
    """Dependence/access analysis failure (internal invariant violations)."""


class FusionError(ReproError):
    """The fusion engine could not synthesize a fused traversal."""


class RuntimeFailure(ReproError):
    """The interpreter hit an error while executing a traversal program."""


class WorkloadError(ReproError):
    """A case-study workload was configured inconsistently."""
