"""The in-memory compile cache — now a face of :mod:`repro.storage`.

The cache that used to live here (three LRU sections: whole compile
results, exec'd module artifacts, per-unit pass artifacts) is now
:class:`repro.storage.memory.MemoryTier`, the first tier of every
:class:`~repro.storage.tiered.TieredStore` the driver builds. What
remains here is the module-level :data:`GLOBAL_CACHE` every in-process
compile shares, plus :class:`CompileCache` — the pre-storage public
spelling, kept as a thin deprecation shim (its old method names
``lookup``/``insert``/``store``/``artifact``/``store_artifact``/
``unit_lookup``/``unit_store`` delegate to the tier protocol and it
warns once on construction).

Keys are pure content hashes — compiling the *same text* through two
different ``Program`` objects hits the same entry. The memory layer
keys results on ``(source hash, full options hash)``; the disk and
peer layers below it key on the output-options hash (see
:mod:`repro.storage`).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro._compat import suppress_legacy_warnings, warn_legacy
from repro.pipeline.options import CompileResult
from repro.storage.memory import MemoryTier


class CompileCache(MemoryTier):
    """Deprecated spelling of :class:`repro.storage.MemoryTier`.

    Construction warns once; every pre-storage method name keeps
    working. New code should build a ``MemoryTier`` (or just use the
    driver's default :data:`GLOBAL_CACHE`).
    """

    def __init__(self, max_entries: int = 128, max_units: int = 4096,
                 max_bytes: Optional[int] = None):
        warn_legacy(
            "CompileCache is deprecated; use repro.storage.MemoryTier "
            "(same LRU, now byte-budgeted and tier-composable)"
        )
        kwargs = {"max_entries": max_entries, "max_units": max_units}
        if max_bytes is not None:
            kwargs["max_bytes"] = max_bytes
        super().__init__(**kwargs)

    # -- pre-storage method names ---------------------------------------

    def lookup(self, key: tuple[str, str]) -> Optional[CompileResult]:
        return self.get_result(key)

    def insert(
        self,
        key: tuple[str, str],
        result: CompileResult,
        from_disk: bool = False,
    ) -> None:
        self.put_result(key, result, promoted=from_disk)

    def store(self, key: tuple[str, str], result: CompileResult) -> None:
        self.put_result(key, result)

    def artifact(self, key: Hashable) -> Optional[object]:
        return self.get_artifact(key)

    def store_artifact(self, key: Hashable, value: object) -> None:
        self.put_artifact(key, value)

    def unit_lookup(self, pass_name: str, key: str):
        return self.get_unit(pass_name, key)

    def unit_store(self, pass_name: str, key: str, value) -> None:
        self.put_unit(pass_name, key, value)


with suppress_legacy_warnings():
    #: The process-wide memory tier every driver-level compile shares.
    GLOBAL_CACHE = CompileCache()
