"""Content-addressed compile cache.

Two layers share one LRU budget:

* **results** — full :class:`~repro.pipeline.options.CompileResult`
  records keyed on ``(source hash, options hash)``; a warm
  ``pipeline.compile()`` of the same source with the same options is a
  dictionary lookup instead of a parse→fuse→emit run.
* **artifacts** — individual emitted/exec'd Python modules keyed on the
  content hash of what they were generated from, so
  :func:`repro.codegen.compile_program` / ``compile_fused`` and the
  pipeline's emit stage share compiled modules even when reached through
  different entry points.

Keys are pure content hashes — compiling the *same text* through two
different ``Program`` objects hits the same entry. The cache is
process-local and unsynchronized (the reproduction is single-threaded).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional

from repro.pipeline.options import CompileResult


class CompileCache:
    """LRU cache of compile results and emitted-module artifacts."""

    def __init__(self, max_entries: int = 128):
        self.max_entries = max_entries
        self._results: OrderedDict[tuple[str, str], CompileResult] = (
            OrderedDict()
        )
        self._artifacts: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # -- full compile results -------------------------------------------

    def lookup(self, key: tuple[str, str]) -> Optional[CompileResult]:
        result = self._results.get(key)
        if result is None:
            self.misses += 1
            return None
        self._results.move_to_end(key)
        self.hits += 1
        return result

    def store(self, key: tuple[str, str], result: CompileResult) -> None:
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self.max_entries:
            self._results.popitem(last=False)

    # -- emitted-module artifacts ---------------------------------------

    def artifact(self, key: Hashable) -> Optional[object]:
        value = self._artifacts.get(key)
        if value is not None:
            self._artifacts.move_to_end(key)
        return value

    def store_artifact(self, key: Hashable, value: object) -> None:
        self._artifacts[key] = value
        self._artifacts.move_to_end(key)
        while len(self._artifacts) > self.max_entries:
            self._artifacts.popitem(last=False)

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._results)

    def clear(self) -> None:
        self._results.clear()
        self._artifacts.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._results),
            "artifacts": len(self._artifacts),
            "hits": self.hits,
            "misses": self.misses,
        }


GLOBAL_CACHE = CompileCache()
