"""Content-addressed compile cache.

Two layers share one LRU budget:

* **results** — full :class:`~repro.pipeline.options.CompileResult`
  records keyed on ``(source hash, options hash)``; a warm
  ``pipeline.compile()`` of the same source with the same options is a
  dictionary lookup instead of a parse→fuse→emit run.
* **artifacts** — individual emitted/exec'd Python modules keyed on the
  content hash of what they were generated from, so
  :func:`repro.codegen.compile_program` / ``compile_fused`` and the
  pipeline's emit stage share compiled modules even when reached through
  different entry points.

Keys are pure content hashes — compiling the *same text* through two
different ``Program`` objects hits the same entry.

The on-disk layer lives in :class:`~repro.service.store.ArtifactStore`
and is wired up by the driver when ``options.cache_dir`` is set: a
memory miss falls through to the store there, and the disk hit comes
home via :meth:`CompileCache.insert` (counted in ``disk_hits``).
Operations take an internal lock — the batch executor's worker threads
share one cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

from repro.pipeline.options import CompileResult


class CompileCache:
    """LRU cache of compile results, emitted-module artifacts, and
    per-unit pass artifacts."""

    def __init__(self, max_entries: int = 128, max_units: int = 4096):
        self.max_entries = max_entries
        # units are small and numerous (one per method / fused sequence
        # per pass), so they get their own, much larger LRU budget — a
        # single render compile touches ~150 of them
        self.max_units = max_units
        self._lock = threading.RLock()
        self._results: OrderedDict[tuple[str, str], CompileResult] = (
            OrderedDict()
        )
        self._artifacts: OrderedDict[Hashable, object] = OrderedDict()
        self._units: OrderedDict[tuple[str, str], object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.unit_hits = 0
        self.unit_misses = 0

    # -- full compile results -------------------------------------------

    def lookup(self, key: tuple[str, str]) -> Optional[CompileResult]:
        with self._lock:
            result = self._results.get(key)
            if result is not None:
                self._results.move_to_end(key)
                self.hits += 1
                return result
            self.misses += 1
            return None

    def insert(
        self,
        key: tuple[str, str],
        result: CompileResult,
        from_disk: bool = False,
    ) -> None:
        """Adopt a result into the memory layer — how disk-loaded
        entries come home (``from_disk`` keeps the stats honest: the
        adoption converts this lookup's recorded miss into a disk
        hit)."""
        with self._lock:
            self._results[key] = result
            self._results.move_to_end(key)
            while len(self._results) > self.max_entries:
                self._results.popitem(last=False)
            if from_disk:
                self.disk_hits += 1
                self.hits += 1
                self.misses -= 1

    def store(self, key: tuple[str, str], result: CompileResult) -> None:
        self.insert(key, result)

    # -- emitted-module artifacts ---------------------------------------

    def artifact(self, key: Hashable) -> Optional[object]:
        with self._lock:
            value = self._artifacts.get(key)
            if value is not None:
                self._artifacts.move_to_end(key)
            return value

    def store_artifact(self, key: Hashable, value: object) -> None:
        with self._lock:
            self._artifacts[key] = value
            self._artifacts.move_to_end(key)
            while len(self._artifacts) > self.max_entries:
                self._artifacts.popitem(last=False)

    # -- per-unit pass artifacts ----------------------------------------

    def unit_lookup(self, pass_name: str, key: str):
        """One pass's artifact for one compilation unit, or ``None``."""
        with self._lock:
            value = self._units.get((pass_name, key))
            if value is not None:
                self._units.move_to_end((pass_name, key))
                self.unit_hits += 1
            else:
                self.unit_misses += 1
            return value

    def unit_store(self, pass_name: str, key: str, value) -> None:
        with self._lock:
            self._units[(pass_name, key)] = value
            self._units.move_to_end((pass_name, key))
            while len(self._units) > self.max_units:
                self._units.popitem(last=False)

    # -- maintenance ----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._results)

    def clear(self) -> None:
        with self._lock:
            self._results.clear()
            self._artifacts.clear()
            self._units.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.unit_hits = 0
            self.unit_misses = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._results),
                "artifacts": len(self._artifacts),
                "units": len(self._units),
                "hits": self.hits,
                "misses": self.misses,
                "disk_hits": self.disk_hits,
                "unit_hits": self.unit_hits,
                "unit_misses": self.unit_misses,
            }


GLOBAL_CACHE = CompileCache()
