"""Compilation units: content keys and the per-unit artifact layer.

The unit-granular pass contract (see :mod:`repro.pipeline.manager`)
keys every pass artifact on the *content* it was derived from, so a
recompile after an edit reloads every artifact whose inputs did not
change — across methods, fused sequences, and emitted module functions.

Two pieces live here:

* :class:`UnitIndex` — content keys for one program under one set of
  options. The **schema hash** covers everything *except* method bodies
  and the entry sequence (type hierarchy, fields, globals, pure
  declarations, method signatures, language mode); a **method hash** is
  the canonical print of one body; a **closure hash** folds in every
  method transitively reachable through the labeled call graph — the
  dependence-summary memoization ROADMAP asked for: a sequence's plan
  (and its scheduled, emitted form) depends on exactly its members'
  closures plus the schema, so editing one traversal dirties only the
  sequences that can reach it.

  Pure-function *impls* are deliberately excluded: plans, graphs, and
  emitted text never embed an impl (generated code calls
  ``RT.pure[name]`` at run time), so unit artifacts are shared across
  impl rebindings — only the final :class:`CompileResult` and the
  exec'd module objects are impl-bound, and their keys (the driver's
  source hash, ``hash_program``) already include the impl signature.

* :class:`UnitArtifacts` — one compilation's window onto the unit
  layer of its :class:`~repro.storage.TieredStore` (memory tier, the
  ``cache_dir`` disk store, any read-only peers), with per-pass
  hit/miss/disk/peer counters that land in the pass timing details
  (and from there in ``repro compile --explain``).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Optional

from repro.pipeline.options import hash_text


class UnitIndex:
    """Content keys for the units of one (program, options) pair."""

    def __init__(self, program, options):
        self.program = program
        self.options = options
        self._method_hashes: dict[str, str] = {}
        self._analysis_hashes: dict[str, str] = {}
        self._closure_hashes: dict[str, str] = {}
        self._analysis_closure_hashes: dict[str, str] = {}
        self._adjacency: Optional[dict[str, tuple[str, ...]]] = None
        self.schema_hash = self._schema_hash()
        self.plan_sig = self._plan_sig()

    # -- the schema (everything but bodies and entry) -------------------

    def _schema_hash(self) -> str:
        program = self.program
        parts: list[str] = [f"mode={self.options.mode}"]
        for cls in program.opaque_classes.values():
            fields = ",".join(
                f"{f.name}:{f.type_name}" for f in cls.fields.values()
            )
            parts.append(f"opaque {cls.name}{{{fields}}}")
        for var in program.globals.values():
            parts.append(f"global {var.type_name} {var.name}")
        for func in program.pure_functions.values():
            params = ",".join(
                f"{p.name}:{p.type_name}" for p in func.params
            )
            reads = ",".join(sorted(func.reads_globals))
            parts.append(
                f"pure {func.name}({params})->{func.return_type}"
                f" reads[{reads}]"
            )
        for tree_type in program.tree_types.values():
            bases = ",".join(tree_type.bases)
            fields = ",".join(
                f"{f.name}:{f.type_name}:{int(f.is_child)}"
                for f in tree_type.own_fields()
            )
            defaults = ",".join(
                f"{name}={value!r}"
                for name, value in tree_type.data_defaults.items()
            )
            parts.append(
                f"tree {tree_type.name}({bases})"
                f"{'!' if tree_type.abstract else ''}"
                f"{{{fields}}}[{defaults}]"
            )
        for method in self.program.all_methods():
            params = ",".join(
                f"{p.name}:{p.type_name}" for p in method.params
            )
            parts.append(
                f"sig {method.qualified_name}({params})"
                f"{'v' if method.virtual else ''}"
            )
        return hash_text("\n".join(parts))

    def _plan_sig(self) -> str:
        """The option fields fusion planning depends on (the limits;
        the mode already sits in the schema hash)."""
        from dataclasses import fields

        limits = self.options.limits
        return ";".join(
            f"{spec.name}={getattr(limits, spec.name)}"
            for spec in fields(limits)
        )

    # -- per-method hashes ----------------------------------------------

    def method_hash(self, method) -> str:
        """Content hash of one method's canonical print (signature is in
        the schema hash; this pins the body)."""
        name = method.qualified_name
        cached = self._method_hashes.get(name)
        if cached is None:
            from repro.ir.printer import print_method

            cached = hash_text(print_method(method))
            self._method_hashes[name] = cached
        return cached

    def analysis_hash(self, method, analysis_ctx) -> str:
        """Content hash of the method's *analysis-relevant projection*:
        per-top-level-statement raw access paths, truncation flags, and
        — for statements containing traversal calls — the exact printed
        text (grouping keys off guards, receivers, and argument
        expressions). Two bodies with the same projection produce the
        same summaries, the same dependence edges, and the same
        grouping, so dependence/fusion units keyed on it survive edits
        that only touch computation (a constant, an operator) without
        touching what is read or written.
        """
        name = method.qualified_name
        cached = self._analysis_hashes.get(name)
        if cached is not None:
            return cached
        from repro.ir.printer import print_stmt
        from repro.ir.stmts import contains_return, nested_traversals

        parts: list[str] = []
        for accesses in analysis_ctx.method_accesses(method):
            stmt = accesses.stmt
            parts.append(type(stmt).__name__)
            if contains_return(stmt):
                parts.append("R")
            if nested_traversals(stmt):
                parts.extend(print_stmt(stmt, 0))
            for tag, infos in (
                ("tr", accesses.tree_reads),
                ("tw", accesses.tree_writes),
                ("er", accesses.env_reads),
                ("ew", accesses.env_writes),
            ):
                for info in infos:
                    parts.append(
                        f"{tag}:{'/'.join(info.labels)}"
                        f"~{int(info.any_suffix)}{int(info.on_tree)}"
                    )
            parts.append(";")
        cached = hash_text("\n".join(parts))
        self._analysis_hashes[name] = cached
        return cached

    def _adjacency_map(self) -> dict[str, tuple[str, ...]]:
        """Qualified name -> qualified names its traverse statements may
        dispatch to (the labeled call graph, labels dropped)."""
        if self._adjacency is None:
            from repro.analysis.callgraph import call_targets
            from repro.ir.stmts import TraverseStmt, walk_stmts

            adjacency: dict[str, tuple[str, ...]] = {}
            for method in self.program.all_methods():
                targets: list[str] = []
                for stmt in walk_stmts(method.body):
                    if isinstance(stmt, TraverseStmt):
                        targets.extend(
                            t.qualified_name
                            for t in call_targets(
                                self.program, method, stmt
                            )
                        )
                adjacency[method.qualified_name] = tuple(targets)
            self._adjacency = adjacency
        return self._adjacency

    def _reachable(self, name: str) -> set[str]:
        adjacency = self._adjacency_map()
        reachable = {name}
        queue = deque([name])
        while queue:
            for target in adjacency.get(queue.popleft(), ()):
                if target not in reachable:
                    reachable.add(target)
                    queue.append(target)
        return reachable

    def closure_hash(self, method) -> str:
        """Hash of the method's transitive call closure at *text* level
        — every body whose edit could change this method's emitted
        fused form."""
        name = method.qualified_name
        cached = self._closure_hashes.get(name)
        if cached is not None:
            return cached
        by_name = {
            m.qualified_name: m for m in self.program.all_methods()
        }
        digest = hash_text(
            "\n".join(
                f"{n}={self.method_hash(by_name[n])}"
                for n in sorted(self._reachable(name))
            )
        )
        self._closure_hashes[name] = digest
        return digest

    def analysis_closure_hash(self, method, analysis_ctx) -> str:
        """The transitive call closure at *analysis* level — the
        dependence-summary memoization key: it changes only when some
        reachable body's access structure (not its computation)
        changes."""
        name = method.qualified_name
        cached = self._analysis_closure_hashes.get(name)
        if cached is not None:
            return cached
        by_name = {
            m.qualified_name: m for m in self.program.all_methods()
        }
        digest = hash_text(
            "\n".join(
                f"{n}={self.analysis_hash(by_name[n], analysis_ctx)}"
                for n in sorted(self._reachable(name))
            )
        )
        self._analysis_closure_hashes[name] = digest
        return digest

    # -- unit keys -------------------------------------------------------

    def method_key(self, method, salt: str) -> str:
        """Key for artifacts derived from one method body alone (access
        summaries, the unfused emitted function)."""
        return hash_text(
            f"{salt}\x00{self.schema_hash}\x00{method.qualified_name}"
            f"\x00{self.method_hash(method)}"
        )

    def sequence_key(
        self,
        members: Iterable,
        salt: str,
        *,
        analysis_ctx=None,
        with_limits: bool = True,
    ) -> str:
        """Key for artifacts derived from a member sequence and its
        transitive callees.

        With ``analysis_ctx`` the closures hash the members' *analysis
        projections* (dependence structures and fusion plans depend on
        access structure, not computation); without it they hash full
        body text (emitted fused units embed the bodies).
        ``with_limits=False`` drops the fusion-cutoff signature —
        dependence graphs don't depend on the limits, so a limits sweep
        keeps hitting them.
        """
        if analysis_ctx is not None:
            closures = "\x00".join(
                f"{m.qualified_name}"
                f"={self.analysis_closure_hash(m, analysis_ctx)}"
                for m in members
            )
        else:
            closures = "\x00".join(
                f"{m.qualified_name}={self.closure_hash(m)}"
                for m in members
            )
        sig = self.plan_sig if with_limits else "-"
        return hash_text(
            f"{salt}\x00{self.schema_hash}\x00{sig}\x00{closures}"
        )


class UnitArtifacts:
    """One compilation's view over the unit layer of a
    :class:`~repro.storage.TieredStore`.

    Lookup walks the tiers in order (memory, then the disk store, then
    any peers); the store promotes lower-tier hits upward, and this
    view attributes each hit to the tier that served it — the
    ``unit_disk_hits`` / ``unit_peer_hits`` numbers in the pass timing
    details. Publishing lands in memory always and spills to disk only
    for passes that opt in (``persist_units``) on persisting compiles.

    The pre-storage constructor shape ``UnitArtifacts(cache=...,
    store=..., persist=...)`` still works: the two layers become a
    two-tier store.
    """

    def __init__(
        self, cache=None, store=None, persist: bool = True, tiers=None
    ):
        if tiers is None:
            from repro.storage import TieredStore

            tiers = TieredStore(
                [layer for layer in (cache, store) if layer is not None],
                persist=persist,
            )
        self.tiers = tiers
        self.counts: dict[str, dict[str, int]] = {}

    def _count(self, pass_name: str) -> dict[str, int]:
        return self.counts.setdefault(
            pass_name,
            {
                "unit_hits": 0,
                "unit_misses": 0,
                "unit_disk_hits": 0,
                "unit_peer_hits": 0,
            },
        )

    def lookup(self, pass_name: str, key: str):
        count = self._count(pass_name)
        hit = self.tiers.get_unit(pass_name, key)
        if hit is None:
            count["unit_misses"] += 1
            return None
        artifact, tier = hit
        count["unit_hits"] += 1
        if tier.kind == "disk":
            count["unit_disk_hits"] += 1
        elif tier.kind == "peer":
            count["unit_peer_hits"] += 1
        return artifact

    def publish(
        self, pass_name: str, key: str, artifact, spill: bool = False
    ) -> None:
        self.tiers.put_unit(pass_name, key, artifact, spill=spill)

    def counters(self, pass_name: str) -> dict[str, int]:
        """The pass's counters — hit/miss always, the per-tier
        attributions only when nonzero (empty when the pass saw no
        keyed units)."""
        count = self.counts.get(pass_name)
        if count is None:
            return {}
        return {
            k: v
            for k, v in count.items()
            if v or k in ("unit_hits", "unit_misses")
        }
