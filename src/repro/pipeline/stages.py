"""The staged compilation pipeline (parse → … → emit).

This module is the former monolithic ``fusion/engine.py`` decomposed
into named, separately-timed passes:

* **parse** — Grafter surface text → resolved IR (skipped for trusted
  ``Program`` inputs).
* **validate** — the language restrictions of paper Fig. 3.
* **lower** — optional TreeFuser pre-pass (``options.lower``): the
  tagged-union twin replaces the program, so lowered compiles get the
  same per-pass timings and unit caching.
* **access-analysis** — per-statement read/write automata for every
  traversal method (paper §3.1–3.2), precomputed so later stages only
  hit warm caches.
* **dependence** — dependence graphs for the entry sequences (§3.3).
* **fusion** — the synthesis *plan*: greedy grouping with the
  contraction-acyclicity check, guard merging, and the worklist
  discovery of every reachable fused sequence (§3.3 step 4, §4).
* **schedule** — topological ordering of each planned unit and assembly
  of the final :class:`FusedProgram` (§3.4).
* **emit** — generated Python modules (the reproduction's analogue of
  Grafter's C++ output), exec'd and ready to run.

Planning (fusion) and body synthesis (schedule) are split: the planner
discovers units and their groups, the scheduler orders bodies. The split
is faithful to the original engine because both greedy grouping and the
scheduler keep group members in program order, so planning a group
before knowing its scheduled position cannot change its member slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.call_automata import AnalysisContext
from repro.analysis.dependence import (
    DependenceGraph,
    Vertex,
    build_dependence_graph,
    build_vertices,
    graph_from_edges,
)
from repro.errors import FusionError
from repro.frontend.parser import parse_program
from repro.fusion.fused_ir import (
    EntryGroup,
    FusedProgram,
    FusedUnit,
    GroupCall,
    GuardedStmt,
    MemberCall,
)
from repro.fusion.grouping import (
    FusionLimits,
    Group,
    conditional_call,
    greedy_group,
)
from repro.fusion.scheduling import schedule
from repro.ir.access import Receiver
from repro.ir.exprs import BinOp
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.pipeline.manager import PassContext, Unit
from repro.pipeline.options import hash_text

SequenceKey = tuple[str, ...]


# ===========================================================================
# cached structures (what the unit store holds for dependence/fusion)
# ===========================================================================


@dataclass
class DepStructure:
    """A dependence graph minus its vertices: the edge list over the
    sequence's positional statement layout (see ``build_vertices``).
    Keyed on the members' *analysis* closures, it replays over current
    statement objects — reusing the O(n²) interference testing while
    never caching a stale statement."""

    vertex_count: int
    edges: list[tuple[int, int]]

    @staticmethod
    def of(graph: DependenceGraph) -> "DepStructure":
        return DepStructure(
            vertex_count=len(graph.vertices),
            edges=[
                (src, dst)
                for src, dsts in sorted(graph.succ.items())
                for dst in sorted(dsts)
            ],
        )


@dataclass
class PlanStructure:
    """A unit plan minus everything body-bound: the dependence edges
    plus greedy grouping's decisions. Replaying it needs no access
    automata at all — vertices are rebuilt summary-free and the group
    plans (slot merging, dispatch) recompute from current statements."""

    dep: DepStructure
    groups: list[tuple[str, list[int]]]  # (receiver key, vertex indices)
    assignment: dict[int, int]

    @staticmethod
    def of(plan: "UnitPlan") -> "PlanStructure":
        return PlanStructure(
            dep=DepStructure.of(plan.graph),
            groups=[
                (g.receiver_key, list(g.vertex_indices))
                for g in plan.groups
            ],
            assignment=dict(plan.assignment),
        )


# ===========================================================================
# fusion planning (the engine's synthesis decisions, minus body order)
# ===========================================================================


@dataclass
class GroupPlan:
    """One fused call site: merged member slots plus, per concrete
    receiver type, the key of the child unit the call dispatches to."""

    leader: int  # smallest vertex index in the group
    vertex_indices: list[int]
    receiver: Receiver
    calls: list[MemberCall]
    dispatch_keys: dict[str, SequenceKey] = field(default_factory=dict)


@dataclass
class UnitPlan:
    """Everything decided about one fused unit before body ordering."""

    key: SequenceKey
    label: str
    members: list[TraversalMethod]
    this_type: str
    graph: DependenceGraph | None = None
    groups: list[Group] = field(default_factory=list)
    assignment: dict[int, int] = field(default_factory=dict)
    group_plans: dict[int, GroupPlan] = field(default_factory=dict)
    # the child sequences this plan's groups dispatch to (deduplicated,
    # discovery order) — how a worklist continues planning without the
    # plan itself recursing, and how a *cached* plan tells the fusion
    # pass which units it still needs
    child_sequences: list[tuple[TraversalMethod, ...]] = field(
        default_factory=list
    )


@dataclass
class EntryPlan:
    """One chunk of the entry sequence with its per-type unit keys."""

    method_names: list[str]
    args_per_member: list[tuple]
    dispatch_keys: dict[str, SequenceKey] = field(default_factory=dict)


class FusionPlanner:
    """Worklist discovery of every reachable fused sequence.

    Mirrors the old ``FusionEngine.fuse_sequence`` recursion: a sequence
    is registered under its key *before* its groups are planned, so
    self-referential sequences terminate as recursive references, and
    memoization on the key keeps the label space finite under the
    cutoffs (paper §4).
    """

    def __init__(
        self,
        program: Program,
        limits: FusionLimits,
        ctx: AnalysisContext,
    ):
        self.program = program
        self.limits = limits
        self.ctx = ctx
        self.graphs: dict[SequenceKey, DependenceGraph] = {}
        # cached DepStructures (from the dependence pass's unit layer):
        # graph_for replays their edges over fresh vertices instead of
        # re-running the O(n²) interference tests
        self.structures: dict[SequenceKey, DepStructure] = {}
        self.plans: dict[SequenceKey, UnitPlan] = {}

    # -- dependence graphs (shared with the dependence pass) ------------

    def graph_for(
        self, members: tuple[TraversalMethod, ...]
    ) -> DependenceGraph:
        key = tuple(m.qualified_name for m in members)
        if key not in self.graphs:
            structure = self.structures.get(key)
            if structure is not None:
                vertices = build_vertices(
                    self.ctx, list(members), with_summaries=True
                )
                # defensive: a structure whose layout disagrees with the
                # current statements (an aliased or corrupt cache entry)
                # must never be replayed — rebuild from scratch instead
                if structure.vertex_count != len(vertices):
                    structure = None
                else:
                    self.graphs[key] = graph_from_edges(
                        vertices, structure.edges
                    )
            if structure is None:
                self.graphs[key] = build_dependence_graph(
                    self.ctx, list(members)
                )
        return self.graphs[key]

    def entry_chunks(self):
        """The entry sequence chunked to ``max_sequence``, each chunk
        with its per-concrete-root-subtype member resolution: a list of
        ``(chunk, [(type_name, members), ...])``. Both the dependence
        pass (graph prewarming) and the fusion pass (entry planning)
        iterate this single resolution."""
        program = self.program
        if program.root_type_name is None or not program.entry:
            raise FusionError("program has no entry sequence to fuse")
        chunks = []
        calls = program.entry
        chunk_size = self.limits.max_sequence
        for start in range(0, len(calls), chunk_size):
            chunk = calls[start : start + chunk_size]
            resolved = [
                (
                    type_name,
                    tuple(
                        program.resolve_method(type_name, c.method_name)
                        for c in chunk
                    ),
                )
                for type_name in program.concrete_subtypes(
                    program.root_type_name
                )
            ]
            chunks.append((chunk, resolved))
        return chunks

    def entry_sequences(self) -> list[tuple[TraversalMethod, ...]]:
        """The concrete member sequences the entry dispatches to: one per
        (entry chunk, concrete root subtype) pair."""
        return [
            members
            for _, resolved in self.entry_chunks()
            for _, members in resolved
        ]

    # -- planning -------------------------------------------------------

    def plan_entry(self) -> list[EntryPlan]:
        entry_plans: list[EntryPlan] = []
        for chunk, resolved in self.entry_chunks():
            entry = EntryPlan(
                method_names=[c.method_name for c in chunk],
                args_per_member=[c.args for c in chunk],
            )
            for type_name, members in resolved:
                entry.dispatch_keys[type_name] = self.plan_sequence(members)
            entry_plans.append(entry)
        return entry_plans

    def plan_sequence(
        self, members: tuple[TraversalMethod, ...]
    ) -> SequenceKey:
        """Plan a sequence and everything it transitively dispatches to.

        Worklist-driven: :meth:`plan_one` plans one sequence *shallowly*
        (children recorded, not recursed into), so the fusion pass can
        run the same discovery unit by unit through the cache; this
        method is the one-call spelling the FusionEngine shim and
        :func:`plan_and_synthesize` use. A sequence is registered under
        its key before its children are planned, so self-referential
        sequences terminate as recursive references, and memoization on
        the key keeps the label space finite under the cutoffs (§4).
        """
        key = tuple(m.qualified_name for m in members)
        worklist = [members]
        while worklist:
            pending = worklist.pop()
            pending_key = tuple(m.qualified_name for m in pending)
            if pending_key in self.plans:
                continue
            plan = self.plan_one(pending)
            self.plans[pending_key] = plan
            worklist.extend(plan.child_sequences)
        return key

    def plan_one(
        self, members: tuple[TraversalMethod, ...]
    ) -> UnitPlan:
        """Plan exactly one sequence: groups, slot merging, and the
        *keys* of the child sequences its groups dispatch to — without
        planning the children (the caller's worklist owns that)."""
        plan = UnitPlan(
            key=tuple(m.qualified_name for m in members),
            label=_label_for(tuple(m.qualified_name for m in members)),
            members=list(members),
            this_type=self.program.common_supertype(
                m.owner for m in members
            ),
        )
        graph = self.graph_for(members)
        plan.graph = graph
        plan.groups, plan.assignment = greedy_group(graph, self.limits)
        self._plan_groups(plan)
        return plan

    def plan_from_structure(
        self,
        members: tuple[TraversalMethod, ...],
        structure: PlanStructure,
    ) -> UnitPlan:
        """Replay a cached :class:`PlanStructure` over the *current*
        program: vertices are rebuilt summary-free from today's method
        bodies (so nothing stale is ever emitted or executed), the
        cached edges/groups/assignment substitute for interference
        testing and greedy grouping, and the group plans (slot merging,
        dispatch resolution) recompute cheaply from the fresh
        statements."""
        key = tuple(m.qualified_name for m in members)
        vertices = build_vertices(
            self.ctx, list(members), with_summaries=False
        )
        if structure.dep.vertex_count != len(vertices):
            # defensive: layout disagreement means the cache entry does
            # not describe these statements — plan from scratch
            return self.plan_one(members)
        plan = UnitPlan(
            key=key,
            label=_label_for(key),
            members=list(members),
            this_type=self.program.common_supertype(
                m.owner for m in members
            ),
        )
        plan.graph = graph_from_edges(vertices, structure.dep.edges)
        plan.groups = [
            Group(receiver_key=receiver, vertex_indices=list(indices))
            for receiver, indices in structure.groups
        ]
        plan.assignment = dict(structure.assignment)
        self._plan_groups(plan)
        return plan

    def _plan_groups(self, plan: UnitPlan) -> None:
        vertex_by_index = {v.index: v for v in plan.graph.vertices}
        for group in plan.groups:
            vertices = [
                vertex_by_index[i] for i in sorted(group.vertex_indices)
            ]
            group_plan = self._plan_group(plan, vertices)
            plan.group_plans[group_plan.leader] = group_plan

    def _plan_group(
        self, plan: UnitPlan, vertices: list[Vertex]
    ) -> GroupPlan:
        """Merge a group's member slots and discover its child sequences.

        Conditional call blocks (TreeFuser mode) of the same member that
        invoke the same method with the same arguments under *mutually
        exclusive* tag guards collapse into one member slot with the
        guards OR-ed — the real TreeFuser's "one function per traversal"
        structure, which keeps the fused sequence from amplifying across
        type variants. Non-exclusive guards fall back to separate slots,
        which is always sound (each slot still fires per its own guard).
        """
        slots: dict[tuple, MemberCall] = {}
        receiver = None
        for vertex in vertices:
            if vertex.call is not None:
                call_stmt = vertex.call
                guard = None
            else:
                conditional = conditional_call(vertex)
                assert conditional is not None
                guard, call_stmt = conditional
            receiver = call_stmt.receiver
            member_call = MemberCall(
                member=vertex.member,
                method_name=call_stmt.method_name,
                args=call_stmt.args,
                guard=guard,
            )
            if guard is None:
                slots[("plain", vertex.index)] = member_call
                continue
            key = (
                "cond",
                vertex.member,
                call_stmt.method_name,
                tuple(str(a) for a in call_stmt.args),
            )
            existing = slots.get(key)
            if existing is None:
                slots[key] = member_call
            elif _guards_exclusive(existing.guard, guard):
                existing.guard = BinOp(
                    op="||", lhs=existing.guard, rhs=guard
                )
            else:
                slots[key + (len(slots),)] = member_call
        calls = list(slots.values())
        assert receiver is not None
        if receiver.is_this:
            static_type = plan.this_type
        else:
            static_type = receiver.child.type_name
        group_plan = GroupPlan(
            leader=vertices[0].index,
            vertex_indices=[v.index for v in vertices],
            receiver=receiver,
            calls=calls,
        )
        seen_children = {
            tuple(m.qualified_name for m in child)
            for child in plan.child_sequences
        }
        for type_name in self.program.concrete_subtypes(static_type):
            target = tuple(
                self.program.resolve_method(type_name, call.method_name)
                for call in calls
            )
            child_key = tuple(m.qualified_name for m in target)
            group_plan.dispatch_keys[type_name] = child_key
            if child_key not in seen_children:
                seen_children.add(child_key)
                plan.child_sequences.append(target)
        return group_plan


def synthesize_fused(
    program: Program,
    planner: FusionPlanner,
    entry_plans: list[EntryPlan],
    units: dict[SequenceKey, FusedUnit] | None = None,
    orders: dict[SequenceKey, list[list[int]]] | None = None,
) -> FusedProgram:
    """Schedule every planned unit and assemble the FusedProgram: each
    body is a topological order of the contracted dependence graph, with
    group leaders replaced by their fused calls (paper §3.4).

    Passing a *units* dict makes synthesis incremental: keys already
    present keep their (already-synthesized) FusedUnit objects, new
    plans get fresh units wired into the same dict — the FusionEngine
    shim uses this to preserve the old engine's identity-stable
    memoization across repeated ``fuse_sequence`` calls. *orders* lets
    the schedule pass hand in per-unit topological orders it already
    computed (and counted) unit by unit.
    """
    if units is None:
        units = {}
    fresh_keys = [key for key in planner.plans if key not in units]
    for key in fresh_keys:
        plan = planner.plans[key]
        units[key] = FusedUnit(
            label=plan.label,
            key=key,
            members=plan.members,
            this_type=plan.this_type,
        )
    for key in fresh_keys:
        plan = planner.plans[key]
        order = (
            orders[key]
            if orders is not None and key in orders
            else schedule(plan.graph, plan.groups, plan.assignment)
        )
        vertex_by_index = {v.index: v for v in plan.graph.vertices}
        body = []
        for unit_indices in order:
            leader = unit_indices[0]
            group_plan = plan.group_plans.get(leader)
            if group_plan is None:
                vertex = vertex_by_index[leader]
                body.append(GuardedStmt(vertex.member, vertex.stmt))
            else:
                group = GroupCall(
                    receiver=group_plan.receiver, calls=group_plan.calls
                )
                for type_name, child_key in group_plan.dispatch_keys.items():
                    group.dispatch[type_name] = units[child_key]
                body.append(group)
        units[key].body = body
    entry_groups: list[EntryGroup] = []
    for entry in entry_plans:
        group = EntryGroup(
            method_names=entry.method_names,
            args_per_member=entry.args_per_member,
        )
        for type_name, child_key in entry.dispatch_keys.items():
            group.dispatch[type_name] = units[child_key]
        entry_groups.append(group)
    return FusedProgram(
        program=program,
        root_type=program.root_type_name,
        entry_groups=entry_groups,
        units=units,
    )


def plan_and_synthesize(
    program: Program,
    limits: FusionLimits | None = None,
    ctx: AnalysisContext | None = None,
) -> FusedProgram:
    """Uncached one-call fusion (what the FusionEngine shim runs)."""
    program.finalize()
    limits = limits if limits is not None else FusionLimits()
    ctx = ctx if ctx is not None else AnalysisContext(program)
    planner = FusionPlanner(program, limits, ctx)
    entry_plans = planner.plan_entry()
    return synthesize_fused(program, planner, entry_plans)


# ===========================================================================
# guard exclusivity (TreeFuser tag dispatch)
# ===========================================================================


def _guards_exclusive(a, b) -> bool:
    """Provably mutually exclusive guards: both are disjunctions of
    equality tests of the *same* data path against constants, with
    disjoint constant sets — the exact shape the TreeFuser lowering
    produces for tag dispatch."""
    atoms_a = _tag_test_atoms(a)
    atoms_b = _tag_test_atoms(b)
    if atoms_a is None or atoms_b is None:
        return False
    path_a, consts_a = atoms_a
    path_b, consts_b = atoms_b
    return path_a == path_b and not (consts_a & consts_b)


def _tag_test_atoms(expr):
    """Decompose ``p == k1 || p == k2 || ...`` into (path text, {k...})."""
    from repro.ir.exprs import Const, DataAccess

    if isinstance(expr, BinOp) and expr.op == "==":
        if isinstance(expr.lhs, DataAccess) and isinstance(expr.rhs, Const):
            return str(expr.lhs.path), {expr.rhs.value}
        return None
    if isinstance(expr, BinOp) and expr.op == "||":
        left = _tag_test_atoms(expr.lhs)
        right = _tag_test_atoms(expr.rhs)
        if left is None or right is None or left[0] != right[0]:
            return None
        return left[0], left[1] | right[1]
    return None


def _label_for(key: SequenceKey) -> str:
    """A readable unique label like ``_fuse__TextBox_computeWidth__...``."""
    short = "__".join(name.replace("::", "_") for name in key)
    if len(short) > 120:
        import hashlib

        digest = hashlib.sha1(short.encode()).hexdigest()[:10]
        short = f"{short[:100]}__{digest}"
    return f"_fuse__{short}"


# ===========================================================================
# the passes
# ===========================================================================


class ParsePass:
    """Grafter surface text → resolved IR; one whole-program unit,
    skipped for trusted ``Program`` inputs."""

    name = "parse"

    def __init__(self):
        self.stats: dict[str, int] = {"skipped": 1}

    def discover(self, pctx: PassContext):
        if pctx.program is not None:
            return []
        return [Unit(kind="program", key=None, label=pctx.name)]

    def compute(self, pctx: PassContext, unit: Unit):
        return parse_program(
            pctx.source_text,
            name=pctx.name,
            pure_impls=pctx.pure_impls,
            mode=pctx.options.language_mode,
            validate=False,
        )

    def install(self, pctx: PassContext, unit: Unit, program) -> None:
        pctx.program = program
        self.stats = {
            "tree_types": len(program.tree_types),
            "methods": sum(1 for _ in program.all_methods()),
        }

    def finish(self, pctx: PassContext) -> dict[str, int]:
        return self.stats


class ValidatePass:
    """The language restrictions of paper Fig. 3 (whole program)."""

    name = "validate"

    def __init__(self):
        self.stats: dict[str, int] = {"skipped": 1}

    def discover(self, pctx: PassContext):
        if pctx.trusted_program:
            pctx.program.finalize()
            return []
        return [Unit(kind="program", key=None, label=pctx.name)]

    def compute(self, pctx: PassContext, unit: Unit):
        validate_program(pctx.program, pctx.options.language_mode)
        return True

    def install(self, pctx: PassContext, unit: Unit, artifact) -> None:
        self.stats = {
            "methods": sum(1 for _ in pctx.program.all_methods())
        }

    def finish(self, pctx: PassContext) -> dict[str, int]:
        return self.stats


class LowerPass:
    """Optional TreeFuser pre-pass: heterogeneous → tagged-union twin.

    Enabled by ``CompileOptions(lower=True)``; the lowered program
    replaces the context's program, so every later pass — and the unit
    index keys they cache under — sees the tagged union, with the same
    per-pass timings and caching the heterogeneous path gets (the
    lowering itself is one whole-program unit keyed on the input's
    content hash, replacing the old side-channel artifact layer).
    """

    name = "lower"
    persist_units = True

    def __init__(self):
        self.stats: dict[str, int] = {"skipped": 1}

    def discover(self, pctx: PassContext):
        if not pctx.options.lower:
            return []
        key = None
        if pctx.units is not None:
            key = hash_text(f"lower\x00{pctx.source_hash}")
        return [Unit(kind="program", key=key, label=pctx.name)]

    def compute(self, pctx: PassContext, unit: Unit):
        from repro.treefuser.lowering import lower_program

        return lower_program(pctx.program)

    def install(self, pctx: PassContext, unit: Unit, lowered) -> None:
        pctx.lowered = lowered
        pctx.program = lowered.program
        pctx.reset_unit_index()
        self.stats = {
            "tags": len(lowered.tags),
            "slots": len(set(lowered.slot_names.values())),
            "methods": sum(1 for _ in lowered.program.all_methods()),
        }

    def finish(self, pctx: PassContext) -> dict[str, int]:
        return self.stats


class AccessAnalysisPass:
    """Per-statement read/write automata (paper §3.1–3.2), one unit per
    traversal method, keyed on the method body + schema."""

    name = "access-analysis"

    def __init__(self):
        self.methods = 0
        self.statements = 0

    def discover(self, pctx: PassContext):
        pctx.analysis = AnalysisContext(pctx.program)
        units = []
        for method in pctx.program.all_methods():
            key = (
                pctx.unit_index.method_key(method, "access")
                if pctx.units is not None
                else None
            )
            units.append(
                Unit(
                    kind="method",
                    key=key,
                    label=method.qualified_name,
                    payload=method,
                )
            )
        return units

    def compute(self, pctx: PassContext, unit: Unit):
        from repro.analysis.accesses import collect_method_accesses

        return collect_method_accesses(pctx.program, unit.payload)

    def install(self, pctx: PassContext, unit: Unit, accesses) -> None:
        pctx.analysis.seed_accesses(unit.payload.qualified_name, accesses)
        self.methods += 1
        self.statements += len(accesses)

    def finish(self, pctx: PassContext) -> dict[str, int]:
        return {"methods": self.methods, "statements": self.statements}


class DependencePass:
    """Dependence graphs for the entry sequences (§3.3), one unit per
    distinct concrete member sequence. The cached artifact is the graph
    *structure* (:class:`DepStructure`) keyed on the members' analysis
    closures (without the fusion limits) — the O(n²) interference
    testing is what memoizes, while vertices always rebuild from the
    current statements."""

    name = "dependence"
    persist_units = True

    def discover(self, pctx: PassContext):
        pctx.planner = FusionPlanner(
            pctx.program, pctx.options.limits, pctx.analysis
        )
        units = []
        seen: set[SequenceKey] = set()
        for members in pctx.planner.entry_sequences():
            name_key = tuple(m.qualified_name for m in members)
            if name_key in seen:
                continue
            seen.add(name_key)
            key = (
                pctx.unit_index.sequence_key(
                    members,
                    "deps",
                    analysis_ctx=pctx.analysis,
                    with_limits=False,
                )
                if pctx.units is not None
                else None
            )
            units.append(
                Unit(
                    kind="sequence",
                    key=key,
                    label="+".join(name_key),
                    payload=members,
                )
            )
        return units

    def compute(self, pctx: PassContext, unit: Unit):
        graph = build_dependence_graph(pctx.analysis, list(unit.payload))
        name_key = tuple(m.qualified_name for m in unit.payload)
        pctx.planner.graphs[name_key] = graph
        return DepStructure.of(graph)

    def install(self, pctx: PassContext, unit: Unit, structure) -> None:
        name_key = tuple(m.qualified_name for m in unit.payload)
        pctx.planner.structures[name_key] = structure

    def finish(self, pctx: PassContext) -> dict[str, int]:
        # install records a structure for hit and miss alike, so the
        # structures are the one complete census (planner.graphs holds
        # only the freshly rebuilt ones)
        structures = pctx.planner.structures
        return {
            "graphs": len(structures),
            "vertices": sum(
                s.vertex_count for s in structures.values()
            ),
            "edges": sum(len(s.edges) for s in structures.values()),
        }


class FusionPass:
    """The synthesis plan (§3.3 step 4, §4), one unit per fused
    sequence. The unit set is *discovered*: planning a sequence names
    the child sequences its groups dispatch to, which ``install``
    enqueues — so a cached plan contributes its children without being
    re-planned, and only dirtied sequences re-run grouping.

    The cached artifact is the :class:`PlanStructure` (edges + greedy
    grouping's decisions), keyed on the members' analysis closures plus
    the fusion limits: replaying it needs neither summaries nor
    interference tests, and an edit that only changes computation
    (a constant, an operator) keeps hitting — the ROADMAP's
    dependence-summary memoization."""

    name = "fusion"
    persist_units = True

    def __init__(self):
        self.pending: set[SequenceKey] = set()
        self._fresh: dict[SequenceKey, UnitPlan] = {}

    def discover(self, pctx: PassContext):
        planner = pctx.planner
        units = []
        entry_plans: list[EntryPlan] = []
        for chunk, resolved in planner.entry_chunks():
            entry = EntryPlan(
                method_names=[c.method_name for c in chunk],
                args_per_member=[c.args for c in chunk],
            )
            for type_name, members in resolved:
                entry.dispatch_keys[type_name] = tuple(
                    m.qualified_name for m in members
                )
                units.extend(self._unit_for(pctx, members))
            entry_plans.append(entry)
        pctx.entry_plans = entry_plans
        return units

    def _unit_for(self, pctx: PassContext, members) -> list[Unit]:
        name_key = tuple(m.qualified_name for m in members)
        if name_key in self.pending or name_key in pctx.planner.plans:
            return []
        self.pending.add(name_key)
        key = (
            pctx.unit_index.sequence_key(
                members, "plan", analysis_ctx=pctx.analysis
            )
            if pctx.units is not None
            else None
        )
        return [
            Unit(
                kind="sequence",
                key=key,
                label=_label_for(name_key),
                payload=members,
            )
        ]

    def compute(self, pctx: PassContext, unit: Unit):
        members = tuple(unit.payload)
        name_key = tuple(m.qualified_name for m in members)
        planner = pctx.planner
        deps_key = None
        if pctx.units is not None:
            # the plan is dirty, but its dependence *edges* may not be
            # (a limits sweep changes the plan key only): replay a
            # cached structure so plan_one skips the interference tests
            deps_key = pctx.unit_index.sequence_key(
                members,
                "deps",
                analysis_ctx=pctx.analysis,
                with_limits=False,
            )
            if name_key not in planner.structures:
                structure = pctx.units.lookup("dependence", deps_key)
                if structure is not None:
                    planner.structures[name_key] = structure
        had_structure = name_key in planner.structures
        plan = planner.plan_one(members)
        self._fresh[name_key] = plan
        if pctx.units is not None and not had_structure:
            # a freshly built graph doubles as a dependence structure
            # for exactly those future sweeps (known structures came
            # *from* the store — don't rewrite their pickles)
            pctx.units.publish(
                "dependence",
                deps_key,
                DepStructure.of(plan.graph),
                spill=True,
            )
        return PlanStructure.of(plan)

    def install(self, pctx: PassContext, unit: Unit, structure) -> None:
        name_key = tuple(m.qualified_name for m in unit.payload)
        plan = self._fresh.pop(name_key, None)
        if plan is None:
            plan = pctx.planner.plan_from_structure(
                tuple(unit.payload), structure
            )
        pctx.planner.plans[plan.key] = plan
        for child in plan.child_sequences:
            for child_unit in self._unit_for(pctx, child):
                pctx.enqueue(child_unit)

    def finish(self, pctx: PassContext) -> dict[str, int]:
        plans = pctx.planner.plans
        return {
            "units": len(plans),
            "groups": sum(len(p.groups) for p in plans.values()),
            "graphs": len(pctx.planner.graphs),
        }


class SchedulePass:
    """Topological ordering of each planned unit (§3.4), one unit per
    plan; assembly of the FusedProgram happens in ``finish``. Ordering
    a contracted graph is cheap relative to planning it, so schedule
    units stay uncached — the win is the per-unit instrumentation."""

    name = "schedule"

    def __init__(self):
        self.orders: dict[SequenceKey, list[list[int]]] = {}

    def discover(self, pctx: PassContext):
        return [
            Unit(kind="sequence", key=None, label=plan.label, payload=plan)
            for plan in pctx.planner.plans.values()
        ]

    def compute(self, pctx: PassContext, unit: Unit):
        plan = unit.payload
        return schedule(plan.graph, plan.groups, plan.assignment)

    def install(self, pctx: PassContext, unit: Unit, order) -> None:
        self.orders[unit.payload.key] = order

    def finish(self, pctx: PassContext) -> dict[str, int]:
        pctx.fused = synthesize_fused(
            pctx.program,
            pctx.planner,
            pctx.entry_plans,
            orders=self.orders,
        )
        stats = pctx.fused.stats()
        return {
            "units": stats["units"],
            "max_width": stats["max_width"],
            "group_calls": stats["group_calls"],
            "body_items": sum(
                len(u.body) for u in pctx.fused.units.values()
            ),
        }


class EmitPass:
    """Generated Python, one unit per module function: every unfused
    method and every fused unit emits (or reloads) its own source text;
    ``finish`` stitches the pieces into the two modules. After an edit
    only the dirtied functions re-emit — the rest come from the unit
    store byte-identical.

    ``CompileOptions(layout='pooled')`` swaps in the pooled backend:
    its pieces cache under an ``emit:pooled`` salt and its modules under
    ``pooled-*`` artifact keys, so the two layouts never alias in any
    storage tier (the unit index's schema hash does not see the layout
    knob — the salt carries it)."""

    name = "emit"
    persist_units = True

    def __init__(self):
        self.skipped = False
        self.pooled = False
        self.method_sources: dict[str, str] = {}
        self.unit_sources: dict[SequenceKey, tuple[str, list[str]]] = {}
        self.fresh_units = 0

    def discover(self, pctx: PassContext):
        if not pctx.options.emit:
            self.skipped = True
            return []
        # lazy import: codegen's package __init__ imports the pipeline
        # for its cached wrappers, so importing it at module scope here
        # would be circular
        from repro.codegen.python_backend import module_methods

        self.pooled = pctx.options.layout == "pooled"
        salt = "emit:pooled" if self.pooled else "emit"
        units = []
        for qualified, method in module_methods(pctx.program).items():
            key = (
                pctx.unit_index.method_key(method, salt)
                if pctx.units is not None
                else None
            )
            units.append(
                Unit(kind="method", key=key, label=qualified, payload=method)
            )
        for seq_key in sorted(pctx.fused.units):
            fused_unit = pctx.fused.units[seq_key]
            key = (
                pctx.unit_index.sequence_key(fused_unit.members, salt)
                if pctx.units is not None
                else None
            )
            units.append(
                Unit(
                    kind="fused-unit",
                    key=key,
                    label=fused_unit.label,
                    payload=fused_unit,
                )
            )
        return units

    def compute(self, pctx: PassContext, unit: Unit):
        if self.pooled:
            from repro.codegen.pooled_backend import (
                emit_pooled_method_source as emit_method_source,
                emit_pooled_unit_source as emit_unit_source,
            )
        else:
            from repro.codegen.python_backend import (
                emit_method_source,
                emit_unit_source,
            )

        self.fresh_units += 1
        if unit.kind == "method":
            return emit_method_source(pctx.program, unit.payload)
        return emit_unit_source(pctx.program, unit.payload)

    def install(self, pctx: PassContext, unit: Unit, artifact) -> None:
        if unit.kind == "method":
            self.method_sources[unit.payload.qualified_name] = artifact
        else:
            self.unit_sources[unit.payload.key] = artifact

    def finish(self, pctx: PassContext) -> dict[str, int]:
        if self.skipped:
            return {"skipped": 1}
        from repro.fusion.fused_ir import print_fused_program
        from repro.pipeline.options import hash_program

        if self.pooled:
            from repro.codegen.pooled_backend import (
                CompiledPooledFused as fused_class,
                CompiledPooledProgram as unfused_class,
                assemble_pooled_fused_module,
                assemble_pooled_module,
            )

            unfused_source = assemble_pooled_module(
                pctx.program, self.method_sources
            )
            # the pooled fused module is self-contained (fallback
            # dispatch tables live in the same bind closure), so no
            # module concatenation happens below
            fused_source = assemble_pooled_fused_module(
                pctx.fused, self.method_sources, self.unit_sources
            )
            full_fused_source = fused_source
            module_prefix = "pooled-"
        else:
            from repro.codegen.python_backend import (
                CompiledFused as fused_class,
                CompiledProgram as unfused_class,
                assemble_fused_module,
                assemble_module,
            )

            unfused_source = assemble_module(
                pctx.program, self.method_sources
            )
            fused_source = assemble_fused_module(
                pctx.fused, self.unit_sources
            )
            full_fused_source = unfused_source + "\n" + fused_source
            module_prefix = ""

        cache = pctx.cache
        # module artifacts are keyed on the *program* hash (not the
        # source-text hash) so text-sourced pipeline compiles and the
        # Program-keyed codegen helpers share one exec'd module per
        # content; unlike unit keys, the program hash includes the
        # pure-impl signature — a module object binds its program (and
        # through it the impls), so impl rebindings must not share one
        program_hash = hash_program(pctx.program)
        unfused_key = (f"{module_prefix}unfused-module", program_hash)
        compiled = cache.get_artifact(unfused_key) if cache else None
        if compiled is None:
            compiled = unfused_class.from_source(
                pctx.program, unfused_source
            )
            if pctx.units is None:
                # plain compiles keep the eager exec (surface bad
                # codegen immediately); unit-assembled modules build
                # their namespace lazily on first run, like an artifact
                # restored from the disk store
                compiled.namespace
            if cache is not None:
                cache.put_artifact(unfused_key, compiled)
        pctx.compiled_unfused = compiled
        pctx.unfused_source = compiled.source

        fused_key = (
            f"{module_prefix}fused-module",
            program_hash,
            hash_text(print_fused_program(pctx.fused)),
        )
        compiled_fused = cache.get_artifact(fused_key) if cache else None
        if compiled_fused is None:
            compiled_fused = fused_class.from_source(
                pctx.fused, full_fused_source
            )
            if pctx.units is None:
                compiled_fused.namespace
            if cache is not None:
                cache.put_artifact(fused_key, compiled_fused)
        pctx.compiled_fused = compiled_fused
        pctx.fused_source = compiled_fused.source
        return {
            "unfused_lines": len(pctx.unfused_source.splitlines()),
            "fused_lines": len(pctx.fused_source.splitlines()),
            "fresh_functions": self.fresh_units,
        }


def default_passes() -> list:
    """The staged flow, in order. A fresh list per compile: pass objects
    carry per-run unit state (sources, orders, pending sets), so
    managers stay independently instrumentable."""
    return [
        ParsePass(),
        ValidatePass(),
        LowerPass(),
        AccessAnalysisPass(),
        DependencePass(),
        FusionPass(),
        SchedulePass(),
        EmitPass(),
    ]
