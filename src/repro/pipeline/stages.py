"""The staged compilation pipeline (parse → … → emit).

This module is the former monolithic ``fusion/engine.py`` decomposed
into named, separately-timed passes:

* **parse** — Grafter surface text → resolved IR (skipped for trusted
  ``Program`` inputs).
* **validate** — the language restrictions of paper Fig. 3.
* **access-analysis** — per-statement read/write automata for every
  traversal method (paper §3.1–3.2), precomputed so later stages only
  hit warm caches.
* **dependence** — dependence graphs for the entry sequences (§3.3).
* **fusion** — the synthesis *plan*: greedy grouping with the
  contraction-acyclicity check, guard merging, and the worklist
  discovery of every reachable fused sequence (§3.3 step 4, §4).
* **schedule** — topological ordering of each planned unit and assembly
  of the final :class:`FusedProgram` (§3.4).
* **emit** — generated Python modules (the reproduction's analogue of
  Grafter's C++ output), exec'd and ready to run.

Planning (fusion) and body synthesis (schedule) are split: the planner
discovers units and their groups, the scheduler orders bodies. The split
is faithful to the original engine because both greedy grouping and the
scheduler keep group members in program order, so planning a group
before knowing its scheduled position cannot change its member slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.call_automata import AnalysisContext
from repro.analysis.dependence import (
    DependenceGraph,
    Vertex,
    build_dependence_graph,
)
from repro.errors import FusionError
from repro.frontend.parser import parse_program
from repro.fusion.fused_ir import (
    EntryGroup,
    FusedProgram,
    FusedUnit,
    GroupCall,
    GuardedStmt,
    MemberCall,
)
from repro.fusion.grouping import (
    FusionLimits,
    Group,
    conditional_call,
    greedy_group,
)
from repro.fusion.scheduling import schedule
from repro.ir.access import Receiver
from repro.ir.exprs import BinOp
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.pipeline.manager import PassContext
from repro.pipeline.options import hash_text

SequenceKey = tuple[str, ...]


# ===========================================================================
# fusion planning (the engine's synthesis decisions, minus body order)
# ===========================================================================


@dataclass
class GroupPlan:
    """One fused call site: merged member slots plus, per concrete
    receiver type, the key of the child unit the call dispatches to."""

    leader: int  # smallest vertex index in the group
    vertex_indices: list[int]
    receiver: Receiver
    calls: list[MemberCall]
    dispatch_keys: dict[str, SequenceKey] = field(default_factory=dict)


@dataclass
class UnitPlan:
    """Everything decided about one fused unit before body ordering."""

    key: SequenceKey
    label: str
    members: list[TraversalMethod]
    this_type: str
    graph: DependenceGraph | None = None
    groups: list[Group] = field(default_factory=list)
    assignment: dict[int, int] = field(default_factory=dict)
    group_plans: dict[int, GroupPlan] = field(default_factory=dict)


@dataclass
class EntryPlan:
    """One chunk of the entry sequence with its per-type unit keys."""

    method_names: list[str]
    args_per_member: list[tuple]
    dispatch_keys: dict[str, SequenceKey] = field(default_factory=dict)


class FusionPlanner:
    """Worklist discovery of every reachable fused sequence.

    Mirrors the old ``FusionEngine.fuse_sequence`` recursion: a sequence
    is registered under its key *before* its groups are planned, so
    self-referential sequences terminate as recursive references, and
    memoization on the key keeps the label space finite under the
    cutoffs (paper §4).
    """

    def __init__(
        self,
        program: Program,
        limits: FusionLimits,
        ctx: AnalysisContext,
    ):
        self.program = program
        self.limits = limits
        self.ctx = ctx
        self.graphs: dict[SequenceKey, DependenceGraph] = {}
        self.plans: dict[SequenceKey, UnitPlan] = {}

    # -- dependence graphs (shared with the dependence pass) ------------

    def graph_for(
        self, members: tuple[TraversalMethod, ...]
    ) -> DependenceGraph:
        key = tuple(m.qualified_name for m in members)
        if key not in self.graphs:
            self.graphs[key] = build_dependence_graph(self.ctx, list(members))
        return self.graphs[key]

    def entry_chunks(self):
        """The entry sequence chunked to ``max_sequence``, each chunk
        with its per-concrete-root-subtype member resolution: a list of
        ``(chunk, [(type_name, members), ...])``. Both the dependence
        pass (graph prewarming) and the fusion pass (entry planning)
        iterate this single resolution."""
        program = self.program
        if program.root_type_name is None or not program.entry:
            raise FusionError("program has no entry sequence to fuse")
        chunks = []
        calls = program.entry
        chunk_size = self.limits.max_sequence
        for start in range(0, len(calls), chunk_size):
            chunk = calls[start : start + chunk_size]
            resolved = [
                (
                    type_name,
                    tuple(
                        program.resolve_method(type_name, c.method_name)
                        for c in chunk
                    ),
                )
                for type_name in program.concrete_subtypes(
                    program.root_type_name
                )
            ]
            chunks.append((chunk, resolved))
        return chunks

    def entry_sequences(self) -> list[tuple[TraversalMethod, ...]]:
        """The concrete member sequences the entry dispatches to: one per
        (entry chunk, concrete root subtype) pair."""
        return [
            members
            for _, resolved in self.entry_chunks()
            for _, members in resolved
        ]

    # -- planning -------------------------------------------------------

    def plan_entry(self) -> list[EntryPlan]:
        entry_plans: list[EntryPlan] = []
        for chunk, resolved in self.entry_chunks():
            entry = EntryPlan(
                method_names=[c.method_name for c in chunk],
                args_per_member=[c.args for c in chunk],
            )
            for type_name, members in resolved:
                entry.dispatch_keys[type_name] = self.plan_sequence(members)
            entry_plans.append(entry)
        return entry_plans

    def plan_sequence(
        self, members: tuple[TraversalMethod, ...]
    ) -> SequenceKey:
        key = tuple(m.qualified_name for m in members)
        if key in self.plans:
            return key
        plan = UnitPlan(
            key=key,
            label=_label_for(key),
            members=list(members),
            this_type=self.program.common_supertype(
                m.owner for m in members
            ),
        )
        # register before planning groups: a group reaching the same
        # sequence becomes a recursive reference to this very unit
        self.plans[key] = plan
        graph = self.graph_for(members)
        plan.graph = graph
        plan.groups, plan.assignment = greedy_group(graph, self.limits)
        vertex_by_index = {v.index: v for v in graph.vertices}
        for group in plan.groups:
            vertices = [
                vertex_by_index[i] for i in sorted(group.vertex_indices)
            ]
            group_plan = self._plan_group(plan, vertices)
            plan.group_plans[group_plan.leader] = group_plan
        return key

    def _plan_group(
        self, plan: UnitPlan, vertices: list[Vertex]
    ) -> GroupPlan:
        """Merge a group's member slots and discover its child sequences.

        Conditional call blocks (TreeFuser mode) of the same member that
        invoke the same method with the same arguments under *mutually
        exclusive* tag guards collapse into one member slot with the
        guards OR-ed — the real TreeFuser's "one function per traversal"
        structure, which keeps the fused sequence from amplifying across
        type variants. Non-exclusive guards fall back to separate slots,
        which is always sound (each slot still fires per its own guard).
        """
        slots: dict[tuple, MemberCall] = {}
        receiver = None
        for vertex in vertices:
            if vertex.call is not None:
                call_stmt = vertex.call
                guard = None
            else:
                conditional = conditional_call(vertex)
                assert conditional is not None
                guard, call_stmt = conditional
            receiver = call_stmt.receiver
            member_call = MemberCall(
                member=vertex.member,
                method_name=call_stmt.method_name,
                args=call_stmt.args,
                guard=guard,
            )
            if guard is None:
                slots[("plain", vertex.index)] = member_call
                continue
            key = (
                "cond",
                vertex.member,
                call_stmt.method_name,
                tuple(str(a) for a in call_stmt.args),
            )
            existing = slots.get(key)
            if existing is None:
                slots[key] = member_call
            elif _guards_exclusive(existing.guard, guard):
                existing.guard = BinOp(
                    op="||", lhs=existing.guard, rhs=guard
                )
            else:
                slots[key + (len(slots),)] = member_call
        calls = list(slots.values())
        assert receiver is not None
        if receiver.is_this:
            static_type = plan.this_type
        else:
            static_type = receiver.child.type_name
        group_plan = GroupPlan(
            leader=vertices[0].index,
            vertex_indices=[v.index for v in vertices],
            receiver=receiver,
            calls=calls,
        )
        for type_name in self.program.concrete_subtypes(static_type):
            target = tuple(
                self.program.resolve_method(type_name, call.method_name)
                for call in calls
            )
            group_plan.dispatch_keys[type_name] = self.plan_sequence(target)
        return group_plan


def synthesize_fused(
    program: Program,
    planner: FusionPlanner,
    entry_plans: list[EntryPlan],
    units: dict[SequenceKey, FusedUnit] | None = None,
) -> FusedProgram:
    """Schedule every planned unit and assemble the FusedProgram: each
    body is a topological order of the contracted dependence graph, with
    group leaders replaced by their fused calls (paper §3.4).

    Passing a *units* dict makes synthesis incremental: keys already
    present keep their (already-synthesized) FusedUnit objects, new
    plans get fresh units wired into the same dict — the FusionEngine
    shim uses this to preserve the old engine's identity-stable
    memoization across repeated ``fuse_sequence`` calls.
    """
    if units is None:
        units = {}
    fresh_keys = [key for key in planner.plans if key not in units]
    for key in fresh_keys:
        plan = planner.plans[key]
        units[key] = FusedUnit(
            label=plan.label,
            key=key,
            members=plan.members,
            this_type=plan.this_type,
        )
    for key in fresh_keys:
        plan = planner.plans[key]
        order = schedule(plan.graph, plan.groups, plan.assignment)
        vertex_by_index = {v.index: v for v in plan.graph.vertices}
        body = []
        for unit_indices in order:
            leader = unit_indices[0]
            group_plan = plan.group_plans.get(leader)
            if group_plan is None:
                vertex = vertex_by_index[leader]
                body.append(GuardedStmt(vertex.member, vertex.stmt))
            else:
                group = GroupCall(
                    receiver=group_plan.receiver, calls=group_plan.calls
                )
                for type_name, child_key in group_plan.dispatch_keys.items():
                    group.dispatch[type_name] = units[child_key]
                body.append(group)
        units[key].body = body
    entry_groups: list[EntryGroup] = []
    for entry in entry_plans:
        group = EntryGroup(
            method_names=entry.method_names,
            args_per_member=entry.args_per_member,
        )
        for type_name, child_key in entry.dispatch_keys.items():
            group.dispatch[type_name] = units[child_key]
        entry_groups.append(group)
    return FusedProgram(
        program=program,
        root_type=program.root_type_name,
        entry_groups=entry_groups,
        units=units,
    )


def plan_and_synthesize(
    program: Program,
    limits: FusionLimits | None = None,
    ctx: AnalysisContext | None = None,
) -> FusedProgram:
    """Uncached one-call fusion (what the FusionEngine shim runs)."""
    program.finalize()
    limits = limits if limits is not None else FusionLimits()
    ctx = ctx if ctx is not None else AnalysisContext(program)
    planner = FusionPlanner(program, limits, ctx)
    entry_plans = planner.plan_entry()
    return synthesize_fused(program, planner, entry_plans)


# ===========================================================================
# guard exclusivity (TreeFuser tag dispatch)
# ===========================================================================


def _guards_exclusive(a, b) -> bool:
    """Provably mutually exclusive guards: both are disjunctions of
    equality tests of the *same* data path against constants, with
    disjoint constant sets — the exact shape the TreeFuser lowering
    produces for tag dispatch."""
    atoms_a = _tag_test_atoms(a)
    atoms_b = _tag_test_atoms(b)
    if atoms_a is None or atoms_b is None:
        return False
    path_a, consts_a = atoms_a
    path_b, consts_b = atoms_b
    return path_a == path_b and not (consts_a & consts_b)


def _tag_test_atoms(expr):
    """Decompose ``p == k1 || p == k2 || ...`` into (path text, {k...})."""
    from repro.ir.exprs import Const, DataAccess

    if isinstance(expr, BinOp) and expr.op == "==":
        if isinstance(expr.lhs, DataAccess) and isinstance(expr.rhs, Const):
            return str(expr.lhs.path), {expr.rhs.value}
        return None
    if isinstance(expr, BinOp) and expr.op == "||":
        left = _tag_test_atoms(expr.lhs)
        right = _tag_test_atoms(expr.rhs)
        if left is None or right is None or left[0] != right[0]:
            return None
        return left[0], left[1] | right[1]
    return None


def _label_for(key: SequenceKey) -> str:
    """A readable unique label like ``_fuse__TextBox_computeWidth__...``."""
    short = "__".join(name.replace("::", "_") for name in key)
    if len(short) > 120:
        import hashlib

        digest = hashlib.sha1(short.encode()).hexdigest()[:10]
        short = f"{short[:100]}__{digest}"
    return f"_fuse__{short}"


# ===========================================================================
# the passes
# ===========================================================================


class ParsePass:
    name = "parse"

    def run(self, pctx: PassContext) -> dict[str, int]:
        if pctx.program is not None:
            return {"skipped": 1}
        pctx.program = parse_program(
            pctx.source_text,
            name=pctx.name,
            pure_impls=pctx.pure_impls,
            mode=pctx.options.language_mode,
            validate=False,
        )
        return {
            "tree_types": len(pctx.program.tree_types),
            "methods": sum(1 for _ in pctx.program.all_methods()),
        }


class ValidatePass:
    name = "validate"

    def run(self, pctx: PassContext) -> dict[str, int]:
        if pctx.trusted_program:
            pctx.program.finalize()
            return {"skipped": 1}
        validate_program(pctx.program, pctx.options.language_mode)
        return {"methods": sum(1 for _ in pctx.program.all_methods())}


class AccessAnalysisPass:
    name = "access-analysis"

    def run(self, pctx: PassContext) -> dict[str, int]:
        pctx.analysis = AnalysisContext(pctx.program)
        methods = 0
        statements = 0
        for method in pctx.program.all_methods():
            methods += 1
            statements += len(pctx.analysis.method_accesses(method))
        return {"methods": methods, "statements": statements}


class DependencePass:
    name = "dependence"

    def run(self, pctx: PassContext) -> dict[str, int]:
        pctx.planner = FusionPlanner(
            pctx.program, pctx.options.limits, pctx.analysis
        )
        for members in pctx.planner.entry_sequences():
            pctx.planner.graph_for(members)
        graphs = pctx.planner.graphs
        return {
            "graphs": len(graphs),
            "vertices": sum(len(g.vertices) for g in graphs.values()),
            "edges": sum(
                len(dsts)
                for g in graphs.values()
                for dsts in g.succ.values()
            ),
        }


class FusionPass:
    name = "fusion"

    def run(self, pctx: PassContext) -> dict[str, int]:
        pctx.entry_plans = pctx.planner.plan_entry()
        plans = pctx.planner.plans
        return {
            "units": len(plans),
            "groups": sum(len(p.groups) for p in plans.values()),
            "graphs": len(pctx.planner.graphs),
        }


class SchedulePass:
    name = "schedule"

    def run(self, pctx: PassContext) -> dict[str, int]:
        pctx.fused = synthesize_fused(
            pctx.program, pctx.planner, pctx.entry_plans
        )
        stats = pctx.fused.stats()
        return {
            "units": stats["units"],
            "max_width": stats["max_width"],
            "group_calls": stats["group_calls"],
            "body_items": sum(
                len(u.body) for u in pctx.fused.units.values()
            ),
        }


class EmitPass:
    name = "emit"

    def run(self, pctx: PassContext) -> dict[str, int]:
        if not pctx.options.emit:
            return {"skipped": 1}
        # lazy import: codegen's package __init__ imports the pipeline
        # for its cached wrappers, so importing it at module scope here
        # would be circular
        from repro.codegen.python_backend import CompiledFused, CompiledProgram
        from repro.fusion.fused_ir import print_fused_program
        from repro.pipeline.options import hash_program

        cache = pctx.cache
        # artifacts are keyed on the *program* hash (not the source-text
        # hash) so text-sourced pipeline compiles and the Program-keyed
        # codegen helpers share one exec'd module per content
        program_hash = hash_program(pctx.program)
        unfused_key = ("unfused-module", program_hash)
        compiled = cache.artifact(unfused_key) if cache else None
        if compiled is None:
            compiled = CompiledProgram(pctx.program)
            if cache is not None:
                cache.store_artifact(unfused_key, compiled)
        pctx.compiled_unfused = compiled
        pctx.unfused_source = compiled.source

        fused_key = (
            "fused-module",
            program_hash,
            hash_text(print_fused_program(pctx.fused)),
        )
        compiled_fused = cache.artifact(fused_key) if cache else None
        if compiled_fused is None:
            compiled_fused = CompiledFused(pctx.fused)
            if cache is not None:
                cache.store_artifact(fused_key, compiled_fused)
        pctx.compiled_fused = compiled_fused
        pctx.fused_source = compiled_fused.source
        return {
            "unfused_lines": len(pctx.unfused_source.splitlines()),
            "fused_lines": len(pctx.fused_source.splitlines()),
        }


def default_passes() -> list:
    """The staged flow, in order. Pass classes are stateless; a fresh
    list keeps managers independently instrumentable."""
    return [
        ParsePass(),
        ValidatePass(),
        AccessAnalysisPass(),
        DependencePass(),
        FusionPass(),
        SchedulePass(),
        EmitPass(),
    ]
