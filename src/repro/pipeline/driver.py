"""The single compile entry point: ``repro.pipeline.compile()``.

Accepts either Grafter source text or an already-built
:class:`~repro.ir.program.Program` (workload modules hand those out),
hashes the content plus the options, consults the
:class:`~repro.pipeline.cache.CompileCache`, and on a miss runs the
staged pass pipeline. The result carries the fused program, the
generated Python modules (when ``options.emit``), and per-pass
wall-time / IR-size instrumentation for the ``--timings`` report.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Union

from repro.ir.program import Program
from repro.pipeline.cache import GLOBAL_CACHE, CompileCache
from repro.pipeline.manager import PassContext, PassManager
from repro.pipeline.options import (
    CompileOptions,
    CompileResult,
    PassTiming,
    hash_program,
    hash_source,
)
from repro.pipeline.stages import default_passes


def compile(
    source: Union[str, Program],
    *,
    options: Optional[CompileOptions] = None,
    name: str = "program",
    cache: Optional[CompileCache] = GLOBAL_CACHE,
    pure_impls: Optional[dict] = None,
) -> CompileResult:
    """Compile Grafter source (or a Program) through the staged pipeline.

    A second call with the same content and options is served from the
    cache: the returned result is the cached record with ``cache_hit``
    set, ``timings`` reduced to the lookup cost, and the cold per-pass
    timings preserved under ``cold_timings``. An ``emit=False`` request
    is also served from a cached ``emit=True`` result of the same source
    (a strict superset — the extra emitted fields just come along). Pass
    ``cache=None`` (or ``options.use_cache=False``) to force a cold
    compile.
    """
    options = options if options is not None else CompileOptions()
    start = time.perf_counter()
    if isinstance(source, Program):
        program: Optional[Program] = source
        source_text = None
        source_hash = hash_program(source)
        name = source.name
    else:
        program = None
        source_text = source
        source_hash = hash_source(source, pure_impls)
    key = (source_hash, options.options_hash())

    use_cache = cache is not None and options.use_cache
    if use_cache:
        hit = cache.lookup(key)
        if hit is None and not options.emit:
            # an emit=True result for the same source strictly contains
            # the emit=False one — serve it rather than re-fusing
            emitting = replace(options, emit=True)
            hit = cache.lookup((source_hash, emitting.options_hash()))
        if hit is not None:
            lookup = PassTiming(
                name="cache-lookup",
                seconds=time.perf_counter() - start,
                detail={"hit": 1},
            )
            return replace(
                hit,
                cache_hit=True,
                timings=[lookup],
                cold_timings=hit.timings,
            )

    pctx = PassContext(
        options,
        source_text=source_text,
        program=program,
        name=name,
        pure_impls=pure_impls,
        source_hash=source_hash,
        cache=cache if use_cache else None,
    )
    manager = PassManager(default_passes())
    timings = manager.run(pctx)
    result = CompileResult(
        source_hash=source_hash,
        options_hash=options.options_hash(),
        options=options,
        program=pctx.program,
        fused=pctx.fused,
        timings=timings,
        cache_hit=False,
        unfused_source=pctx.unfused_source,
        fused_source=pctx.fused_source,
        compiled_unfused=pctx.compiled_unfused,
        compiled_fused=pctx.compiled_fused,
    )
    if use_cache:
        cache.store(key, result)
    return result
