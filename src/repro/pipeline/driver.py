"""The single compile entry point: ``repro.pipeline.compile()``.

Accepts either Grafter source text or an already-built
:class:`~repro.ir.program.Program` (workload modules hand those out),
hashes the content plus the options, consults the compile's
:class:`~repro.storage.TieredStore` — memory tier, then the
``options.cache_dir`` disk store, then any ``options.peers`` — and on
a miss runs the staged pass pipeline. The result carries the fused
program, the generated Python modules (when ``options.emit``), and
per-pass wall-time / IR-size instrumentation for the ``--timings``
report.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Union

from repro import obs
from repro._compat import warn_legacy
from repro.ir.program import Program
from repro.pipeline.cache import GLOBAL_CACHE
from repro.pipeline.manager import PassContext, PassManager
from repro.pipeline.options import (
    CompileOptions,
    CompileResult,
    PassTiming,
    hash_program,
    hash_source,
)
from repro.pipeline.stages import default_passes
from repro.storage import MemoryTier, ResultKey, TieredStore


def compile(
    source: Union[str, Program, "Workload"],
    *,
    options: Optional[CompileOptions] = None,
    name: str = "program",
    cache: Optional[MemoryTier] = GLOBAL_CACHE,
    pure_impls: Optional[dict] = None,
    incremental: bool = True,
    reuse_result: bool = True,
) -> CompileResult:
    """Compile a Workload, Grafter source, or Program through the
    staged pipeline.

    A second call with the same content and options is served from the
    cache: the returned result is the cached record with ``cache_hit``
    set, ``timings`` reduced to the lookup cost, and the cold per-pass
    timings preserved under ``cold_timings``. An ``emit=False`` request
    is also served from a cached ``emit=True`` result of the same source
    (a strict superset — the extra emitted fields just come along). To
    force a cold compile use ``options.use_cache=False`` (disables every
    storage tier); ``cache=None`` alone skips only the memory layer — a
    configured ``options.cache_dir`` store or peer can still serve the
    result.

    Storage is tiered (:mod:`repro.storage`): with ``options.cache_dir``
    set, a memory miss falls through to the on-disk
    :class:`~repro.storage.DiskTier` rooted there, and with
    ``options.peers`` set, a disk miss falls through to each read-only
    peer (a second store root or a remote ``repro serve``). Hits are
    promoted upward — a disk hit into memory, a peer hit onto the local
    disk *and* into memory — and cold results are published to every
    writable tier (unless ``options.persist`` is off) so *other
    processes and hosts* start warm.

    ``incremental`` (default on) keys every pass's work on *compilation
    units* (methods, fused sequences, emitted module functions — see
    :mod:`repro.pipeline.units`): when the whole-result key misses —
    a first-ever compile, or a workload edited since the last one —
    unchanged units load from the unit layer of the same tiers and
    only dirtied units recompute, with per-pass hit/miss counts in the
    timing details (``CompileResult.unit_report``). The unit layer obeys
    the same gates as results: ``use_cache=False`` disables it, the
    memory side lives in *cache*, the durable sides in ``cache_dir``
    and ``peers``.

    ``reuse_result=False`` skips the whole-result lookup (every tier)
    while keeping the unit layer — the pipeline demonstrably re-runs
    per unit, which is what ``Session.recompile`` and ``repro compile
    --explain`` want; the fresh result is still stored.
    """
    # Workload bundles carry their own impls and name; unpack them
    # first so the rest of the driver sees the two primitive forms.
    # Lazy import: repro.api sits above the pipeline.
    from repro.api.workload import Workload

    if isinstance(source, Workload):
        if pure_impls is not None:
            raise TypeError(
                "pass impls inside the Workload, not as pure_impls"
            )
        name = source.name
        pure_impls = (
            dict(source.pure_impls) if source.pure_impls else None
        )
        source = source.source
    elif pure_impls is not None:
        # the pre-Workload spelling: loose impls threaded alongside the
        # source. Kept as a shim (internal plumbing suppresses the
        # warning; see repro._compat).
        warn_legacy(
            "pipeline.compile(source, pure_impls=...) is deprecated; "
            "bundle the program and its impls in a repro.Workload"
        )
    options = options if options is not None else CompileOptions()
    # fail a typo'd layout before any hashing or tier traffic — the
    # knob participates in every cache key, so an unknown name would
    # otherwise pollute the stores before the emit pass rejects it
    from repro.layout import layout_for

    layout_for(options.layout)
    # one span per compile: the trace root when this is the outermost
    # recorded operation (a bare pipeline.compile() call), otherwise a
    # child of session.compile / exec.group. options.trace=True forces
    # recording for this compile even with the process tracer off.
    with obs.span(
        "pipeline.compile",
        force=bool(options.trace),
        workload=name,
        layout=options.layout,
    ) as span:
        start = time.perf_counter()
        if isinstance(source, Program):
            program: Optional[Program] = source
            source_text = None
            source_hash = hash_program(source)
            name = source.name
        else:
            program = None
            source_text = source
            source_hash = hash_source(source, pure_impls)
        key = ResultKey.of(source_hash, options)
        span.set(source_hash=source_hash[:12])

        store = _tiers_for(cache, options)
        if store is not None and reuse_result:
            hit = store.get_result(key)
            if hit is None and not options.emit:
                # an emit=True result for the same source strictly
                # contains the emit=False one — serve it over re-fusing
                emitting = replace(options, emit=True)
                hit = store.get_result(
                    ResultKey.of(source_hash, emitting)
                )
            if hit is not None:
                span.set(cache_hit=True)
                lookup = PassTiming(
                    name="cache-lookup",
                    seconds=time.perf_counter() - start,
                    detail={"hit": 1},
                )
                return replace(
                    hit,
                    cache_hit=True,
                    timings=[lookup],
                    cold_timings=hit.timings,
                )

        units = None
        if incremental and store is not None:
            from repro.pipeline.units import UnitArtifacts

            units = UnitArtifacts(tiers=store)
        pctx = PassContext(
            options,
            source_text=source_text,
            program=program,
            name=name,
            pure_impls=pure_impls,
            source_hash=source_hash,
            cache=cache
            if (cache is not None and options.use_cache)
            else None,
            units=units,
        )
        manager = PassManager(default_passes())
        timings = manager.run(pctx)
        span.set(cache_hit=False, passes=len(timings))
        result = CompileResult(
            source_hash=source_hash,
            options_hash=options.options_hash(),
            options=options,
            program=pctx.program,
            fused=pctx.fused,
            timings=timings,
            cache_hit=False,
            unfused_source=pctx.unfused_source,
            fused_source=pctx.fused_source,
            compiled_unfused=pctx.compiled_unfused,
            compiled_fused=pctx.compiled_fused,
            lowered=pctx.lowered,
        )
        if store is not None:
            store.put_result(key, result)
        return result


def _tiers_for(
    cache: Optional[MemoryTier], options: CompileOptions
) -> Optional[TieredStore]:
    """The storage stack for one compile, in lookup order: the memory
    tier (*cache*), the ``cache_dir`` disk store, then each peer.
    ``use_cache=False`` disables everything. Budget knobs resize only
    tiers the caller plausibly administers: ``memory_budget`` applies
    to a *privately passed* cache, never the process-shared
    :data:`GLOBAL_CACHE` (one caller's small budget must not evict
    everyone else's results — ``Session(memory_budget=...)`` builds
    its own tier for exactly this reason); ``disk_budget`` is a
    per-store setting on the directory the same options name (the
    registry shares one instance per directory, so the most recent
    setting wins — administering a store means administering its
    budget). Returns ``None`` when no tier is configured."""
    if not options.use_cache:
        return None
    tiers = []
    if cache is not None:
        if (
            options.memory_budget is not None
            and cache is not GLOBAL_CACHE
        ):
            cache.max_bytes = options.memory_budget
        tiers.append(cache)
    if options.cache_dir is not None:
        # lazy imports keep pipeline imports light for cache-only use
        from repro.storage.disk import disk_tier_for

        disk = disk_tier_for(options.cache_dir)
        if options.disk_budget is not None:
            disk.max_bytes = options.disk_budget
        tiers.append(disk)
    for target in options.peers:
        from repro.storage.peer import peer_tier_for

        tiers.append(peer_tier_for(target))
    if not tiers:
        return None
    return TieredStore(tiers, persist=options.persist)
