"""The single compile entry point: ``repro.pipeline.compile()``.

Accepts either Grafter source text or an already-built
:class:`~repro.ir.program.Program` (workload modules hand those out),
hashes the content plus the options, consults the
:class:`~repro.pipeline.cache.CompileCache`, and on a miss runs the
staged pass pipeline. The result carries the fused program, the
generated Python modules (when ``options.emit``), and per-pass
wall-time / IR-size instrumentation for the ``--timings`` report.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Union

from repro._compat import warn_legacy
from repro.ir.program import Program
from repro.pipeline.cache import GLOBAL_CACHE, CompileCache
from repro.pipeline.manager import PassContext, PassManager
from repro.pipeline.options import (
    CompileOptions,
    CompileResult,
    PassTiming,
    hash_program,
    hash_source,
)
from repro.pipeline.stages import default_passes


def compile(
    source: Union[str, Program, "Workload"],
    *,
    options: Optional[CompileOptions] = None,
    name: str = "program",
    cache: Optional[CompileCache] = GLOBAL_CACHE,
    pure_impls: Optional[dict] = None,
    incremental: bool = True,
    reuse_result: bool = True,
) -> CompileResult:
    """Compile a Workload, Grafter source, or Program through the
    staged pipeline.

    A second call with the same content and options is served from the
    cache: the returned result is the cached record with ``cache_hit``
    set, ``timings`` reduced to the lookup cost, and the cold per-pass
    timings preserved under ``cold_timings``. An ``emit=False`` request
    is also served from a cached ``emit=True`` result of the same source
    (a strict superset — the extra emitted fields just come along). To
    force a cold compile use ``options.use_cache=False`` (disables the
    memory *and* disk layers); ``cache=None`` alone skips only the
    memory layer — a configured ``options.cache_dir`` store can still
    serve the result.

    With ``options.cache_dir`` set, a memory miss falls through to the
    on-disk :class:`~repro.service.store.ArtifactStore` rooted there
    (disk hits are adopted into the memory cache), and cold results are
    spilled (unless ``options.persist`` is off) so *other processes*
    start warm.

    ``incremental`` (default on) keys every pass's work on *compilation
    units* (methods, fused sequences, emitted module functions — see
    :mod:`repro.pipeline.units`): when the whole-result key misses —
    a first-ever compile, or a workload edited since the last one —
    unchanged units load from the unit layer of the same caches and
    only dirtied units recompute, with per-pass hit/miss counts in the
    timing details (``CompileResult.unit_report``). The unit layer obeys
    the same gates as results: ``use_cache=False`` disables it, the
    memory side lives in *cache*, the disk side in ``cache_dir``.

    ``reuse_result=False`` skips the whole-result lookup (memory and
    disk) while keeping the unit layer — the pipeline demonstrably
    re-runs per unit, which is what ``Session.recompile`` and
    ``repro compile --explain`` want; the fresh result is still stored.
    """
    # Workload bundles carry their own impls and name; unpack them
    # first so the rest of the driver sees the two primitive forms.
    # Lazy import: repro.api sits above the pipeline.
    from repro.api.workload import Workload

    if isinstance(source, Workload):
        if pure_impls is not None:
            raise TypeError(
                "pass impls inside the Workload, not as pure_impls"
            )
        name = source.name
        pure_impls = (
            dict(source.pure_impls) if source.pure_impls else None
        )
        source = source.source
    elif pure_impls is not None:
        # the pre-Workload spelling: loose impls threaded alongside the
        # source. Kept as a shim (internal plumbing suppresses the
        # warning; see repro._compat).
        warn_legacy(
            "pipeline.compile(source, pure_impls=...) is deprecated; "
            "bundle the program and its impls in a repro.Workload"
        )
    options = options if options is not None else CompileOptions()
    start = time.perf_counter()
    if isinstance(source, Program):
        program: Optional[Program] = source
        source_text = None
        source_hash = hash_program(source)
        name = source.name
    else:
        program = None
        source_text = source
        source_hash = hash_source(source, pure_impls)
    key = (source_hash, options.options_hash())
    disk_key = (source_hash, options.output_hash())

    use_cache = cache is not None and options.use_cache
    disk = None
    if options.use_cache and options.cache_dir is not None:
        # lazy import: repro.service sits above the pipeline
        from repro.service.store import store_for

        disk = store_for(options.cache_dir)
    if reuse_result and (use_cache or disk is not None):
        hit = _lookup(cache, disk, key, disk_key)
        if hit is None and not options.emit:
            # an emit=True result for the same source strictly contains
            # the emit=False one — serve it rather than re-fusing
            emitting = replace(options, emit=True)
            hit = _lookup(
                cache,
                disk,
                (source_hash, emitting.options_hash()),
                (source_hash, emitting.output_hash()),
            )
        if hit is not None:
            lookup = PassTiming(
                name="cache-lookup",
                seconds=time.perf_counter() - start,
                detail={"hit": 1},
            )
            return replace(
                hit,
                cache_hit=True,
                timings=[lookup],
                cold_timings=hit.timings,
            )

    units = None
    if incremental and options.use_cache and (cache is not None or disk is not None):
        from repro.pipeline.units import UnitArtifacts

        units = UnitArtifacts(
            cache=cache, store=disk, persist=options.persist
        )
    pctx = PassContext(
        options,
        source_text=source_text,
        program=program,
        name=name,
        pure_impls=pure_impls,
        source_hash=source_hash,
        cache=cache if use_cache else None,
        units=units,
    )
    manager = PassManager(default_passes())
    timings = manager.run(pctx)
    result = CompileResult(
        source_hash=source_hash,
        options_hash=options.options_hash(),
        options=options,
        program=pctx.program,
        fused=pctx.fused,
        timings=timings,
        cache_hit=False,
        unfused_source=pctx.unfused_source,
        fused_source=pctx.fused_source,
        compiled_unfused=pctx.compiled_unfused,
        compiled_fused=pctx.compiled_fused,
        lowered=pctx.lowered,
    )
    if use_cache:
        cache.store(key, result)
    if disk is not None and options.persist:
        disk.spill(result)
    return result


def _lookup(cache, disk, key, disk_key):
    """Memory layer first, then the ``options.cache_dir`` store (whose
    key space excludes caching knobs — ``disk_key`` carries the output
    options hash); disk hits are adopted into the memory cache for the
    rest of the process."""
    hit = cache.lookup(key) if cache is not None else None
    if hit is None and disk is not None:
        hit = disk.load(*disk_key)
        if hit is not None and cache is not None:
            cache.insert(key, hit, from_disk=True)
    return hit
