"""Compile options, per-pass timings, and the compile result record.

:class:`CompileOptions` is the *complete* set of knobs that can change
what the pipeline produces — it hashes to a stable string so the
:class:`~repro.pipeline.cache.CompileCache` can key results on
``(source hash, options hash)``. Anything cosmetic (the module name, the
cache instance) deliberately stays out of it.
"""

from __future__ import annotations

import hashlib
import os
import sys
from dataclasses import dataclass, field, fields
from typing import Optional

from repro.fusion.grouping import FusionLimits
from repro.ir.validate import LanguageMode


def hash_text(text: str) -> str:
    """Content hash used throughout the pipeline (hex sha256)."""
    return hashlib.sha256(text.encode()).hexdigest()


def impl_ref(fn) -> str:
    """Cache-key reference for one bound pure-function callable.

    Importable module-level functions get a ``module:qualname``
    reference — the same identity notion pickle uses, so it is stable
    across processes and lets the on-disk artifact store serve compiles
    of impl-bound programs to other processes. Anything else (lambdas,
    closures, bound methods, shadowed definitions) falls back to
    ``id()`` — which is safe for the in-memory cache because every live
    cache entry holds a strong reference to its impls (through the
    cached program): while an entry exists its impls' ids cannot be
    reused, so an id match implies the same object. ``id()`` refs are
    *not* stable across processes; :func:`impls_portable` gates disk
    spilling on their absence.
    """
    module_name = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if module_name and qualname and "<" not in qualname:
        target = sys.modules.get(module_name)
        for part in qualname.split("."):
            target = getattr(target, part, None)
            if target is None:
                break
        if target is fn:
            return f"{module_name}:{qualname}"
    return f"id:{id(fn)}"


def _impl_signature(impls: dict) -> str:
    """Signature of bound pure-function callables (see :func:`impl_ref`).

    The callables are baked into the compiled program (the interpreter
    and the generated modules call them through it), so two compiles of
    identical text with *different* impl objects must not share a cache
    entry.
    """
    return ",".join(
        f"{name}={impl_ref(fn)}" for name, fn in sorted(impls.items())
    )


def impls_portable(program) -> bool:
    """True when every bound pure-function impl has a cross-process
    stable reference (module-level function) — the precondition for
    spilling a compile result to the on-disk artifact store."""
    return all(
        func.impl is None or not impl_ref(func.impl).startswith("id:")
        for func in program.pure_functions.values()
    )


def hash_program(program) -> str:
    """Content hash of an in-memory program: the pretty-printer is the
    canonical form (it round-trips, see tests/frontend), so two
    structurally identical programs hash alike regardless of object
    identity. Bound pure-function impls are part of the key (see
    :func:`_impl_signature`)."""
    from repro.ir.printer import print_program

    program.finalize()
    impls = {
        name: func.impl
        for name, func in program.pure_functions.items()
        if func.impl is not None
    }
    return hash_text(
        f"{print_program(program)}\x00impls={_impl_signature(impls)}"
    )


def hash_source(source: str, pure_impls: Optional[dict] = None) -> str:
    """Content hash of source text plus the identity of any bound
    pure-function impls (see :func:`_impl_signature`)."""
    return hash_text(
        f"{source}\x00impls={_impl_signature(pure_impls or {})}"
    )


@dataclass(frozen=True)
class CompileOptions:
    """Everything that affects compilation output.

    * ``mode`` — language mode: ``"grafter"`` (default) rejects
      conditional traversal calls, ``"treefuser"`` allows them.
    * ``limits`` — fusion termination cutoffs (paper §4).
    * ``lower`` — run the TreeFuser lowering as a pre-pass: the program
      is rewritten to its homogeneous tagged-union twin before analysis
      and fusion (``CompileResult.lowered`` carries the tag/slot
      metadata tree converters need).
    * ``emit`` — also emit + exec the generated Python modules; with
      ``False`` the pipeline stops after fusion (cheaper when only the
      :class:`FusedProgram` is needed, e.g. for the interpreter).
    * ``use_cache`` — consult/populate the compile cache (every storage
      tier; ``False`` forces a fully cold compile).
    * ``cache_dir`` — root of an on-disk artifact store
      (:class:`repro.storage.DiskTier`): a memory-cache miss falls
      through to disk, and cold compiles spill their results so a
      later process skips the whole pipeline.
    * ``persist`` — allow spilling results to the disk store; with
      ``False`` an attached ``cache_dir`` is read-only.
    * ``peers`` — read-only warm sources consulted after memory and
      disk (:class:`repro.storage.PeerTier`): each is a second store
      root or the base URL of a running ``repro serve``; hits are
      promoted into the local tiers. Order is lookup order.
    * ``layout`` — the tree representation generated code runs against:
      ``"object"`` (default) walks the ``Node`` object graph,
      ``"pooled"`` compiles index-based traversals over a
      :class:`~repro.layout.ForestPool` (structure-of-arrays columns,
      children as integer indices). The two backends emit different
      module text, so the knob is output-affecting: pooled and
      object-graph artifacts content-address separately in every
      storage tier — switching layouts can never cross-hit a cached
      artifact.
    * ``trace`` — span-recording knob for this compile: ``None``
      (default) follows the process tracer (``repro.obs.enable()`` /
      ``REPRO_TRACE``); ``True`` force-records this compile's spans
      even with the tracer off. Pure observability — it never changes
      what the pipeline produces, so like the storage knobs it stays
      out of the on-disk/output key.
    * ``memory_budget`` / ``disk_budget`` — byte budgets for the tiers
      a compile under these options administers: ``memory_budget``
      resizes a *privately owned* memory tier (``Session`` builds one;
      the process-shared ``GLOBAL_CACHE`` is never resized by it) and
      ``disk_budget`` is a per-store setting on the ``cache_dir``
      directory (one shared instance per directory — the most recent
      setting wins). ``None`` keeps each tier's default.

    ``peers`` and the budgets are storage topology, not semantics: like
    the other caching knobs they participate in ``canonical()`` (so no
    field can silently alias) but stay out of the on-disk/output key —
    two hosts with different peer lists must share one store key space.
    """

    mode: str = "grafter"
    limits: FusionLimits = field(default_factory=FusionLimits)
    lower: bool = False
    emit: bool = True
    use_cache: bool = True
    cache_dir: Optional[str] = None
    persist: bool = True
    peers: tuple[str, ...] = ()
    memory_budget: Optional[int] = None
    disk_budget: Optional[int] = None
    layout: str = "object"
    trace: Optional[bool] = None

    @property
    def language_mode(self) -> LanguageMode:
        return (
            LanguageMode.TREEFUSER
            if self.mode == "treefuser"
            else LanguageMode.GRAFTER
        )

    # fields that do not change what the pipeline *produces* — only how
    # results are cached/persisted. They participate in canonical() (so
    # no field can ever silently alias) but are excluded from the
    # on-disk store key: a persist=False reader must hit entries a
    # persist=True writer left, and a store directory must survive
    # being moved/renamed/mounted elsewhere.
    NON_OUTPUT_FIELDS = frozenset(
        {
            "use_cache",
            "cache_dir",
            "persist",
            "peers",
            "memory_budget",
            "disk_budget",
            "trace",
        }
    )

    def canonical(self) -> str:
        """Stable text form of *every* field, derived by reflection so a
        new knob participates in the cache key the moment it is added —
        forgetting would silently alias entries compiled under different
        settings (tests/pipeline/test_options_reflection.py re-asserts
        the invariant). ``cache_dir`` canonicalizes via ``abspath`` so
        relative and absolute spellings of one directory agree."""
        return ";".join(self._parts(fields(self)))

    def output_canonical(self) -> str:
        """Canonical text of the output-affecting fields only — the
        on-disk store's key space (see ``NON_OUTPUT_FIELDS``)."""
        return ";".join(
            self._parts(
                spec
                for spec in fields(self)
                if spec.name not in self.NON_OUTPUT_FIELDS
            )
        )

    def _parts(self, specs) -> list[str]:
        parts = []
        for spec in specs:
            value = getattr(self, spec.name)
            if spec.name == "limits":
                for limit in fields(value):
                    parts.append(
                        f"{limit.name}={getattr(value, limit.name)}"
                    )
            elif spec.name == "cache_dir" and value is not None:
                parts.append(f"cache_dir={os.path.abspath(value)}")
            elif spec.name == "peers":
                # canonicalize the container shape (a caller passing a
                # list must hash like one passing a tuple)
                parts.append(f"peers=({','.join(value)})")
            else:
                parts.append(f"{spec.name}={value}")
        return parts

    def options_hash(self) -> str:
        return hash_text(self.canonical())

    def output_hash(self) -> str:
        """Hash of :meth:`output_canonical` — the disk-store key half."""
        return hash_text(self.output_canonical())


@dataclass
class PassTiming:
    """One pipeline stage's instrumentation record."""

    name: str
    seconds: float
    detail: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{self.name:<16} {self.seconds * 1e3:>9.2f} ms    {detail}"


@dataclass
class CompileResult:
    """What :func:`repro.pipeline.compile` returns (and what the cache
    stores). On a cache hit ``cache_hit`` is true, ``timings`` holds just
    the lookup cost, and ``cold_timings`` carries the original cold
    compile's per-pass record for comparison."""

    source_hash: str
    options_hash: str
    options: CompileOptions
    program: object  # repro.ir.program.Program
    fused: object  # repro.fusion.fused_ir.FusedProgram
    timings: list[PassTiming] = field(default_factory=list)
    cache_hit: bool = False
    cold_timings: Optional[list[PassTiming]] = None
    unfused_source: Optional[str] = None
    fused_source: Optional[str] = None
    compiled_unfused: Optional[object] = None  # codegen.CompiledProgram
    compiled_fused: Optional[object] = None  # codegen.CompiledFused
    lowered: Optional[object] = None  # treefuser.LoweredProgram

    @property
    def key(self) -> tuple[str, str]:
        return (self.source_hash, self.options_hash)

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def timings_report(self) -> str:
        """The ``--timings`` report: one row per pass, wall time and
        IR-size stats, plus the cached cold-compile rows after a hit."""
        name = getattr(self.program, "name", "program")
        status = "hit" if self.cache_hit else "miss"
        lines = [
            f"pipeline timings for {name!r} "
            f"(cache {status}, key {self.source_hash[:12]}/"
            f"{self.options_hash[:12]})"
        ]
        lines.append(f"  {'pass':<16} {'wall':>12}    detail")
        for timing in self.timings:
            lines.append("  " + timing.describe())
        lines.append(
            f"  {'total':<16} {self.total_seconds * 1e3:>9.2f} ms"
        )
        if self.cache_hit and self.cold_timings:
            cold_total = sum(t.seconds for t in self.cold_timings)
            lines.append("  cold compile (cached):")
            for timing in self.cold_timings:
                lines.append("    " + timing.describe())
            lines.append(
                f"    {'total':<16} {cold_total * 1e3:>9.2f} ms"
            )
        return "\n".join(lines)

    def unit_report(self) -> str:
        """The ``--explain`` report: per-pass compilation-unit reuse —
        how many units each pass loaded from the unit store versus
        recomputed (plus disk/peer loads when a ``cache_dir`` or a
        configured peer served them)."""
        name = getattr(self.program, "name", "program")
        if self.cache_hit:
            return (
                f"unit reuse for {name!r}: whole result served from the "
                f"compile cache (no passes ran)"
            )
        lines = [f"unit reuse for {name!r} (per pass):"]
        lines.append(
            f"  {'pass':<16} {'units':>6} {'hits':>6} {'misses':>7}"
            f" {'disk':>6} {'peer':>6}"
        )
        keyed = 0
        for timing in self.timings:
            hits = timing.detail.get("unit_hits")
            misses = timing.detail.get("unit_misses")
            if hits is None and misses is None:
                continue
            keyed += 1
            hits = hits or 0
            misses = misses or 0
            disk = timing.detail.get("unit_disk_hits", 0)
            peer = timing.detail.get("unit_peer_hits", 0)
            lines.append(
                f"  {timing.name:<16} {hits + misses:>6} {hits:>6} "
                f"{misses:>7} {disk:>6} {peer:>6}"
            )
        if not keyed:
            lines.append(
                "  (no keyed units — compiled with the unit layer "
                "disabled)"
            )
        return "\n".join(lines)

    def unit_summary(self) -> dict:
        """Structured form of :meth:`unit_report` — what the service's
        ``/recompile`` endpoint returns as JSON."""
        passes = {}
        for timing in self.timings:
            detail = timing.detail
            if "unit_hits" not in detail and "unit_misses" not in detail:
                continue
            passes[timing.name] = {
                "units": detail.get("unit_hits", 0)
                + detail.get("unit_misses", 0),
                "hits": detail.get("unit_hits", 0),
                "misses": detail.get("unit_misses", 0),
                "disk_hits": detail.get("unit_disk_hits", 0),
                "peer_hits": detail.get("unit_peer_hits", 0),
                "seconds": timing.seconds,
            }
        return {
            "source_hash": self.source_hash,
            "cache_hit": self.cache_hit,
            "total_seconds": self.total_seconds,
            "passes": passes,
        }
