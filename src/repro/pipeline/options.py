"""Compile options, per-pass timings, and the compile result record.

:class:`CompileOptions` is the *complete* set of knobs that can change
what the pipeline produces — it hashes to a stable string so the
:class:`~repro.pipeline.cache.CompileCache` can key results on
``(source hash, options hash)``. Anything cosmetic (the module name, the
cache instance) deliberately stays out of it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.fusion.grouping import FusionLimits
from repro.ir.validate import LanguageMode


def hash_text(text: str) -> str:
    """Content hash used throughout the pipeline (hex sha256)."""
    return hashlib.sha256(text.encode()).hexdigest()


def _impl_signature(impls: dict) -> str:
    """Identity signature of bound pure-function callables.

    The callables are baked into the compiled program (the interpreter
    and the generated modules call them through it), so two compiles of
    identical text with *different* impl objects must not share a cache
    entry. Python code objects can't be content-hashed reliably, so the
    key uses ``id()`` — which is safe here precisely because every live
    cache entry holds a strong reference to its impls (through the
    cached program): while an entry exists its impls' ids cannot be
    reused, so an id match implies the same object.
    """
    return ",".join(
        f"{name}:{id(fn)}" for name, fn in sorted(impls.items())
    )


def hash_program(program) -> str:
    """Content hash of an in-memory program: the pretty-printer is the
    canonical form (it round-trips, see tests/frontend), so two
    structurally identical programs hash alike regardless of object
    identity. Bound pure-function impls are part of the key (see
    :func:`_impl_signature`)."""
    from repro.ir.printer import print_program

    program.finalize()
    impls = {
        name: func.impl
        for name, func in program.pure_functions.items()
        if func.impl is not None
    }
    return hash_text(
        f"{print_program(program)}\x00impls={_impl_signature(impls)}"
    )


def hash_source(source: str, pure_impls: Optional[dict] = None) -> str:
    """Content hash of source text plus the identity of any bound
    pure-function impls (see :func:`_impl_signature`)."""
    return hash_text(
        f"{source}\x00impls={_impl_signature(pure_impls or {})}"
    )


@dataclass(frozen=True)
class CompileOptions:
    """Everything that affects compilation output.

    * ``mode`` — language mode: ``"grafter"`` (default) rejects
      conditional traversal calls, ``"treefuser"`` allows them.
    * ``limits`` — fusion termination cutoffs (paper §4).
    * ``emit`` — also emit + exec the generated Python modules; with
      ``False`` the pipeline stops after fusion (cheaper when only the
      :class:`FusedProgram` is needed, e.g. for the interpreter).
    * ``use_cache`` — consult/populate the compile cache.
    """

    mode: str = "grafter"
    limits: FusionLimits = field(default_factory=FusionLimits)
    emit: bool = True
    use_cache: bool = True

    @property
    def language_mode(self) -> LanguageMode:
        return (
            LanguageMode.TREEFUSER
            if self.mode == "treefuser"
            else LanguageMode.GRAFTER
        )

    def canonical(self) -> str:
        """Stable text form of every output-affecting knob."""
        return (
            f"mode={self.mode};"
            f"max_sequence={self.limits.max_sequence};"
            f"max_repeat={self.limits.max_repeat};"
            f"emit={self.emit}"
        )

    def options_hash(self) -> str:
        return hash_text(self.canonical())


@dataclass
class PassTiming:
    """One pipeline stage's instrumentation record."""

    name: str
    seconds: float
    detail: dict[str, int] = field(default_factory=dict)

    def describe(self) -> str:
        detail = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"{self.name:<16} {self.seconds * 1e3:>9.2f} ms    {detail}"


@dataclass
class CompileResult:
    """What :func:`repro.pipeline.compile` returns (and what the cache
    stores). On a cache hit ``cache_hit`` is true, ``timings`` holds just
    the lookup cost, and ``cold_timings`` carries the original cold
    compile's per-pass record for comparison."""

    source_hash: str
    options_hash: str
    options: CompileOptions
    program: object  # repro.ir.program.Program
    fused: object  # repro.fusion.fused_ir.FusedProgram
    timings: list[PassTiming] = field(default_factory=list)
    cache_hit: bool = False
    cold_timings: Optional[list[PassTiming]] = None
    unfused_source: Optional[str] = None
    fused_source: Optional[str] = None
    compiled_unfused: Optional[object] = None  # codegen.CompiledProgram
    compiled_fused: Optional[object] = None  # codegen.CompiledFused

    @property
    def key(self) -> tuple[str, str]:
        return (self.source_hash, self.options_hash)

    @property
    def total_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    def timings_report(self) -> str:
        """The ``--timings`` report: one row per pass, wall time and
        IR-size stats, plus the cached cold-compile rows after a hit."""
        name = getattr(self.program, "name", "program")
        status = "hit" if self.cache_hit else "miss"
        lines = [
            f"pipeline timings for {name!r} "
            f"(cache {status}, key {self.source_hash[:12]}/"
            f"{self.options_hash[:12]})"
        ]
        lines.append(f"  {'pass':<16} {'wall':>12}    detail")
        for timing in self.timings:
            lines.append("  " + timing.describe())
        lines.append(
            f"  {'total':<16} {self.total_seconds * 1e3:>9.2f} ms"
        )
        if self.cache_hit and self.cold_timings:
            cold_total = sum(t.seconds for t in self.cold_timings)
            lines.append("  cold compile (cached):")
            for timing in self.cold_timings:
                lines.append("    " + timing.describe())
            lines.append(
                f"    {'total':<16} {cold_total * 1e3:>9.2f} ms"
            )
        return "\n".join(lines)
