"""Pass protocol, shared pass context, and the instrumented manager.

A pass is a named stage that advances the :class:`PassContext` toward a
compiled program and returns its IR-size stats; the :class:`PassManager`
runs a fixed sequence of passes, wall-timing each one into
:class:`~repro.pipeline.options.PassTiming` records. Control flow is
deliberately linear — the pipeline's value is instrumentation and
caching, not pass reordering.
"""

from __future__ import annotations

import time
from typing import Optional, Protocol, runtime_checkable

from repro.pipeline.options import CompileOptions, PassTiming


class PassContext:
    """Mutable state threaded through the passes of one compilation."""

    def __init__(
        self,
        options: CompileOptions,
        *,
        source_text: Optional[str] = None,
        program=None,
        name: str = "program",
        pure_impls: Optional[dict] = None,
        source_hash: str = "",
        cache=None,
    ):
        self.options = options
        self.source_text = source_text
        self.name = name
        self.pure_impls = pure_impls or {}
        self.source_hash = source_hash
        self.cache = cache
        # a Program handed in directly is trusted: its creator already
        # validated it (workloads, treefuser lowering), so the frontend
        # stages no-op instead of re-running mode checks it may not meet
        self.program = program
        self.trusted_program = program is not None
        # filled in by the passes
        self.analysis = None  # AnalysisContext
        self.planner = None  # FusionPlanner
        self.entry_plans = None  # list[EntryPlan]
        self.fused = None  # FusedProgram
        self.unfused_source: Optional[str] = None
        self.fused_source: Optional[str] = None
        self.compiled_unfused = None
        self.compiled_fused = None


@runtime_checkable
class Pass(Protocol):
    """One named pipeline stage."""

    name: str

    def run(self, pctx: PassContext) -> dict[str, int]:
        """Advance the context; return IR-size stats for the report."""
        ...  # pragma: no cover - protocol


class PassManager:
    """Runs passes in order, timing each into a PassTiming record."""

    def __init__(self, passes: list[Pass]):
        self.passes = list(passes)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, pctx: PassContext) -> list[PassTiming]:
        timings: list[PassTiming] = []
        for stage in self.passes:
            start = time.perf_counter()
            detail = stage.run(pctx) or {}
            elapsed = time.perf_counter() - start
            timings.append(
                PassTiming(name=stage.name, seconds=elapsed, detail=detail)
            )
        return timings
