"""The unit-granular pass contract, shared pass context, and manager.

A pass no longer advances the context in one opaque ``run``: it
*declares* its compilation units and computes them one at a time, so
the manager — not the pass — owns caching, counting, and worklist
order. The contract:

* ``discover(pctx)`` — the initial units. A :class:`Unit` names its
  ``kind`` (``"program"``, ``"method"``, ``"sequence"``, …), carries a
  content ``key`` (``None`` = uncacheable), and a pass-specific
  ``payload`` (the method, the member tuple, the plan).
* ``compute(pctx, unit)`` — produce the unit's artifact. Only called on
  a cache miss.
* ``install(pctx, unit, artifact)`` — wire the artifact (fresh or
  cached) into the context. Passes whose unit sets are *discovered*
  rather than enumerable up front (fusion finds child sequences while
  planning) enqueue follow-up units here via :meth:`PassContext.enqueue`.
* ``finish(pctx)`` — assemble the pass's whole-program output from the
  installed units and return its IR-size stats.

The manager runs each pass's worklist to exhaustion, consulting the
per-unit artifact layer (:class:`~repro.pipeline.units.UnitArtifacts`)
for every keyed unit; hit/miss/disk counters land in the pass's
:class:`~repro.pipeline.options.PassTiming` detail — the numbers
``CompileResult.unit_report`` and ``repro compile --explain`` print.
Control flow across passes stays deliberately linear — the pipeline's
value is instrumentation and caching, not pass reordering.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, runtime_checkable

from repro import obs
from repro.pipeline.options import CompileOptions, PassTiming

# one queryable namespace for what PassTiming.detail has always
# recorded per compile: wall time per pass, unit reuse by outcome
_PASS_SECONDS = obs.REGISTRY.histogram(
    "repro_pass_seconds",
    "wall time per pipeline pass",
    labels=("pass_name",),
)
_PASS_UNITS = obs.REGISTRY.counter(
    "repro_pass_units_total",
    "compilation units per pass by cache outcome",
    labels=("pass_name", "outcome"),
)


@dataclass
class Unit:
    """One compilation unit of one pass.

    ``key`` is a content hash from :class:`~repro.pipeline.units.UnitIndex`
    (or ``None`` for uncacheable work — whole-program stages, or any
    compile with the unit layer disabled); ``payload`` is whatever the
    pass needs to compute the artifact.
    """

    kind: str
    key: Optional[str]
    label: str = ""
    payload: object = None


@runtime_checkable
class Pass(Protocol):
    """One named pipeline stage, unit by unit."""

    name: str

    def discover(self, pctx: "PassContext") -> Iterable[Unit]:
        """The pass's initial units (may be empty for a skipped pass)."""
        ...  # pragma: no cover - protocol

    def compute(self, pctx: "PassContext", unit: Unit) -> object:
        """Produce one unit's artifact (cache misses only)."""
        ...  # pragma: no cover - protocol

    def install(self, pctx: "PassContext", unit: Unit, artifact) -> None:
        """Wire one artifact — fresh or cached — into the context."""
        ...  # pragma: no cover - protocol

    def finish(self, pctx: "PassContext") -> dict[str, int]:
        """Assemble whole-program output; return IR-size stats."""
        ...  # pragma: no cover - protocol


class PassContext:
    """Mutable state threaded through the passes of one compilation."""

    def __init__(
        self,
        options: CompileOptions,
        *,
        source_text: Optional[str] = None,
        program=None,
        name: str = "program",
        pure_impls: Optional[dict] = None,
        source_hash: str = "",
        cache=None,
        units=None,
    ):
        self.options = options
        self.source_text = source_text
        self.name = name
        self.pure_impls = pure_impls or {}
        self.source_hash = source_hash
        self.cache = cache
        # the per-unit artifact layer (UnitArtifacts), or None when the
        # compile runs with unit caching disabled — passes key their
        # units only when this is set
        self.units = units
        # a Program handed in directly is trusted: its creator already
        # validated it (workloads, treefuser lowering), so the frontend
        # stages no-op instead of re-running mode checks it may not meet
        self.program = program
        self.trusted_program = program is not None
        # filled in by the passes
        self.lowered = None  # treefuser.LoweredProgram (lower pass)
        self.analysis = None  # AnalysisContext
        self.planner = None  # FusionPlanner
        self.entry_plans = None  # list[EntryPlan]
        self.fused = None  # FusedProgram
        self.unfused_source: Optional[str] = None
        self.fused_source: Optional[str] = None
        self.compiled_unfused = None
        self.compiled_fused = None
        self._unit_index = None
        self._worklist: deque[Unit] = deque()

    @property
    def unit_index(self):
        """Content keys for the current program (built on first use —
        after parse/validate/lower have settled what the program is)."""
        if self._unit_index is None:
            from repro.pipeline.units import UnitIndex

            self._unit_index = UnitIndex(self.program, self.options)
        return self._unit_index

    def reset_unit_index(self) -> None:
        """Invalidate the key index after the program object changes
        (the lower pass swaps in the tagged-union twin)."""
        self._unit_index = None

    def enqueue(self, unit: Unit) -> None:
        """Add a discovered unit to the current pass's worklist."""
        self._worklist.append(unit)


class PassManager:
    """Runs each pass's unit worklist, timing and counting per pass."""

    def __init__(self, passes: list[Pass]):
        self.passes = list(passes)

    @property
    def pass_names(self) -> list[str]:
        return [p.name for p in self.passes]

    def run(self, pctx: PassContext) -> list[PassTiming]:
        timings: list[PassTiming] = []
        for stage in self.passes:
            start = time.perf_counter()
            with obs.span(f"pass.{stage.name}") as span:
                detail = self._run_stage(stage, pctx)
                elapsed = time.perf_counter() - start
                span.set(
                    **{
                        key: value
                        for key, value in detail.items()
                        if isinstance(value, (int, float))
                    }
                )
            _PASS_SECONDS.labels(pass_name=stage.name).observe(elapsed)
            for outcome, key in (
                ("hit", "unit_hits"),
                ("miss", "unit_misses"),
            ):
                count = detail.get(key)
                if count:
                    _PASS_UNITS.labels(
                        pass_name=stage.name, outcome=outcome
                    ).inc(count)
            timings.append(
                PassTiming(name=stage.name, seconds=elapsed, detail=detail)
            )
        return timings

    def _run_stage(self, stage: Pass, pctx: PassContext) -> dict[str, int]:
        worklist = pctx._worklist = deque()
        worklist.extend(stage.discover(pctx))
        spill = getattr(stage, "persist_units", False)
        while worklist:
            unit = worklist.popleft()
            # one span per unit covering lookup + compute + install;
            # `hit` records whether the unit layer served the artifact
            with obs.span(
                f"unit.{unit.kind}", label=unit.label
            ) as span:
                artifact = None
                cached = False
                if unit.key is not None and pctx.units is not None:
                    artifact = pctx.units.lookup(stage.name, unit.key)
                    cached = artifact is not None
                if artifact is None:
                    artifact = stage.compute(pctx, unit)
                    if (
                        unit.key is not None
                        and pctx.units is not None
                        and artifact is not None
                    ):
                        pctx.units.publish(
                            stage.name, unit.key, artifact, spill=spill
                        )
                stage.install(pctx, unit, artifact)
                span.set(hit=cached)
        detail = dict(stage.finish(pctx) or {})
        if pctx.units is not None:
            detail.update(pctx.units.counters(stage.name))
        return detail
