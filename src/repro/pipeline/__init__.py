"""Staged compilation pipeline with pass manager and compile cache.

The one entry point every driver (CLI, codegen, bench runner, examples)
goes through::

    from repro import pipeline

    result = pipeline.compile(source_text_or_program)
    result.fused              # the FusedProgram
    result.compiled_fused     # exec'd generated Python (options.emit)
    result.cache_hit          # served from the content-addressed cache?
    print(result.timings_report())

Stages (each wall-timed, each reporting IR-size stats)::

    parse → validate → lower? → access-analysis → dependence → fusion → schedule → emit

Passes are *unit-granular* (see :mod:`repro.pipeline.manager`): each
declares per-unit inputs/outputs — methods for access analysis and
unfused emission, fused member sequences for dependence/fusion/emit —
and every unit's artifact is content-addressed in the compile's
:class:`~repro.storage.TieredStore` (the in-process memory tier; with
``cache_dir`` the on-disk :class:`~repro.storage.DiskTier`; with
``peers`` read-only :class:`~repro.storage.PeerTier` warm sources).
Whole results stay memoized under ``(source hash, options hash)``:
warm compiles are dictionary lookups, and when the whole-result key
misses — a first-ever compile or an edited workload — unchanged units
reload instead of recomputing (``pipeline.compile(...,
incremental=True)``, the default; ``CompileResult.unit_report()`` shows
the per-pass reuse). See :mod:`repro.pipeline.stages` for the pass
implementations (the former monolithic fusion engine, decomposed).
"""

from repro.pipeline.cache import GLOBAL_CACHE, CompileCache
from repro.pipeline.driver import compile, hash_program, hash_source
from repro.pipeline.manager import Pass, PassContext, PassManager, Unit
from repro.pipeline.options import (
    CompileOptions,
    CompileResult,
    PassTiming,
    impl_ref,
    impls_portable,
)
from repro.pipeline.stages import default_passes
from repro.pipeline.units import UnitArtifacts, UnitIndex

__all__ = [
    "impl_ref",
    "impls_portable",
    "compile",
    "CompileOptions",
    "CompileResult",
    "CompileCache",
    "GLOBAL_CACHE",
    "Pass",
    "PassContext",
    "PassManager",
    "PassTiming",
    "Unit",
    "UnitArtifacts",
    "UnitIndex",
    "default_passes",
    "hash_program",
    "hash_source",
]
