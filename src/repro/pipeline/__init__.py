"""Staged compilation pipeline with pass manager and compile cache.

The one entry point every driver (CLI, codegen, bench runner, examples)
goes through::

    from repro import pipeline

    result = pipeline.compile(source_text_or_program)
    result.fused              # the FusedProgram
    result.compiled_fused     # exec'd generated Python (options.emit)
    result.cache_hit          # served from the content-addressed cache?
    print(result.timings_report())

Stages (each wall-timed, each reporting IR-size stats)::

    parse → validate → access-analysis → dependence → fusion → schedule → emit

Results are memoized in a content-addressed :class:`CompileCache` keyed
on ``(source hash, options hash)``; warm compiles are dictionary
lookups. With ``CompileOptions(cache_dir=...)`` results also persist to
an on-disk :class:`~repro.service.store.ArtifactStore`, so cold starts
in *new processes* skip the pipeline entirely. See
:mod:`repro.pipeline.stages` for the pass implementations (the former
monolithic fusion engine, decomposed).
"""

from repro.pipeline.cache import GLOBAL_CACHE, CompileCache
from repro.pipeline.driver import compile, hash_program, hash_source
from repro.pipeline.manager import Pass, PassContext, PassManager
from repro.pipeline.options import (
    CompileOptions,
    CompileResult,
    PassTiming,
    impl_ref,
    impls_portable,
)
from repro.pipeline.stages import default_passes

__all__ = [
    "impl_ref",
    "impls_portable",
    "compile",
    "CompileOptions",
    "CompileResult",
    "CompileCache",
    "GLOBAL_CACHE",
    "Pass",
    "PassContext",
    "PassManager",
    "PassTiming",
    "default_passes",
    "hash_program",
    "hash_source",
]
