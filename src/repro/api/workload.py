"""The one-object workload bundle.

Before this existed, feeding the fusion engine a program meant carrying
four parallel artifacts — source text (or a ``Program``), a
``pure_impls`` dict, a ``globals_map``, and a ``build_tree`` callable —
separately through every layer (``pipeline.compile``, ``ExecRequest``,
the service registry, the bench runner, each example). A
:class:`Workload` bundles them once; every layer now accepts the bundle.

Workloads are frozen and, when their pieces are module-level (tree
builders, spec factories, portable pure impls), picklable — so one
object travels from the embedding API through the service's process
workers and the on-disk artifact store unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Mapping, Optional, Sequence, Union

from repro.errors import WorkloadError
from repro.ir.program import Program


@dataclass(frozen=True)
class Workload:
    """A named, runnable traversal workload.

    * ``source`` — Grafter source text or a built
      :class:`~repro.ir.program.Program` (embedded definitions lower to
      Programs; the string DSL stays available as the advanced path).
    * ``build_tree`` — ``(program, heap, spec) -> root`` realizing one
      tree from a picklable spec.
    * ``globals_map`` — runtime values for the program's globals.
    * ``pure_impls`` — bound pure-function impls; only meaningful with
      string sources (Programs already carry their impls).
    * ``make_spec`` — optional ``(**kwargs) -> spec`` factory for
      size-parameterized default inputs (``pages=4``, ``depth=6``, …).
    """

    name: str
    source: Union[str, Program]
    build_tree: Callable
    globals_map: Optional[Mapping] = None
    pure_impls: Optional[Mapping] = None
    make_spec: Optional[Callable] = None
    description: str = ""

    def __post_init__(self):
        if isinstance(self.source, Program) and self.pure_impls:
            raise WorkloadError(
                f"workload {self.name!r}: a Program source already "
                f"binds its impls; pure_impls is for string sources"
            )

    # -- construction helpers -------------------------------------------

    @staticmethod
    def from_program(
        program: Program,
        build_tree: Callable,
        *,
        name: Optional[str] = None,
        globals_map: Optional[Mapping] = None,
        make_spec: Optional[Callable] = None,
        description: str = "",
    ) -> "Workload":
        return Workload(
            name=name or program.name,
            source=program,
            build_tree=build_tree,
            globals_map=globals_map,
            make_spec=make_spec,
            description=description,
        )

    @staticmethod
    def from_source(
        name: str,
        source: str,
        build_tree: Callable,
        *,
        pure_impls: Optional[Mapping] = None,
        globals_map: Optional[Mapping] = None,
        make_spec: Optional[Callable] = None,
        description: str = "",
    ) -> "Workload":
        return Workload(
            name=name,
            source=source,
            build_tree=build_tree,
            globals_map=globals_map,
            pure_impls=pure_impls,
            make_spec=make_spec,
            description=description,
        )

    def with_description(self, description: str) -> "Workload":
        return replace(self, description=description)

    # -- identity -------------------------------------------------------

    def source_hash(self) -> str:
        """The content hash compilation will key this workload under."""
        from repro.pipeline import hash_program, hash_source

        if isinstance(self.source, Program):
            return hash_program(self.source)
        return hash_source(self.source, dict(self.pure_impls or {}))

    # -- inputs ---------------------------------------------------------

    def spec(self, **kwargs):
        """One default tree spec (requires ``make_spec``)."""
        if self.make_spec is None:
            raise WorkloadError(
                f"workload {self.name!r} has no make_spec; pass explicit "
                f"tree specs instead of a count"
            )
        return self.make_spec(**kwargs)

    def specs(self, trees: Union[int, Sequence], **kwargs) -> list:
        """Normalize a forest description: an int count becomes that
        many default specs, a sequence passes through."""
        if isinstance(trees, int):
            made = self.spec(**kwargs)
            return [made for _ in range(trees)]
        if kwargs:
            raise WorkloadError(
                "spec kwargs only apply when trees is a count"
            )
        return list(trees)

    # -- the compile/execute handles ------------------------------------

    def compile(self, options=None, **compile_kwargs):
        """Compile through the staged pipeline (see
        :func:`repro.pipeline.compile`)."""
        from repro.pipeline import compile as pipeline_compile

        return pipeline_compile(self, options=options, **compile_kwargs)

    def request(
        self,
        trees: Union[int, Sequence] = 8,
        *,
        options=None,
        fused: bool = True,
        collect: Optional[Callable] = None,
        mode: str = "compiled",
        **spec_kwargs,
    ):
        """An :class:`~repro.service.batching.ExecRequest` running this
        workload over a forest (an int count uses ``make_spec``).
        ``mode="interpret"`` runs the reference interpreter instead of a
        compiled artifact (zero compile latency; ``fused`` is ignored).
        """
        from repro.service.batching import ExecRequest

        return ExecRequest.from_workload(
            self,
            self.specs(trees, **spec_kwargs),
            options=options,
            fused=fused,
            collect=collect,
            mode=mode,
        )
