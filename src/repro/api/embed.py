"""Python-embedded traversal definitions.

The string DSL (:mod:`repro.frontend`) mirrors the paper's C++ surface
syntax; this module is the Bonsai-style alternative: write tree schemas
and traversals as *typed Python* and lower them to the exact same
:class:`repro.ir.program.Program` the parser produces — same canonical
print, same content hash, same fused output.

::

    import repro

    CHAR_WIDTH = repro.Global(int, 6)

    @repro.pure
    def imax(a: int, b: int) -> int:
        return a if a >= b else b

    @repro.schema
    class String:                       # only primitives, no traversals
        Length: int                     #   -> an opaque data class

    @repro.schema(abstract=True)
    class Element:                      # has traversals -> a tree class
        Width: int = 0
        Next: "Element"                 # tree-typed field -> a child

        @repro.traversal(virtual=True)
        def computeWidth(this):
            pass

    @repro.schema
    class TextBox(Element):
        Text: String                    # opaque-typed field -> data

        @repro.traversal
        def computeWidth(this):
            this.Next.computeWidth()    # traverse a child
            this.Width = imax(this.Text.Length * CHAR_WIDTH, 1)

    @repro.entry(Element)
    def main(root):
        root.computeWidth()

    program = repro.api.lower_module(__name__, name="demo")

Decorated bodies are **never executed**: ``@traversal`` captures the
function's AST at decoration time and :func:`lower_module` translates it
statement by statement through the same semantic layer the parser uses
(:mod:`repro.ir.builder`), so member resolution, receiver restrictions
(rule 7) and validation behave identically in both frontends.

Statement forms understood inside a traversal body::

    this.F = <expr>                    assignment (data fields only)
    x: int = <expr>                    typed local definition
    n: TreeClass = this.Child          constant alias to a descendant
    this.Child.f(args) / this.f(args)  traversal call (rule 7)
    p(args)                            pure call in statement position
    if / elif / else, while            guarded / repeated simple stmts
    return                             truncate the traversal here
    this.Child = TreeClass()           `new` (leaf topology mutation)
    del this.Child                     `delete`
    pass                               empty body

Expressions: ``+ - * / // %``, comparisons, ``and/or/not``, unary ``-``,
int/float/bool literals, member chains, pure-function calls. Both ``/``
and ``//`` lower to Grafter's ``/`` (which is integer division on
ints — spell it ``//`` in embedded code so the Python reads honestly).

Member chains may downcast with :func:`repro.cast` — the embedded
spelling of ``static_cast<T*>(x)->m``::

    cast(KdLeaf, this.Left).C0                      # read through a cast
    cast(Interior, this.Left).Split = mid           # write through one
    cast(KdLeaf, cast(Interior, this.Left).Left).C0 # casts nest

``cast`` is a pure marker: it resolves at lowering time (the builder
checks the target is a related tree type, exactly like the parser) and
never executes.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field as dc_field
from typing import Callable, Iterable, Optional, Union

from repro.errors import EmbedError
from repro.ir.access import AccessPath, Receiver
from repro.ir.builder import RawStep, ScopeInfo, resolve_member_chain
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, PureCall, UnaryOp
from repro.ir.method import Param, PureFunction, TraversalMethod
from repro.ir.program import EntryCall, Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)
from repro.ir.types import OpaqueClass, TreeType, is_primitive
from repro.ir.validate import LanguageMode, validate_program

# Python annotation -> Grafter primitive type name. ``float`` maps to
# ``double`` (the parser's literal type for floating constants).
_PRIMITIVES = {
    int: "int",
    float: "double",
    bool: "bool",
    "int": "int",
    "float": "double",
    "double": "double",
    "bool": "bool",
    "char": "char",
}

_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "/",
    ast.Mod: "%",
}

_CMP_OPS = {
    ast.Lt: "<",
    ast.LtE: "<=",
    ast.Gt: ">",
    ast.GtE: ">=",
    ast.Eq: "==",
    ast.NotEq: "!=",
}


# ===========================================================================
# declaration markers (what the decorators attach)
# ===========================================================================


def cast(type_, value):  # pragma: no cover - lowering-time marker
    """Downcast marker for embedded member chains.

    ``repro.cast(KdLeaf, this.Left).C0`` lowers to the string DSL's
    ``static_cast<KdLeaf*>(this->Left)->C0``. Only meaningful inside
    ``@traversal`` bodies, which are captured as ASTs and never run —
    calling it as ordinary Python is always a mistake.
    """
    raise EmbedError(
        "repro.cast marks static_cast member chains inside @traversal "
        "bodies; it is resolved at lowering time and never called"
    )


class Global:
    """A module-level global-variable declaration.

    ``PAGE_WIDTH = repro.Global(int, 800)`` declares an *off-tree*
    location of Grafter type ``int`` whose runtime default is 800; the
    name comes from the module attribute during :func:`lower_module`.
    Globals are runtime state (paper §3.1), so the default lives
    outside the program — harvest the module's defaults with
    :func:`default_globals` and pass them as the workload's
    ``globals_map``.
    """

    def __init__(self, type_=int, default=None):
        type_name = _PRIMITIVES.get(type_)
        if type_name is None:
            raise EmbedError(
                f"Global type must be a primitive (int/float/bool), "
                f"got {type_!r}"
            )
        self.type_name = type_name
        self.default = default


@dataclass
class _PureInfo:
    name: str
    params: tuple[tuple[str, str], ...]
    return_type: str
    reads_globals: tuple[str, ...]
    fn: Callable


@dataclass
class _TraversalInfo:
    name: str
    params: tuple[tuple[str, str], ...]  # beyond the receiver
    this_name: str
    virtual: bool
    node: ast.FunctionDef
    filename: str
    fn: Callable


@dataclass
class _SchemaInfo:
    cls: type
    name: str
    abstract: bool
    tree_override: Optional[bool]
    bases: tuple[type, ...]
    raw_fields: tuple[tuple[str, object, object], ...]  # (name, annot, default)
    traversals: tuple[_TraversalInfo, ...]
    is_tree: bool = dc_field(default=False)


@dataclass
class _EntryInfo:
    root: object  # schema class or type name
    node: Optional[ast.FunctionDef]
    filename: str
    # prebuilt entry calls (from entry_calls) take precedence over the
    # captured @entry function body
    calls: Optional[list[EntryCall]] = None


def _annotation_of(fn: Callable, name: str, where: str) -> str:
    annotation = fn.__annotations__.get(name)
    type_name = _PRIMITIVES.get(annotation)
    if type_name is None:
        raise EmbedError(
            f"{where}: parameter {name!r} needs a primitive annotation "
            f"(int/float/bool), got {annotation!r}"
        )
    return type_name


def _capture_function_ast(fn: Callable) -> ast.FunctionDef:
    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError) as error:
        raise EmbedError(
            f"cannot capture source of {fn.__qualname__}: {error}"
        ) from error
    node = ast.parse(source).body[0]
    if not isinstance(node, ast.FunctionDef):  # pragma: no cover
        raise EmbedError(f"{fn.__qualname__} is not a plain function")
    return node


# ===========================================================================
# the decorators
# ===========================================================================


def pure(fn=None, *, name: Optional[str] = None, reads_globals: Iterable[str] = ()):
    """Declare a module-level function as a Grafter ``_pure_`` function.

    The signature (primitive annotations) becomes the declaration; the
    function object itself becomes the bound impl — so impls are
    captured automatically and, being module-level, stay portable
    across processes (see :func:`repro.pipeline.options.impl_ref`).
    """

    def decorate(func):
        params = tuple(
            (p, _annotation_of(func, p, f"pure {func.__qualname__}"))
            for p in inspect.signature(func).parameters
        )
        return_type = _annotation_of(
            func, "return", f"pure {func.__qualname__}"
        )
        func.__repro_pure__ = _PureInfo(
            name=name or func.__name__,
            params=params,
            return_type=return_type,
            reads_globals=tuple(reads_globals),
            fn=func,
        )
        return func

    return decorate(fn) if fn is not None else decorate


def traversal(fn=None, *, virtual: bool = False):
    """Declare a method of a ``@schema`` class as a traversal.

    The body is captured as an AST at decoration time and lowered when
    the surrounding module is built into a program; it never runs as
    Python. The first parameter is the receiver (conventionally named
    ``this``); remaining parameters need primitive annotations.
    """

    def decorate(func):
        node = _capture_function_ast(func)
        arg_names = [a.arg for a in node.args.args]
        if not arg_names:
            raise EmbedError(
                f"traversal {func.__qualname__} needs a receiver "
                f"parameter (conventionally `this`)"
            )
        params = tuple(
            (p, _annotation_of(func, p, f"traversal {func.__qualname__}"))
            for p in arg_names[1:]
        )
        func.__repro_traversal__ = _TraversalInfo(
            name=func.__name__,
            params=params,
            this_name=arg_names[0],
            virtual=virtual,
            node=node,
            filename=func.__code__.co_filename,
            fn=func,
        )
        return func

    return decorate(fn) if fn is not None else decorate


def schema(cls=None, *, tree: Optional[bool] = None, abstract: bool = False):
    """Declare a class as part of a traversal program's schema.

    Whether the class is a *tree* class or an *opaque* data class is
    inferred: traversal methods, tree-typed fields, a tree base class or
    ``abstract=True`` all make it a tree class; a plain bag of primitive
    fields is opaque. Pass ``tree=True``/``tree=False`` to override.
    """

    def decorate(klass):
        raw_fields = tuple(
            (field_name, annotation, getattr(klass, field_name, None))
            for field_name, annotation in vars(klass)
            .get("__annotations__", {})
            .items()
        )
        traversals = tuple(
            value.__repro_traversal__
            for value in vars(klass).values()
            if isinstance(value, types.FunctionType)
            and hasattr(value, "__repro_traversal__")
        )
        klass.__repro_schema__ = _SchemaInfo(
            cls=klass,
            name=klass.__name__,
            abstract=abstract,
            tree_override=tree,
            bases=tuple(
                base
                for base in klass.__bases__
                if hasattr(base, "__repro_schema__")
            ),
            raw_fields=raw_fields,
            traversals=traversals,
        )
        return klass

    return decorate(cls) if cls is not None else decorate


def entry_calls(root, schedule) -> _EntryInfo:
    """A programmatic ``@entry``: the entry sequence as data.

    ``schedule`` is a list of ``(method_name, args)`` pairs with
    constant arguments — the shape workloads whose schedules are data
    (the kd-tree equations) already carry. Pass the result as the
    ``entry`` argument of :func:`lower`::

        program = repro.api.lower(
            "kdtree-eq1",
            classes=[...],
            entry=repro.api.embed.entry_calls("FunctionKd", EQ1_SCHEDULE),
        )
    """
    calls = []
    for method_name, args in schedule:
        rendered = []
        for value in args:
            if isinstance(value, bool):
                rendered.append(Const(value, "bool"))
            elif isinstance(value, int):
                rendered.append(Const(value, "int"))
            elif isinstance(value, float):
                rendered.append(Const(value, "double"))
            else:
                raise EmbedError(
                    f"entry-call arguments must be constants, got "
                    f"{value!r} for {method_name!r}"
                )
        calls.append(
            EntryCall(method_name=method_name, args=tuple(rendered))
        )
    return _EntryInfo(root=root, node=None, filename="<entry_calls>", calls=calls)


def entry(root):
    """Declare the program's ``main``: the entry traversal sequence.

    ``root`` is the tree root's schema class (or its name); the
    decorated function's single parameter stands for the root node and
    each body statement must be a traversal call on it with constant
    arguments — exactly the shape the string DSL's ``main`` allows.
    """

    def decorate(fn):
        node = _capture_function_ast(fn)
        fn.__repro_entry__ = _EntryInfo(
            root=root, node=node, filename=fn.__code__.co_filename
        )
        return fn

    return decorate


# ===========================================================================
# lowering
# ===========================================================================


def default_globals(module) -> dict:
    """The runtime defaults of every :class:`Global` declared in
    *module* — ready to use as a workload's ``globals_map``::

        workload = repro.Workload.from_program(
            repro.lower_module(__name__),
            build_tree,
            globals_map=repro.default_globals(__name__),
        )
    """
    import importlib
    import sys

    if isinstance(module, str):
        module = sys.modules.get(module) or importlib.import_module(module)
    return {
        attr_name: declared.default
        for attr_name, declared in vars(module).items()
        if isinstance(declared, Global)
    }


def lower_module(module, name: str = "program", validate: bool = True) -> Program:
    """Build a :class:`Program` from every declaration in *module*.

    *module* is a module object or importable/imported module name.
    Declarations are collected in definition order (module namespace
    order), so the canonical print — and therefore the content hash —
    is deterministic and matches an equivalently ordered string-DSL
    source.
    """
    import importlib
    import sys

    if isinstance(module, str):
        module = sys.modules.get(module) or importlib.import_module(module)
    namespace = vars(module)
    classes: list[_SchemaInfo] = []
    pures: list[_PureInfo] = []
    globals_: dict[str, Global] = {}
    entry_info: Optional[_EntryInfo] = None
    for attr_name, value in namespace.items():
        if isinstance(value, Global):
            globals_[attr_name] = value
        elif isinstance(value, type) and "__repro_schema__" in vars(value):
            if not any(
                info.cls is value for info in classes
            ):
                classes.append(value.__repro_schema__)
        elif callable(value) and hasattr(value, "__repro_pure__"):
            if not any(
                info.fn is value.__repro_pure__.fn for info in pures
            ):
                pures.append(value.__repro_pure__)
        elif callable(value) and hasattr(value, "__repro_entry__"):
            if (
                entry_info is not None
                and entry_info is not value.__repro_entry__
            ):
                raise EmbedError(
                    f"module {module.__name__!r} declares more than one "
                    f"@entry function; a program has one main"
                )
            entry_info = value.__repro_entry__
    return lower(
        name,
        classes=[info.cls for info in classes],
        pures=[info.fn for info in pures],
        globals_={n: g for n, g in globals_.items()},
        entry=entry_info,
        validate=validate,
    )


def lower(
    name: str,
    *,
    classes: Iterable[type],
    pures: Iterable[Callable] = (),
    globals_: Optional[dict[str, Global]] = None,
    entry: Optional[Union[Callable, _EntryInfo]] = None,
    validate: bool = True,
    mode: LanguageMode = LanguageMode.GRAFTER,
) -> Program:
    """Lower explicit collections of decorated declarations to a
    finalized (and by default validated) :class:`Program` — the
    list-driven spelling of :func:`lower_module`."""
    infos = [_schema_info(cls) for cls in classes]
    _infer_tree_classes(infos)
    lowerer = _ProgramLowerer(
        name=name,
        infos=infos,
        pures=[fn.__repro_pure__ for fn in pures],
        globals_=globals_ or {},
        mode=mode,
    )
    if entry is not None and not isinstance(entry, _EntryInfo):
        entry = entry.__repro_entry__
    program = lowerer.build(entry)
    if validate:
        validate_program(program, mode)
    return program


def _schema_info(cls: type) -> _SchemaInfo:
    info = getattr(cls, "__repro_schema__", None)
    if info is None or info.cls is not cls:
        raise EmbedError(f"{cls!r} is not decorated with @repro.schema")
    return info


def _infer_tree_classes(infos: list[_SchemaInfo]) -> None:
    """Fixpoint classification: tree-ness propagates along bases (both
    directions — Grafter hierarchies are tree-only) and from tree-typed
    fields to their owners (a node holding a child is itself a node)."""
    by_cls = {info.cls: info for info in infos}
    by_name = {info.name: info for info in infos}
    for info in infos:
        if info.tree_override is not None:
            info.is_tree = info.tree_override
        else:
            info.is_tree = bool(
                info.traversals or info.abstract or info.bases
            )
    changed = True
    while changed:
        changed = False
        for info in infos:
            if info.is_tree or info.tree_override is not None:
                continue
            makes_tree = any(
                base in by_cls and by_cls[base].is_tree
                for base in info.bases
            )
            for _, annotation, _ in info.raw_fields:
                target = None
                if isinstance(annotation, str):
                    target = by_name.get(annotation)
                elif isinstance(annotation, type):
                    target = by_cls.get(annotation)
                if target is not None and target.is_tree:
                    makes_tree = True
            if makes_tree:
                info.is_tree = True
                changed = True
    # subclasses of a tree are trees even with explicit overrides absent
    for info in infos:
        for base in info.bases:
            base_info = by_cls.get(base)
            if base_info is not None and info.is_tree and not base_info.is_tree:
                raise EmbedError(
                    f"{info.name} is a tree class but its base "
                    f"{base_info.name} is opaque; tree classes may only "
                    f"extend tree classes"
                )


class _ProgramLowerer:
    """Assembles a Program from collected schema/pure/global/entry info,
    mirroring the parser's two-pass structure: declarations and frozen
    types first, then method bodies, then the virtual-flag fixup and the
    entry sequence."""

    def __init__(self, name, infos, pures, globals_, mode):
        self.program = Program(name)
        self.infos = infos
        self.pures = pures
        self.globals = globals_
        self.mode = mode
        self.class_names = {info.name: info for info in infos}

    def build(self, entry_info: Optional[_EntryInfo]) -> Program:
        program = self.program
        for name, declared in self.globals.items():
            program.add_global(name, declared.type_name)
        for info in self.infos:
            if not info.is_tree:
                self._add_opaque(info)
        for pure_info in self.pures:
            program.add_pure_function(
                PureFunction(
                    name=pure_info.name,
                    params=tuple(
                        Param(n, t) for n, t in pure_info.params
                    ),
                    return_type=pure_info.return_type,
                    impl=pure_info.fn,
                    reads_globals=frozenset(pure_info.reads_globals),
                )
            )
        for info in self.infos:
            if info.is_tree:
                self._add_tree_type(info)
        program.finalize_types()
        # register every method signature before lowering any body so
        # forward references and mutual recursion resolve (the parser
        # does the same with its pending-method list)
        registered: list[tuple[_SchemaInfo, _TraversalInfo, TraversalMethod]] = []
        for info in self.infos:
            if not info.is_tree:
                continue
            for trav in info.traversals:
                method = TraversalMethod(
                    name=trav.name,
                    owner=info.name,
                    params=tuple(Param(n, t) for n, t in trav.params),
                    virtual=trav.virtual,
                )
                program.tree_types[info.name].add_method(method)
                registered.append((info, trav, method))
        for info, trav, method in registered:
            method.body = _BodyLowerer(self, info.name, trav).lower()
        self._fixup_virtual_flags()
        if entry_info is not None:
            self._lower_entry(entry_info)
        program.finalize()
        return program

    # -- declarations ---------------------------------------------------

    def _add_opaque(self, info: _SchemaInfo) -> None:
        cls = OpaqueClass(info.name)
        for field_name, annotation, default in info.raw_fields:
            type_name = self._resolve_type(annotation, info, field_name)
            if not is_primitive(type_name):
                raise EmbedError(
                    f"opaque class {info.name} field {field_name!r} must "
                    f"be primitive, got {type_name!r}"
                )
            cls.add_field(field_name, type_name)
        self.program.add_opaque_class(cls)

    def _add_tree_type(self, info: _SchemaInfo) -> None:
        tree_type = TreeType(
            info.name,
            bases=[base.__name__ for base in info.bases],
            abstract=info.abstract,
        )
        for field_name, annotation, default in info.raw_fields:
            type_name = self._resolve_type(annotation, info, field_name)
            target = self.class_names.get(type_name)
            if target is not None and target.is_tree:
                if default is not None:
                    raise EmbedError(
                        f"{info.name}.{field_name}: child fields take no "
                        f"default (children start null)"
                    )
                tree_type.add_child(field_name, type_name)
            else:
                tree_type.add_data(field_name, type_name, default=default)
        self.program.add_tree_type(tree_type)

    def _resolve_type(self, annotation, info: _SchemaInfo, field_name: str) -> str:
        if annotation in _PRIMITIVES:
            return _PRIMITIVES[annotation]
        if isinstance(annotation, type) and annotation in {
            i.cls for i in self.infos
        }:
            return annotation.__name__
        if isinstance(annotation, str) and annotation in self.class_names:
            return annotation
        raise EmbedError(
            f"{info.name}.{field_name}: unknown field type {annotation!r} "
            f"(primitives, @schema classes, or their names)"
        )

    # -- virtual fixup (same rule as the parser) ------------------------

    def _fixup_virtual_flags(self) -> None:
        program = self.program
        order = sorted(
            program.tree_types, key=lambda n: len(program.mro(n))
        )
        for type_name in order:
            tree_type = program.tree_types[type_name]
            for method in tree_type.methods.values():
                if method.virtual:
                    continue
                for ancestor_name in program.mro(type_name)[1:]:
                    ancestor = program.tree_types[ancestor_name]
                    base_method = ancestor.methods.get(method.name)
                    if base_method is not None and base_method.virtual:
                        method.virtual = True
                        break

    # -- entry ----------------------------------------------------------

    def _lower_entry(self, info: _EntryInfo) -> None:
        root = info.root
        root_name = root if isinstance(root, str) else root.__name__
        if root_name not in self.program.tree_types:
            raise EmbedError(
                f"entry root {root_name!r} is not a tree class"
            )
        if info.calls is not None:
            self.program.set_entry(root_name, list(info.calls))
            return
        node = info.node
        if len(node.args.args) != 1:
            raise EmbedError(
                "an @entry function takes exactly one parameter (the "
                "tree root)",
                info.filename,
                node.lineno,
            )
        root_var = node.args.args[0].arg
        calls: list[EntryCall] = []
        for stmt in node.body:
            if isinstance(stmt, ast.Pass):
                continue
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and isinstance(stmt.value.func, ast.Attribute)
                and isinstance(stmt.value.func.value, ast.Name)
                and stmt.value.func.value.id == root_var
            ):
                args = tuple(
                    self._entry_arg(arg, info) for arg in stmt.value.args
                )
                calls.append(
                    EntryCall(
                        method_name=stmt.value.func.attr, args=args
                    )
                )
                continue
            raise EmbedError(
                f"entry statements must be `{root_var}.traversal(...)` "
                f"calls",
                info.filename,
                stmt.lineno,
            )
        self.program.set_entry(root_name, calls)

    def _entry_arg(self, node: ast.expr, info: _EntryInfo) -> Expr:
        negate = False
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            negate = True
            node = node.operand
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return Const(value, "bool")
            if isinstance(value, int):
                return Const(-value if negate else value, "int")
            if isinstance(value, float):
                return Const(-value if negate else value, "double")
        raise EmbedError(
            "entry-call arguments must be constants",
            info.filename,
            node.lineno,
        )


class _BodyLowerer:
    """Lowers one captured traversal body (a Python AST) to IR
    statements — the embedded counterpart of the parser's
    ``_BodyParser``, sharing its resolution layer."""

    def __init__(self, owner: _ProgramLowerer, type_name: str, trav: _TraversalInfo):
        self.ctx = owner
        self.program = owner.program
        self.owner = type_name
        self.trav = trav
        self.this_name = trav.this_name
        self.scope = ScopeInfo()
        for param_name, param_type in trav.params:
            self.scope.locals[param_name] = param_type

    def lower(self) -> list[Stmt]:
        return self._lower_block(self.trav.node.body)

    def error(self, message: str, node: ast.AST) -> EmbedError:
        return EmbedError(
            f"in traversal {self.owner}.{self.trav.name}: {message}",
            self.trav.filename,
            getattr(node, "lineno", 0),
        )

    # -- statements -----------------------------------------------------

    def _lower_block(self, stmts: list[ast.stmt]) -> list[Stmt]:
        out: list[Stmt] = []
        for stmt in stmts:
            lowered = self._lower_stmt(stmt)
            if lowered is not None:
                out.append(lowered)
        return out

    def _lower_stmt(self, node: ast.stmt) -> Optional[Stmt]:
        if isinstance(node, ast.Pass):
            return None
        if isinstance(node, ast.Return):
            if node.value is not None:
                raise self.error("traversals return no value", node)
            return Return()
        if isinstance(node, ast.If):
            return If(
                cond=self._lower_expr(node.test),
                then_body=self._lower_block(node.body),
                else_body=self._lower_block(node.orelse),
            )
        if isinstance(node, ast.While):
            if node.orelse:
                raise self.error("while/else is not representable", node)
            return While(
                cond=self._lower_expr(node.test),
                body=self._lower_block(node.body),
            )
        if isinstance(node, ast.AnnAssign):
            return self._lower_ann_assign(node)
        if isinstance(node, ast.Assign):
            return self._lower_assign(node)
        if isinstance(node, ast.AugAssign):
            return self._lower_aug_assign(node)
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant) and (
                node.value.value is Ellipsis
                or isinstance(node.value.value, str)
            ):
                return None  # `...` placeholder bodies and docstrings
            return self._lower_call_stmt(node)
        if isinstance(node, ast.Delete):
            if len(node.targets) != 1:
                raise self.error("delete one node at a time", node)
            return Delete(target=self._lower_path(node.targets[0]))
        raise self.error(
            f"unsupported statement {type(node).__name__}", node
        )

    def _lower_ann_assign(self, node: ast.AnnAssign) -> Stmt:
        if not isinstance(node.target, ast.Name):
            raise self.error(
                "only local definitions take annotations", node
            )
        local_name = node.target.id
        annotation = self._annotation_name(node)
        info = self.ctx.class_names.get(annotation)
        if info is not None and info.is_tree:
            # n: TreeClass = this.Child  ->  an alias definition
            if node.value is None:
                raise self.error(
                    "tree aliases need a target node", node
                )
            target = self._lower_path(node.value)
            stmt = AliasDef(
                name=local_name, type_name=annotation, target=target
            )
            self.scope.aliases[local_name] = annotation
            return stmt
        init = (
            self._lower_expr(node.value) if node.value is not None else None
        )
        self.scope.locals[local_name] = annotation
        return LocalDef(name=local_name, type_name=annotation, init=init)

    def _annotation_name(self, node: ast.AnnAssign) -> str:
        annotation = node.annotation
        if isinstance(annotation, ast.Name):
            name = annotation.id
        elif isinstance(annotation, ast.Constant) and isinstance(
            annotation.value, str
        ):
            name = annotation.value
        else:
            raise self.error(
                "local annotations must be plain names", node
            )
        if name in _PRIMITIVES:
            return _PRIMITIVES[name]
        if (
            name in self.ctx.class_names
            or name in self.program.opaque_classes
        ):
            return name
        raise self.error(f"unknown local type {name!r}", node)

    def _lower_assign(self, node: ast.Assign) -> Stmt:
        if len(node.targets) != 1:
            raise self.error("chained assignment is not supported", node)
        target = node.targets[0]
        # this.Child = TreeClass()  ->  new-statement
        if (
            isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Name)
            and node.value.func.id in self.ctx.class_names
            and self.ctx.class_names[node.value.func.id].is_tree
        ):
            if node.value.args or node.value.keywords:
                raise self.error(
                    "tree constructors take no arguments (trivial "
                    "ctor, paper §3.5)",
                    node,
                )
            return New(
                target=self._lower_path(target),
                type_name=node.value.func.id,
            )
        return Assign(
            target=self._lower_path(target),
            value=self._lower_expr(node.value),
        )

    def _lower_aug_assign(self, node: ast.AugAssign) -> Stmt:
        op = _BIN_OPS.get(type(node.op))
        if op is None:
            raise self.error(
                f"unsupported augmented op {type(node.op).__name__}", node
            )
        path = self._lower_path(node.target)
        return Assign(
            target=path,
            value=BinOp(
                op=op,
                lhs=DataAccess(path=path),
                rhs=self._lower_expr(node.value),
            ),
        )

    def _lower_call_stmt(self, node: ast.Expr) -> Stmt:
        call = node.value
        if not isinstance(call, ast.Call):
            raise self.error(
                "expression statements must be calls", node
            )
        if call.keywords:
            raise self.error("calls take positional arguments only", call)
        args = tuple(self._lower_expr(arg) for arg in call.args)
        func = call.func
        if isinstance(func, ast.Name):
            if func.id in self.program.pure_functions:
                return PureStmt(
                    call=PureCall(func_name=func.id, args=args)
                )
            raise self.error(f"unknown function {func.id!r}", call)
        if isinstance(func, ast.Attribute):
            return self._make_traverse(func, args)
        raise self.error("unsupported call form", call)

    def _make_traverse(
        self, func: ast.Attribute, args: tuple[Expr, ...]
    ) -> TraverseStmt:
        base, steps = self._chain(func.value)
        method_name = func.attr
        if base != self.this_name:
            raise self.error(
                "traversal calls must be invoked on the receiver or a "
                "direct child (rule 7)",
                func,
            )
        if len(steps) == 0:
            receiver = Receiver(child=None)
            receiver_type = self.owner
        elif len(steps) == 1:
            field = self.program.resolve_field(self.owner, steps[0].name)
            if not field.is_child:
                raise self.error(
                    f"{steps[0].name!r} is not a child field", func
                )
            receiver = Receiver(child=field)
            receiver_type = field.type_name
        else:
            raise self.error(
                "traversal receivers are the receiver or one child hop "
                "(rule 7)",
                func,
            )
        if not self.program.has_method(receiver_type, method_name):
            raise self.error(
                f"type {receiver_type} has no traversal {method_name!r}",
                func,
            )
        return TraverseStmt(
            receiver=receiver, method_name=method_name, args=args
        )

    # -- paths ----------------------------------------------------------

    def _chain(self, node: ast.expr) -> tuple[str, list[RawStep]]:
        steps: list[RawStep] = []
        while True:
            if isinstance(node, ast.Attribute):
                steps.append(RawStep(name=node.attr))
                node = node.value
                continue
            cast_to = self._cast_parts(node)
            if cast_to is not None:
                # cast(T, x).m — the cast applies to the chain built so
                # far, i.e. to the step we appended last (walking
                # outside-in), mirroring RawStep's pre_cast convention
                type_name, inner = cast_to
                if not steps or steps[-1].pre_cast is not None:
                    raise self.error(
                        "a cast must be followed by a member access "
                        "(cast(T, x).member)",
                        node,
                    )
                steps[-1] = RawStep(
                    name=steps[-1].name, pre_cast=type_name
                )
                node = inner
                continue
            break
        if not isinstance(node, ast.Name):
            raise self.error(
                "member chains must be rooted at the receiver, a "
                "local, or a global",
                node,
            )
        steps.reverse()
        return node.id, steps

    def _cast_parts(
        self, node: ast.expr
    ) -> Optional[tuple[str, ast.expr]]:
        """(target type name, inner expression) when *node* is a
        ``cast(T, x)`` / ``repro.cast(T, x)`` call, else None."""
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        is_cast = (isinstance(func, ast.Name) and func.id == "cast") or (
            isinstance(func, ast.Attribute) and func.attr == "cast"
        )
        if not is_cast:
            return None
        if len(node.args) != 2 or node.keywords:
            raise self.error(
                "cast takes exactly (TreeClass, expression)", node
            )
        target = node.args[0]
        if isinstance(target, ast.Name):
            type_name = target.id
        elif isinstance(target, ast.Constant) and isinstance(
            target.value, str
        ):
            type_name = target.value
        else:
            raise self.error(
                "the cast target must be a tree class (or its name)",
                node,
            )
        return type_name, node.args[1]

    def _lower_path(self, node: ast.expr) -> AccessPath:
        base, steps = self._chain(node)
        if base == self.this_name:
            return resolve_member_chain(
                self.program, "this", self.owner, steps, start_is_tree=True
            )
        if base in self.scope.aliases:
            return resolve_member_chain(
                self.program,
                f"local:{base}",
                self.scope.aliases[base],
                steps,
                start_is_tree=True,
            )
        if base in self.scope.locals:
            return resolve_member_chain(
                self.program,
                f"local:{base}",
                self.scope.locals[base],
                steps,
                start_is_tree=False,
            )
        if base in self.program.globals:
            return resolve_member_chain(
                self.program,
                f"global:{base}",
                self.program.globals[base].type_name,
                steps,
                start_is_tree=False,
            )
        raise self.error(f"unknown name {base!r}", node)

    # -- expressions ----------------------------------------------------

    def _lower_expr(self, node: ast.expr) -> Expr:
        if isinstance(node, ast.Constant):
            value = node.value
            if isinstance(value, bool):
                return Const(value, "bool")
            if isinstance(value, int):
                return Const(value, "int")
            if isinstance(value, float):
                return Const(value, "double")
            if isinstance(value, str) and len(value) == 1:
                return Const(value, "char")
            raise self.error(f"unsupported literal {value!r}", node)
        if isinstance(node, ast.BinOp):
            op = _BIN_OPS.get(type(node.op))
            if op is None:
                raise self.error(
                    f"unsupported operator {type(node.op).__name__}", node
                )
            return BinOp(
                op=op,
                lhs=self._lower_expr(node.left),
                rhs=self._lower_expr(node.right),
            )
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise self.error(
                    "chained comparisons are not representable; split "
                    "them with `and`",
                    node,
                )
            op = _CMP_OPS.get(type(node.ops[0]))
            if op is None:
                raise self.error(
                    f"unsupported comparison "
                    f"{type(node.ops[0]).__name__}",
                    node,
                )
            return BinOp(
                op=op,
                lhs=self._lower_expr(node.left),
                rhs=self._lower_expr(node.comparators[0]),
            )
        if isinstance(node, ast.BoolOp):
            op = "&&" if isinstance(node.op, ast.And) else "||"
            lowered = [self._lower_expr(v) for v in node.values]
            result = lowered[0]
            for rhs in lowered[1:]:
                result = BinOp(op=op, lhs=result, rhs=rhs)
            return result
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return UnaryOp(op="-", operand=self._lower_expr(node.operand))
            if isinstance(node.op, ast.Not):
                return UnaryOp(op="!", operand=self._lower_expr(node.operand))
            raise self.error(
                f"unsupported unary {type(node.op).__name__}", node
            )
        if isinstance(node, ast.Call):
            if not isinstance(node.func, ast.Name):
                raise self.error(
                    "only pure functions are callable inside "
                    "expressions (traversal calls are statements)",
                    node,
                )
            if node.func.id not in self.program.pure_functions:
                raise self.error(
                    f"unknown pure function {node.func.id!r}", node
                )
            if node.keywords:
                raise self.error(
                    "calls take positional arguments only", node
                )
            return PureCall(
                func_name=node.func.id,
                args=tuple(self._lower_expr(a) for a in node.args),
            )
        if isinstance(node, (ast.Name, ast.Attribute)):
            return DataAccess(path=self._lower_path(node))
        raise self.error(
            f"unsupported expression {type(node).__name__}", node
        )
