"""The unified workload API.

Three layers, importable from ``repro`` directly:

* the **embedded frontend** (:mod:`repro.api.embed`) —
  ``@repro.schema`` / ``@repro.traversal`` / ``@repro.pure`` /
  ``@repro.entry`` / ``repro.Global`` declare traversal programs as
  typed Python and lower them to the same IR (and the same content
  hashes) as the string DSL;
* the **workload bundle** (:mod:`repro.api.workload`) —
  :class:`Workload` carries program/source, impls, globals and the tree
  builder as one object accepted by ``pipeline.compile``, the service,
  the bench runner and the CLI;
* the **session facade** (:mod:`repro.api.session`) —
  ``repro.Session(cache_dir=...).compile(w).run(trees)`` hides the
  options/cache/executor plumbing.
"""

from repro.api.embed import (
    Global,
    cast,
    default_globals,
    entry,
    entry_calls,
    lower,
    lower_module,
    pure,
    schema,
    traversal,
)
from repro.api.session import CompiledWorkload, RunOutcome, Session
from repro.api.workload import Workload

__all__ = [
    "Global",
    "cast",
    "default_globals",
    "entry",
    "entry_calls",
    "lower",
    "lower_module",
    "pure",
    "schema",
    "traversal",
    "Workload",
    "Session",
    "CompiledWorkload",
    "RunOutcome",
]
