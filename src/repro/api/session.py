"""The :class:`Session` facade: compile + cache + execute behind one object.

Everything the compile/runtime/service stack can do for a workload is
reachable from here::

    import repro
    from repro.workloads.render import render_workload

    with repro.Session(cache_dir="./artifacts") as session:
        compiled = session.compile(render_workload())
        outcome = compiled.run(trees=8, pages=2)
        print(outcome.summaries[0], session.stats()["executor"]["waves"])

``Session`` owns a :class:`~repro.pipeline.options.CompileOptions`
template (so one ``cache_dir`` — and one ``peers`` list of read-only
warm stores, local roots or remote ``repro serve`` URLs — covers the
in-memory compile cache, the on-disk artifact store, and the
executor's workers), and a lazily created
:class:`~repro.service.executor.BatchExecutor` (so sessions that only
compile never spin up a pool). The old spellings — calling
``pipeline.compile`` with loose impls, hand-building ``ExecRequest``s,
wiring a ``BatchExecutor`` yourself — keep working as deprecation
shims, but this is the supported front door.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence, Union

from repro import obs
from repro.api.workload import Workload
from repro.pipeline import CompileOptions, CompileResult
from repro.pipeline import compile as pipeline_compile


@dataclass
class RunOutcome:
    """One forest execution: per-tree results plus the wave's stats."""

    workload: Workload
    trees: list  # TreeResult, in forest order
    wall_seconds: float

    @property
    def summaries(self) -> list:
        return [t.summary for t in self.trees]

    def __len__(self) -> int:
        return len(self.trees)


@dataclass
class CompiledWorkload:
    """A workload bound to its compile result and owning session —
    what :meth:`Session.compile` returns; ``.run(trees)`` executes."""

    session: "Session"
    workload: Workload
    result: CompileResult

    @property
    def source_hash(self) -> str:
        return self.result.source_hash

    @property
    def fused(self):
        return self.result.fused

    @property
    def fused_source(self) -> Optional[str]:
        return self.result.fused_source

    @property
    def cache_hit(self) -> bool:
        return self.result.cache_hit

    def run(
        self,
        trees: Union[int, Sequence] = 1,
        *,
        fused: bool = True,
        collect: Optional[Callable] = None,
        **spec_kwargs,
    ) -> RunOutcome:
        return self.session.run(
            self.workload,
            trees,
            fused=fused,
            collect=collect,
            **spec_kwargs,
        )


class Session:
    """Compile and run workloads with shared caching and one executor."""

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        *,
        peers: tuple = (),
        options: Optional[CompileOptions] = None,
        workers: int = 2,
        backend: str = "thread",
        memory_budget: Optional[int] = None,
        disk_budget: Optional[int] = None,
        layout: Optional[str] = None,
    ):
        base = options if options is not None else CompileOptions()
        patches = {}
        if cache_dir is not None and base.cache_dir is None:
            patches["cache_dir"] = cache_dir
        if peers and not base.peers:
            # read-only warm sources: second store roots or running
            # `repro serve` base URLs, consulted after memory and disk
            patches["peers"] = tuple(peers)
        if memory_budget is not None:
            patches["memory_budget"] = memory_budget
        if disk_budget is not None:
            patches["disk_budget"] = disk_budget
        if layout is not None:
            # tree layout for every compile/run this session issues
            # ('object' | 'pooled'); participates in all cache keys
            patches["layout"] = layout
        if patches:
            base = replace(base, **patches)
        self.options = base
        self.cache_dir = self.options.cache_dir
        self.peers = tuple(self.options.peers)
        self.workers = workers
        self.backend = backend
        self._executor = None
        # a memory budget gets this session its *own* memory tier: the
        # process-shared GLOBAL_CACHE must never be resized by one
        # session's budget (it would evict every other caller's results)
        if self.options.memory_budget is not None:
            from repro.storage import MemoryTier

            self._memory = MemoryTier(
                max_bytes=self.options.memory_budget
            )
        else:
            from repro.pipeline.cache import GLOBAL_CACHE

            self._memory = GLOBAL_CACHE

    # -- compilation ----------------------------------------------------

    def compile(
        self,
        workload: Union[Workload, str],
        *,
        options: Optional[CompileOptions] = None,
        incremental: bool = True,
        reuse_result: bool = True,
        **option_overrides,
    ) -> CompiledWorkload:
        """Compile a workload (or raw Grafter source) through the staged
        pipeline under this session's options. Keyword overrides patch
        individual option fields (``emit=False``, ``mode=...``, …)."""
        effective = options if options is not None else self.options
        if option_overrides:
            effective = replace(effective, **option_overrides)
        if isinstance(workload, str):
            workload = Workload(
                name="inline",
                source=workload,
                build_tree=_no_build_tree,
            )
        # the trace root for an API-driven compile (mirrors the
        # service's /submit root); CompileOptions(trace=True) forces
        # recording even with the process tracer off
        with obs.span(
            "session.compile",
            force=bool(effective.trace),
            workload=workload.name,
        ) as span:
            result = pipeline_compile(
                workload,
                options=effective,
                cache=self._memory,
                incremental=incremental,
                reuse_result=reuse_result,
            )
            span.set(
                cache_hit=result.cache_hit,
                source_hash=result.source_hash[:12],
            )
        return CompiledWorkload(
            session=self, workload=workload, result=result
        )

    def recompile(
        self,
        workload: Union[Workload, str],
        *,
        options: Optional[CompileOptions] = None,
        exec_ahead: bool = False,
        **option_overrides,
    ) -> CompiledWorkload:
        """Re-run the pipeline for a (possibly edited) workload, reusing
        unchanged compilation units.

        The whole-result cache is deliberately bypassed — ``recompile``
        means "the workload may have changed; rebuild it" — but every
        pass still consults the per-unit artifact layer, so after
        editing one traversal in a multi-traversal workload only the
        dirtied units re-run analysis/fusion/emit while the rest load
        from the unit store (byte-identical output, see
        ``result.unit_report()``)::

            compiled = session.compile(workload_v1)
            ...edit one traversal...
            recompiled = session.recompile(workload_v2)
            print(recompiled.result.unit_report())

        Unit-assembled modules normally defer their ``exec`` to the
        first run (like a disk-restored artifact). ``exec_ahead=True``
        execs the re-emitted modules before returning, spending that
        cost inside the editor's save-to-run gap so the first ``run()``
        after an edit pays none of it.
        """
        compiled = self.compile(
            workload,
            options=options,
            incremental=True,
            reuse_result=False,
            **option_overrides,
        )
        if exec_ahead:
            for module in (
                compiled.result.compiled_fused,
                compiled.result.compiled_unfused,
            ):
                if module is not None:
                    module.namespace  # force the deferred exec now
        return compiled

    # -- execution ------------------------------------------------------

    @property
    def executor(self):
        """The session's batch executor (created on first use)."""
        if self._executor is None:
            from repro.service.executor import BatchExecutor

            self._executor = BatchExecutor(
                workers=self.workers,
                backend=self.backend,
                cache_dir=self.cache_dir,
                peers=self.peers,
            )
        return self._executor

    def run(
        self,
        workload: Workload,
        trees: Union[int, Sequence] = 1,
        *,
        fused: bool = True,
        collect: Optional[Callable] = None,
        options: Optional[CompileOptions] = None,
        mode: str = "compiled",
        **spec_kwargs,
    ) -> RunOutcome:
        """Compile-if-needed and execute a forest; raises on failure.

        ``mode="interpret"`` skips compilation entirely and runs the
        reference interpreter (:mod:`repro.interp`) — the
        zero-compile-latency tier for cold programs or semantics
        cross-checks; ``fused`` is ignored there.
        """
        request = workload.request(
            trees,
            options=options if options is not None else self.options,
            fused=fused,
            collect=collect,
            mode=mode,
            **spec_kwargs,
        )
        effective = request.options
        with obs.span(
            "session.run",
            force=bool(effective.trace),
            workload=workload.name,
            trees=len(request.trees),
            mode=mode,
        ) as span:
            if request.trace_context is None and span.recorded:
                request.trace_context = span.context
            result = self.executor.run([request])[0]
        if not result.ok:
            raise RuntimeError(
                f"workload {workload.name!r} failed: {result.error}"
            )
        return RunOutcome(
            workload=workload,
            trees=result.trees,
            wall_seconds=result.wall_seconds,
        )

    def submit(self, workload: Workload, trees=1, **kwargs):
        """Async variant of :meth:`run`: returns the executor's future."""
        request = workload.request(
            trees, options=kwargs.pop("options", self.options), **kwargs
        )
        return self.executor.submit(request)

    # -- introspection --------------------------------------------------

    def stats(self) -> dict:
        stats = {"compile_cache": self._memory.stats()}
        if self._executor is not None:
            stats["executor"] = self._executor.stats()
        if self.cache_dir is not None:
            from repro.service.store import store_for

            stats["store"] = store_for(self.cache_dir).stats()
        tiers = self._tiers()
        if tiers is not None:
            stats["storage"] = tiers.stats()
        return stats

    def _tiers(self):
        """The session's storage stack (memory → disk → peers), shared
        with every compile run under its options."""
        from repro.pipeline.driver import _tiers_for

        return _tiers_for(self._memory, self.options)

    def gc(
        self,
        pass_name: Optional[str] = None,
        max_age_seconds: Optional[float] = None,
        max_bytes: Optional[int] = None,
    ) -> dict:
        """Run one GC policy over the session's writable tiers — e.g.
        ``session.gc("fusion", max_age_seconds=7 * 86400)`` drops week-old
        fusion plans while leaving every other pass's units intact."""
        tiers = self._tiers()
        if tiers is None:
            return {"total": {"removed": 0, "reclaimed_bytes": 0}}
        return tiers.gc(
            pass_name=pass_name,
            max_age_seconds=max_age_seconds,
            max_bytes=max_bytes,
        )

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _no_build_tree(program, heap, spec):  # pragma: no cover - guard only
    raise RuntimeError(
        "this inline-source workload has no tree builder; construct a "
        "Workload with build_tree to execute it"
    )
