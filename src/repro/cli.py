"""Command-line interface: static operations on Grafter source files,
plus the traversal service.

Usage (also via ``python -m repro``)::

    python -m repro parse   traversals.grafter   # validate + summary
    python -m repro print   traversals.grafter   # pretty-print the IR
    python -m repro fuse    traversals.grafter   # show fused traversals
    python -m repro explain traversals.grafter   # grouping diagnostics
    python -m repro dot     traversals.grafter   # dependence graph (dot)
    python -m repro compile traversals.grafter --timings
                                                # full staged pipeline
    python -m repro exec  --workload render --trees 64 --workers 2
                                                # one-shot batch execution
    python -m repro exec  --workload render --interp
                                                # reference interpreter
                                                # (no compilation)
    python -m repro fuzz  --cases 200           # differential fuzzing:
                                                # interpreter vs fused vs
                                                # unfused, object + pooled
    python -m repro fuzz  --replay repro.json   # replay a saved case
    python -m repro trace render --trees 4      # traced compile+exec:
                                                # span flame summary
                                                # (--out writes Chrome
                                                # trace JSON)
    python -m repro serve --port 8177 --cache-dir ./artifacts
                                                # HTTP traversal service
    python -m repro store gc --cache-dir ./artifacts --pass fusion
                                                # per-pass store GC
    python -m repro compile t.grafter --cache-dir ./mine --peer /mnt/shared
                                                # warm-start from a peer store

All compilation goes through ``repro.pipeline.compile()`` — repeated
invocations of one process (and every library caller in between) share
the content-addressed compile cache; ``--cache-dir`` extends that to an
on-disk artifact store shared *across* processes. ``compile --timings``
prints the per-pass wall-time and IR-size report.

Pure functions referenced by the source are accepted without
implementations; the static pipeline (parsing, analysis, fusion) never
calls them.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import __version__, obs
from repro.analysis.call_automata import AnalysisContext
from repro.analysis.dependence import build_dependence_graph
from repro.errors import ReproError
from repro.frontend import parse_program
from repro.fusion.diagnostics import explain_sequence
from repro.fusion.fused_ir import print_fused_program
from repro.ir.printer import print_program
from repro.ir.validate import LanguageMode
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _read_source(arg: str) -> tuple[str, str]:
    """Resolve the ``compile`` command's source argument.

    Accepts a file path, ``-`` for stdin, or inline Grafter source
    (anything containing a brace that is not an existing file). Returns
    ``(source_text, display_name)``.
    """
    import os

    if arg == "-":
        return sys.stdin.read(), "<stdin>"
    if os.path.exists(arg):
        return _read(arg), arg
    if "{" in arg or "\n" in arg:
        return arg, "<inline>"
    raise ReproError(
        f"no such file {arg!r} (pass '-' to read stdin, or inline "
        f"source containing a class declaration)"
    )


def _load(path: str, mode: str):
    language_mode = (
        LanguageMode.TREEFUSER if mode == "treefuser" else LanguageMode.GRAFTER
    )
    return parse_program(_read(path), name=path, mode=language_mode)


def _compile(args, emit: bool):
    """Run the staged pipeline on the source named by *args* (a file
    path for every command; also ``-``/inline text for ``compile``)."""
    options = CompileOptions(
        mode=args.mode,
        emit=emit,
        cache_dir=getattr(args, "cache_dir", None),
        peers=tuple(getattr(args, "peer", None) or ()),
        layout=getattr(args, "layout", None) or "object",
    )
    if getattr(args, "flexible_source", False):
        source, name = _read_source(args.file)
    else:
        source, name = _read(args.file), args.file
    args.display_name = name
    # --explain demonstrates per-unit reuse, so it skips the
    # whole-result lookup (which would short-circuit every pass) while
    # keeping the unit layer — the second run of a warm store then
    # reports all-hits instead of "served from cache"
    return pipeline_compile(
        source,
        options=options,
        name=name,
        reuse_result=not getattr(args, "explain", False),
    )


def _entry_members(program):
    if program.root_type_name is None or not program.entry:
        raise ReproError(
            "the source needs a main() with entry calls for this command"
        )
    concrete = program.concrete_subtypes(program.root_type_name)
    if not concrete:
        raise ReproError("entry root type has no concrete subtypes")

    # demonstrate on the concrete root type with the most traversal code
    # (sentinel types resolve to empty bodies and show nothing useful)
    def body_weight(type_name: str) -> int:
        return sum(
            len(program.resolve_method(type_name, call.method_name).body)
            for call in program.entry
        )

    root = max(concrete, key=body_weight)
    return [
        program.resolve_method(root, call.method_name) for call in program.entry
    ]


def cmd_parse(args) -> int:
    program = _load(args.file, args.mode)
    methods = sum(1 for _ in program.all_methods())
    print(f"{args.file}: OK")
    print(f"  tree types: {len(program.tree_types)} "
          f"({', '.join(sorted(program.tree_types))})")
    print(f"  traversal methods: {methods}")
    print(f"  globals: {len(program.globals)}, "
          f"pure functions: {len(program.pure_functions)}")
    if program.entry:
        calls = ", ".join(c.method_name for c in program.entry)
        print(f"  entry: {program.root_type_name} -> {calls}")
    return 0


def cmd_print(args) -> int:
    program = _load(args.file, args.mode)
    print(print_program(program))
    return 0


def cmd_fuse(args) -> int:
    result = _compile(args, emit=False)
    fused = result.fused
    stats = fused.stats()
    print(f"// {stats['units']} fused traversal functions, "
          f"max width {stats['max_width']}, "
          f"{stats['group_calls']} fused call sites")
    print(print_fused_program(fused))
    return 0


def cmd_explain(args) -> int:
    # explain_sequence derives its own grouping diagnostics; it only
    # needs the parsed program, not a full pipeline run
    program = _load(args.file, args.mode)
    members = _entry_members(program)
    explanation = explain_sequence(program, members)
    print(explanation.describe())
    return 0


def cmd_dot(args) -> int:
    program = _load(args.file, args.mode)
    members = _entry_members(program)
    ctx = AnalysisContext(program)
    graph = build_dependence_graph(ctx, members)
    print(graph.to_dot())
    return 0


def cmd_compile(args) -> int:
    if args.emit_python and args.no_emit:
        raise ReproError("--emit-python requires emission; drop --no-emit")
    result = _compile(args, emit=not args.no_emit)
    stats = result.fused.stats()
    if args.emit_python:
        with open(args.emit_python, "w") as handle:
            handle.write(result.fused_source or "")
    if args.json:
        doc = {
            "file": args.display_name,
            "cache_hit": result.cache_hit,
            "source_hash": result.source_hash,
            "fused_units": stats["units"],
            "max_width": stats["max_width"],
            "fused_call_sites": stats["group_calls"],
        }
        if not args.no_emit and result.fused_source is not None:
            doc["generated_lines"] = {
                "unfused": len(result.unfused_source.splitlines()),
                "fused": len(result.fused_source.splitlines()),
            }
        if args.timings:
            doc["timings"] = [
                {
                    "pass": t.name,
                    "seconds": t.seconds,
                    "detail": t.detail,
                }
                for t in result.timings
            ]
        if args.explain:
            doc["unit_summary"] = result.unit_summary()
        print(json.dumps(doc, indent=2))
        return 0
    status = "cache hit" if result.cache_hit else "cold"
    print(f"{args.display_name}: compiled ({status})")
    print(f"  fused units: {stats['units']}, "
          f"max width {stats['max_width']}, "
          f"fused call sites: {stats['group_calls']}")
    # a cached emit=True result can serve a --no-emit run; only report
    # the generated modules when emission was actually requested
    if not args.no_emit and result.fused_source is not None:
        print(f"  generated python: "
              f"{len(result.unfused_source.splitlines())} lines unfused, "
              f"{len(result.fused_source.splitlines())} lines fused")
    if args.emit_python:
        print(f"  fused module written to {args.emit_python}")
    if args.timings:
        print(result.timings_report())
    if args.explain:
        print(result.unit_report())
    return 0


def cmd_exec(args) -> int:
    """One-shot batched execution of a named workload."""
    from repro.service.api import WORKLOADS, TraversalService

    if args.workload not in WORKLOADS:
        raise ReproError(
            f"unknown workload {args.workload!r}; "
            f"have {', '.join(sorted(WORKLOADS))}"
        )
    spec = WORKLOADS[args.workload]
    if args.pages is not None and spec.size_kwarg != "pages":
        raise ReproError(
            f"--pages is the render size knob; {args.workload} scales "
            f"with --size (its {spec.size_kwarg!r})"
        )
    if args.pages is not None and args.size is not None:
        raise ReproError(
            "--pages and --size are the same knob; pass one of them"
        )
    size = args.size if args.size is not None else args.pages
    layout = getattr(args, "layout", None)
    mode = "interpret" if getattr(args, "interp", False) else None
    tracing = bool(getattr(args, "trace_out", None))
    if tracing:
        obs.enable()
    trace_id = None
    with TraversalService(
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
        peers=tuple(args.peer or ()),
    ) as service:
        # one root span for the whole invocation: executor.run is
        # synchronous on this thread, so every wave/group/shard span
        # nests under it (shards via the serialized context)
        with obs.span(
            "cli.exec", force=tracing, workload=args.workload
        ) as root:
            trace_id = root.trace_id
            if args.sequential:
                # one request per tree, executed one wave at a time —
                # the single-tree baseline the batched mode is
                # measured against
                results = [
                    service.executor.run(
                        [
                            spec.make_request(
                                trees=1, size=size, layout=layout,
                                mode=mode,
                            )
                        ]
                    )[0]
                    for _ in range(args.trees)
                ]
            else:
                results = service.executor.run(
                    [
                        spec.make_request(
                            trees=args.trees, size=size, layout=layout,
                            mode=mode,
                        )
                    ]
                )
        failed = [r for r in results if not r.ok]
        if failed:
            raise ReproError(failed[0].error or "execution failed")
        stats = service.executor.stats()
        trees = sum(len(r.trees) for r in results)
        if tracing:
            spans = obs.get_tracer().spans(trace_id)
            obs.write_chrome_trace(spans, args.trace_out)
        batch_mode = "sequential" if args.sequential else "batched"
        if getattr(args, "json", False):
            doc = {
                "workload": args.workload,
                "trees": trees,
                "mode": batch_mode,
                "execution": mode or "compiled",
                "backend": args.backend,
                "workers": args.workers,
                "layout": layout,
                "tree_latency": stats["tree_latency"],
                "shard_latency": stats["shard_latency"],
                "batches": stats["batches"],
                "waves": stats["waves"],
                "completed_requests": stats["completed_requests"],
                "failed_requests": stats["failed_requests"],
            }
            if args.cache_dir:
                doc["store"] = service.stats()["store"]
            if tracing:
                doc["trace_id"] = trace_id
                doc["trace_out"] = args.trace_out
            print(json.dumps(doc, indent=2))
            return 0
        layout_note = f", {layout} layout" if layout else ""
        interp_note = ", interpreted" if mode == "interpret" else ""
        print(f"{args.workload}: {trees} trees executed ({batch_mode}, "
              f"{args.workers} workers, {args.backend} backend"
              f"{layout_note}{interp_note})")
        latency = stats["tree_latency"]
        print(f"  tree latency: p50 {latency['p50'] * 1e3:.3f} ms, "
              f"p99 {latency['p99'] * 1e3:.3f} ms")
        print(f"  batches: {stats['batches']}, "
              f"completed requests: {stats['completed_requests']}")
        if args.cache_dir:
            store = service.stats()["store"]
            print(f"  store: {store['entries']} entries, "
                  f"{store['loads']} loads, {store['spills']} spills")
        if tracing:
            print(f"  chrome trace ({trace_id}) written to "
                  f"{args.trace_out}")
    return 0


def cmd_trace(args) -> int:
    """Trace one workload end to end (compile + batched execution) and
    print the indented flame summary of every recorded span."""
    from repro.service.api import WORKLOADS, TraversalService

    if args.workload not in WORKLOADS:
        raise ReproError(
            f"unknown workload {args.workload!r}; "
            f"have {', '.join(sorted(WORKLOADS))}"
        )
    spec = WORKLOADS[args.workload]
    obs.enable()
    with TraversalService(
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
    ) as service:
        with obs.span(
            "cli.trace", force=True, workload=args.workload
        ) as root:
            trace_id = root.trace_id
            results = service.executor.run(
                [
                    spec.make_request(
                        trees=args.trees,
                        size=args.size,
                        layout=args.layout,
                        mode=(
                            "interpret"
                            if getattr(args, "interp", False)
                            else None
                        ),
                    )
                ]
            )
        failed = [r for r in results if not r.ok]
        if failed:
            raise ReproError(failed[0].error or "execution failed")
    spans = obs.get_tracer().spans(trace_id)
    print(f"trace {trace_id}: {len(spans)} spans ({args.workload}, "
          f"{args.trees} trees, {args.backend} backend)")
    print(obs.render_tree(spans))
    if args.out:
        obs.write_chrome_trace(spans, args.out)
        print(f"chrome trace written to {args.out} "
              f"(load in chrome://tracing or ui.perfetto.dev)")
    if args.jsonl:
        obs.write_jsonl(spans, args.jsonl)
        print(f"span records written to {args.jsonl}")
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing: seeded random programs + trees executed by
    the reference interpreter and all four compiled forms (fused and
    unfused, object and pooled layouts), diffed on snapshot + globals +
    write-set. Exit status 1 on any divergence."""
    from repro.fuzz import (
        generate_case,
        load_repro,
        minimize_case,
        run_case,
        save_repro,
    )

    if args.replay:
        case = load_repro(args.replay)
        result = run_case(case)
        print(result.report())
        return 0 if result.ok else 1
    failures = 0
    for seed in range(args.seed, args.seed + args.cases):
        result = run_case(generate_case(seed, max_depth=args.max_depth))
        if result.ok:
            if args.verbose:
                print(result.report())
            continue
        failures += 1
        small = minimize_case(result.case)
        minimized = run_case(small)
        if minimized.ok:  # shrinking lost the bug; keep the original
            small, minimized = result.case, result
        print(minimized.report())
        out = args.out or f"fuzz-repro-{seed}.json"
        save_repro(small, out)
        print(f"minimized repro written to {out} "
              f"(replay with: repro fuzz --replay {out})")
    print(f"fuzz: {args.cases} cases from seed {args.seed}, "
          f"{failures} divergence(s)")
    return 1 if failures else 0


def cmd_store(args) -> int:
    """Maintenance operations on an on-disk artifact store."""
    from repro.storage import disk_tier_for

    store = disk_tier_for(args.cache_dir)
    if args.store_command == "stats":
        for key, value in store.stats().items():
            print(f"  {key}: {value}")
        return 0
    if args.store_command == "compact":
        summary = store.compact()
        print(
            f"compacted {args.cache_dir}: {summary['removed']} entries "
            f"removed, {summary['reclaimed_bytes']} bytes reclaimed"
        )
        return 0
    # gc
    if (
        args.gc_pass is None
        and args.max_age_seconds is None
        and args.max_bytes is None
    ):
        raise ReproError(
            "store gc needs --pass, --max-age-seconds, and/or --max-bytes"
        )
    summary = store.gc(
        pass_name=args.gc_pass,
        max_age_seconds=args.max_age_seconds,
        max_bytes=args.max_bytes,
    )
    scope = f"pass {args.gc_pass!r}" if args.gc_pass else "whole store"
    print(
        f"gc {args.cache_dir} ({scope}): {summary['removed']} entries "
        f"removed, {summary['reclaimed_bytes']} bytes reclaimed"
    )
    return 0


def cmd_serve(args) -> int:
    """Run the HTTP traversal service until /shutdown or Ctrl-C."""
    from repro.service.api import TraversalService, make_server

    if getattr(args, "trace", False):
        # every sampled /submit then mints a trace (its id comes back
        # in the submit response; spans serve at GET /trace/<id>)
        obs.enable(sample=args.trace_sample)
    service = TraversalService(
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache_dir,
        peers=tuple(args.peer or ()),
        layout=getattr(args, "layout", None),
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # the smoke test parses this line to find the ephemeral port
    print(f"repro service listening on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        service.close()
    print("repro service stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grafter reproduction: traversal fusion for "
                    "heterogeneous trees (PLDI 2019)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--mode",
        choices=["grafter", "treefuser"],
        default="grafter",
        help="language mode: grafter (default) rejects conditional "
             "traversal calls; treefuser allows them",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, help_text in [
        ("parse", cmd_parse, "validate a source file and print a summary"),
        ("print", cmd_print, "pretty-print the parsed program"),
        ("fuse", cmd_fuse, "synthesize and print the fused traversals"),
        ("explain", cmd_explain, "explain grouping decisions for the entry"),
        ("dot", cmd_dot, "dependence graph of the entry sequence (graphviz)"),
    ]:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("file", help="Grafter source file")
        command.set_defaults(handler=handler)
    compile_cmd = sub.add_parser(
        "compile",
        help="run the full staged pipeline (parse through python emission)",
    )
    compile_cmd.add_argument(
        "file",
        help="Grafter source file, '-' for stdin, or inline source text",
    )
    compile_cmd.set_defaults(flexible_source=True)
    compile_cmd.add_argument(
        "--timings",
        action="store_true",
        help="print the per-pass wall-time and IR-size report",
    )
    compile_cmd.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: one JSON document with the "
             "compile summary (plus timings under --timings and the "
             "unit-reuse summary under --explain)",
    )
    compile_cmd.add_argument(
        "--explain",
        action="store_true",
        help="recompile unit by unit (skipping the whole-result cache) "
             "and print how many compilation units each pass reused",
    )
    compile_cmd.add_argument(
        "--no-emit",
        action="store_true",
        help="stop after fusion (skip python module emission)",
    )
    compile_cmd.add_argument(
        "--emit-python",
        metavar="PATH",
        help="write the generated fused python module to PATH",
    )
    compile_cmd.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persist compiled artifacts to DIR (and reuse artifacts "
             "other processes left there)",
    )
    compile_cmd.add_argument(
        "--peer", metavar="STORE", action="append", default=[],
        help="read-only warm store consulted after --cache-dir: a "
             "second store root or a running 'repro serve' base URL "
             "(repeatable; hits are promoted into local tiers; "
             "payloads are pickles — name only peers you trust)",
    )
    compile_cmd.add_argument(
        "--layout", choices=["object", "pooled"], default="object",
        help="tree layout the generated modules run against: object "
             "(node graph, default) or pooled (structure-of-arrays "
             "forest pools); pooled artifacts content-address "
             "separately from object-graph artifacts",
    )
    compile_cmd.set_defaults(handler=cmd_compile)

    store_cmd = sub.add_parser(
        "store",
        help="maintain an on-disk artifact store (gc, stats, compact)",
    )
    store_sub = store_cmd.add_subparsers(
        dest="store_command", required=True
    )
    gc_cmd = store_sub.add_parser(
        "gc",
        help="policy-driven reclamation: drop units by pass and/or "
             "age, or trim to a byte budget",
    )
    gc_cmd.add_argument(
        "--pass", dest="gc_pass", metavar="NAME", default=None,
        help="scope to one pass's unit artifacts (e.g. fusion, emit); "
             "other passes' units and full results stay intact",
    )
    gc_cmd.add_argument(
        "--max-age-seconds", type=float, default=None,
        help="drop entries older than this (0 drops the whole scope)",
    )
    gc_cmd.add_argument(
        "--max-bytes", type=int, default=None,
        help="LRU-trim the scope to this byte target",
    )
    for name, help_text in [
        ("stats", "print the store's entry/byte/counter statistics"),
        ("compact", "drop corrupt/foreign-version/stale-tmp entries"),
    ]:
        store_sub.add_parser(name, help=help_text)
    for store_sub_cmd in (gc_cmd,) + tuple(
        store_sub.choices[name] for name in ("stats", "compact")
    ):
        store_sub_cmd.add_argument(
            "--cache-dir", metavar="DIR", required=True,
            help="artifact store directory to operate on",
        )
        store_sub_cmd.set_defaults(handler=cmd_store)

    def add_service_args(command, workers_default: int):
        command.add_argument(
            "--workers", type=int, default=workers_default,
            help=f"worker pool size (default {workers_default})",
        )
        command.add_argument(
            "--backend", choices=["thread", "process", "inline"],
            default="thread",
            help="worker pool backend (default thread)",
        )
        command.add_argument(
            "--cache-dir", metavar="DIR",
            help="persistent artifact store directory",
        )
        command.add_argument(
            "--peer", metavar="STORE", action="append", default=[],
            help="read-only warm store (root dir or serve URL) "
                 "consulted after the cache dir (repeatable; payloads "
                 "are pickles — name only peers you trust)",
        )

    exec_cmd = sub.add_parser(
        "exec",
        help="execute a named workload forest through the batch executor",
    )
    exec_cmd.add_argument(
        "--workload", default="render",
        help="registered workload name (render, astlang, kdtree, fmm)",
    )
    exec_cmd.add_argument(
        "--trees", type=int, default=8,
        help="forest size (default 8)",
    )
    exec_cmd.add_argument(
        "--size", type=int, default=None,
        help="per-tree size knob (pages for render, functions for "
             "astlang, depth for kdtree, particles for fmm); each "
             "workload has its own default",
    )
    exec_cmd.add_argument(
        "--pages", type=int, default=None,
        help="legacy spelling of --size for the render workload",
    )
    exec_cmd.add_argument(
        "--sequential", action="store_true",
        help="submit one tree at a time instead of one batched forest",
    )
    exec_cmd.add_argument(
        "--layout", choices=["object", "pooled"], default=None,
        help="tree layout the traversals execute against: object (node "
             "graph, default) or pooled (structure-of-arrays forest "
             "pools — trees are serialized into flat columns, run by "
             "row index, and written back). Pooled artifacts "
             "content-address separately from object-graph artifacts: "
             "the layout participates in every compile/cache key, so a "
             "warm object store never silently serves a pooled run (or "
             "vice versa)",
    )
    exec_cmd.add_argument(
        "--json",
        action="store_true",
        help="machine-readable output: one JSON document with the "
             "execution and latency summary",
    )
    exec_cmd.add_argument(
        "--interp", action="store_true",
        help="run the reference interpreter instead of compiled code: "
             "zero compile latency, identical results (the fallback "
             "tier for cold programs)",
    )
    exec_cmd.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="trace the run and write a Chrome trace_event JSON file "
             "to PATH (load in chrome://tracing or ui.perfetto.dev)",
    )
    add_service_args(exec_cmd, workers_default=2)
    exec_cmd.set_defaults(handler=cmd_exec)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random programs/trees run by the "
             "reference interpreter vs all compiled forms",
    )
    fuzz_cmd.add_argument(
        "--cases", type=int, default=50,
        help="number of seeded cases to run (default 50)",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0,
        help="first seed; cases use seed..seed+cases-1 (default 0)",
    )
    fuzz_cmd.add_argument(
        "--max-depth", type=int, default=4,
        help="generated tree depth (default 4)",
    )
    fuzz_cmd.add_argument(
        "--out", metavar="PATH", default=None,
        help="where to write the minimized repro of the first "
             "divergence (default fuzz-repro-<seed>.json)",
    )
    fuzz_cmd.add_argument(
        "--replay", metavar="PATH", default=None,
        help="re-run one saved repro file instead of a campaign",
    )
    fuzz_cmd.add_argument(
        "--verbose", action="store_true",
        help="print every case's outcome, not just divergences",
    )
    fuzz_cmd.set_defaults(handler=cmd_fuzz)

    trace_cmd = sub.add_parser(
        "trace",
        help="trace one workload (compile + execution) and print the "
             "span flame summary",
    )
    trace_cmd.add_argument(
        "workload",
        help="registered workload name (render, astlang, kdtree, fmm)",
    )
    trace_cmd.add_argument(
        "--trees", type=int, default=4,
        help="forest size (default 4)",
    )
    trace_cmd.add_argument(
        "--size", type=int, default=None,
        help="per-tree size knob (same meaning as exec --size)",
    )
    trace_cmd.add_argument(
        "--layout", choices=["object", "pooled"], default=None,
        help="tree layout to execute against",
    )
    trace_cmd.add_argument(
        "--interp", action="store_true",
        help="trace the reference-interpreter tier (interp.* spans) "
             "instead of the compiled path",
    )
    trace_cmd.add_argument(
        "--workers", type=int, default=1,
        help="worker pool size (default 1 — serial traces read best)",
    )
    trace_cmd.add_argument(
        "--backend", choices=["thread", "process", "inline"],
        default="inline",
        help="worker pool backend (default inline; process "
             "demonstrates cross-pool span propagation)",
    )
    trace_cmd.add_argument(
        "--cache-dir", metavar="DIR",
        help="persistent artifact store directory (adds storage-tier "
             "spans for the disk store)",
    )
    trace_cmd.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write Chrome trace_event JSON to PATH",
    )
    trace_cmd.add_argument(
        "--jsonl", metavar="PATH", default=None,
        help="also write raw span records to PATH, one JSON per line",
    )
    trace_cmd.set_defaults(handler=cmd_trace)

    serve_cmd = sub.add_parser(
        "serve",
        help="run the HTTP traversal service (submit/result/stats)",
    )
    serve_cmd.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_cmd.add_argument(
        "--port", type=int, default=8177,
        help="port to listen on; 0 picks a free port (default 8177)",
    )
    serve_cmd.add_argument(
        "--layout", choices=["object", "pooled"], default=None,
        help="default tree layout for submitted requests (a request's "
             "explicit layout field wins); pooled artifacts "
             "content-address separately — no cache cross-hits",
    )
    serve_cmd.add_argument(
        "--trace",
        action="store_true",
        help="enable request tracing: /submit responses carry a "
             "trace_id and GET /trace/<id> serves the spans",
    )
    serve_cmd.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="fraction of submits to trace when --trace is on "
             "(default 1.0)",
    )
    add_service_args(serve_cmd, workers_default=2)
    serve_cmd.set_defaults(handler=cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
