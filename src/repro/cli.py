"""Command-line interface: static operations on Grafter source files.

Usage (also via ``python -m repro``)::

    python -m repro parse   traversals.grafter   # validate + summary
    python -m repro print   traversals.grafter   # pretty-print the IR
    python -m repro fuse    traversals.grafter   # show fused traversals
    python -m repro explain traversals.grafter   # grouping diagnostics
    python -m repro dot     traversals.grafter   # dependence graph (dot)
    python -m repro compile traversals.grafter --timings
                                                # full staged pipeline

All compilation goes through ``repro.pipeline.compile()`` — repeated
invocations of one process (and every library caller in between) share
the content-addressed compile cache. ``compile --timings`` prints the
per-pass wall-time and IR-size report.

Pure functions referenced by the source are accepted without
implementations; the static pipeline (parsing, analysis, fusion) never
calls them.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.analysis.call_automata import AnalysisContext
from repro.analysis.dependence import build_dependence_graph
from repro.errors import ReproError
from repro.frontend import parse_program
from repro.fusion.diagnostics import explain_sequence
from repro.fusion.fused_ir import print_fused_program
from repro.ir.printer import print_program
from repro.ir.validate import LanguageMode
from repro.pipeline import CompileOptions
from repro.pipeline import compile as pipeline_compile


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _load(path: str, mode: str):
    language_mode = (
        LanguageMode.TREEFUSER if mode == "treefuser" else LanguageMode.GRAFTER
    )
    return parse_program(_read(path), name=path, mode=language_mode)


def _compile(args, emit: bool):
    """Run the staged pipeline on the file named by *args*."""
    options = CompileOptions(mode=args.mode, emit=emit)
    return pipeline_compile(
        _read(args.file), options=options, name=args.file
    )


def _entry_members(program):
    if program.root_type_name is None or not program.entry:
        raise ReproError(
            "the source needs a main() with entry calls for this command"
        )
    concrete = program.concrete_subtypes(program.root_type_name)
    if not concrete:
        raise ReproError("entry root type has no concrete subtypes")

    # demonstrate on the concrete root type with the most traversal code
    # (sentinel types resolve to empty bodies and show nothing useful)
    def body_weight(type_name: str) -> int:
        return sum(
            len(program.resolve_method(type_name, call.method_name).body)
            for call in program.entry
        )

    root = max(concrete, key=body_weight)
    return [
        program.resolve_method(root, call.method_name) for call in program.entry
    ]


def cmd_parse(args) -> int:
    program = _load(args.file, args.mode)
    methods = sum(1 for _ in program.all_methods())
    print(f"{args.file}: OK")
    print(f"  tree types: {len(program.tree_types)} "
          f"({', '.join(sorted(program.tree_types))})")
    print(f"  traversal methods: {methods}")
    print(f"  globals: {len(program.globals)}, "
          f"pure functions: {len(program.pure_functions)}")
    if program.entry:
        calls = ", ".join(c.method_name for c in program.entry)
        print(f"  entry: {program.root_type_name} -> {calls}")
    return 0


def cmd_print(args) -> int:
    program = _load(args.file, args.mode)
    print(print_program(program))
    return 0


def cmd_fuse(args) -> int:
    result = _compile(args, emit=False)
    fused = result.fused
    stats = fused.stats()
    print(f"// {stats['units']} fused traversal functions, "
          f"max width {stats['max_width']}, "
          f"{stats['group_calls']} fused call sites")
    print(print_fused_program(fused))
    return 0


def cmd_explain(args) -> int:
    # explain_sequence derives its own grouping diagnostics; it only
    # needs the parsed program, not a full pipeline run
    program = _load(args.file, args.mode)
    members = _entry_members(program)
    explanation = explain_sequence(program, members)
    print(explanation.describe())
    return 0


def cmd_dot(args) -> int:
    program = _load(args.file, args.mode)
    members = _entry_members(program)
    ctx = AnalysisContext(program)
    graph = build_dependence_graph(ctx, members)
    print(graph.to_dot())
    return 0


def cmd_compile(args) -> int:
    if args.emit_python and args.no_emit:
        raise ReproError("--emit-python requires emission; drop --no-emit")
    result = _compile(args, emit=not args.no_emit)
    stats = result.fused.stats()
    status = "cache hit" if result.cache_hit else "cold"
    print(f"{args.file}: compiled ({status})")
    print(f"  fused units: {stats['units']}, "
          f"max width {stats['max_width']}, "
          f"fused call sites: {stats['group_calls']}")
    # a cached emit=True result can serve a --no-emit run; only report
    # the generated modules when emission was actually requested
    if not args.no_emit and result.fused_source is not None:
        print(f"  generated python: "
              f"{len(result.unfused_source.splitlines())} lines unfused, "
              f"{len(result.fused_source.splitlines())} lines fused")
    if args.emit_python:
        with open(args.emit_python, "w") as handle:
            handle.write(result.fused_source or "")
        print(f"  fused module written to {args.emit_python}")
    if args.timings:
        print(result.timings_report())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grafter reproduction: traversal fusion for "
                    "heterogeneous trees (PLDI 2019)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    parser.add_argument(
        "--mode",
        choices=["grafter", "treefuser"],
        default="grafter",
        help="language mode: grafter (default) rejects conditional "
             "traversal calls; treefuser allows them",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, help_text in [
        ("parse", cmd_parse, "validate a source file and print a summary"),
        ("print", cmd_print, "pretty-print the parsed program"),
        ("fuse", cmd_fuse, "synthesize and print the fused traversals"),
        ("explain", cmd_explain, "explain grouping decisions for the entry"),
        ("dot", cmd_dot, "dependence graph of the entry sequence (graphviz)"),
    ]:
        command = sub.add_parser(name, help=help_text)
        command.add_argument("file", help="Grafter source file")
        command.set_defaults(handler=handler)
    compile_cmd = sub.add_parser(
        "compile",
        help="run the full staged pipeline (parse through python emission)",
    )
    compile_cmd.add_argument("file", help="Grafter source file")
    compile_cmd.add_argument(
        "--timings",
        action="store_true",
        help="print the per-pass wall-time and IR-size report",
    )
    compile_cmd.add_argument(
        "--no-emit",
        action="store_true",
        help="stop after fusion (skip python module emission)",
    )
    compile_cmd.add_argument(
        "--emit-python",
        metavar="PATH",
        help="write the generated fused python module to PATH",
    )
    compile_cmd.set_defaults(handler=cmd_compile)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
