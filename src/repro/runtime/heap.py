"""Heap layout: node addresses and field offsets for the cache simulator.

Nodes are laid out C++-style: an 8-byte header (vtable pointer) followed
by the fields in inheritance order (base-most class first, declaration
order within a class). Child pointers and primitives take 8 bytes; an
opaque object field takes 8 bytes per member, inline. A bump allocator
assigns addresses in construction order — matching how the paper's
workload generators build trees and giving the allocation-order locality
that makes the cache results meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeFailure
from repro.ir.program import Program
from repro.ir.types import is_primitive

WORD = 8
HEADER_BYTES = 8


@dataclass
class TypeLayout:
    """Field offsets (bytes from node base) for one tree type."""

    type_name: str
    size: int
    field_offsets: dict[str, int]
    # member offsets within opaque object fields: (field, member) -> offset
    member_offsets: dict[tuple[str, str], int]

    def offset_of(self, field_name: str, member_name: str | None = None) -> int:
        if member_name is None:
            return self.field_offsets[field_name]
        return self.member_offsets[(field_name, member_name)]


def compute_layout(program: Program, type_name: str) -> TypeLayout:
    offset = HEADER_BYTES
    field_offsets: dict[str, int] = {}
    member_offsets: dict[tuple[str, str], int] = {}
    # base-most first: reverse MRO
    for owner_name in reversed(program.mro(type_name)):
        owner = program.tree_types[owner_name]
        for field in owner.own_fields():
            field_offsets[field.name] = offset
            if field.is_child or is_primitive(field.type_name):
                offset += WORD
            else:
                opaque = program.opaque_classes[field.type_name]
                for member_name in opaque.fields:
                    member_offsets[(field.name, member_name)] = offset
                    offset += WORD
    # round node size up to a 16-byte allocation boundary (glibc-like)
    size = (offset + 15) & ~15
    return TypeLayout(
        type_name=type_name,
        size=size,
        field_offsets=field_offsets,
        member_offsets=member_offsets,
    )


class Heap:
    """Bump allocator handing out node and global addresses."""

    GLOBALS_BASE = 0x1000
    NODES_BASE = 0x100000

    def __init__(self, program: Program):
        self.program = program
        self._layouts: dict[str, TypeLayout] = {}
        self._next = self.NODES_BASE
        self.allocated_nodes = 0
        self.allocated_bytes = 0
        # globals live in their own segment
        self.global_addresses: dict[str, int] = {}
        offset = self.GLOBALS_BASE
        for var in program.globals.values():
            self.global_addresses[var.name] = offset
            if is_primitive(var.type_name):
                offset += WORD
            else:
                opaque = program.opaque_classes[var.type_name]
                offset += WORD * max(1, len(opaque.fields))

    def layout(self, type_name: str) -> TypeLayout:
        layout = self._layouts.get(type_name)
        if layout is None:
            layout = compute_layout(self.program, type_name)
            self._layouts[type_name] = layout
        return layout

    def allocate(self, type_name: str) -> int:
        layout = self.layout(type_name)
        address = self._next
        self._next += layout.size
        self.allocated_nodes += 1
        self.allocated_bytes += layout.size
        return address

    def global_address(self, name: str, member: str | None = None) -> int:
        base = self.global_addresses.get(name)
        if base is None:
            raise RuntimeFailure(f"unknown global {name!r}")
        if member is None:
            return base
        opaque = self.program.opaque_classes[self.program.globals[name].type_name]
        index = list(opaque.fields).index(member)
        return base + WORD * index

    @property
    def footprint_bytes(self) -> int:
        """Total bytes of live tree data (the paper's 'tree size')."""
        return self.allocated_bytes
