"""Runtime: tree nodes, heap layout, interpreter, execution metrics.

The reproduction's analogue of the paper's compiled binaries + hardware
counters. Both the original (unfused) program and the synthesized fused
traversals run on the same interpreter with the same instruction cost
model and the same simulated memory system, so the fused/unfused ratios
reported by the benchmark harness are apples-to-apples.
"""

from repro.runtime.values import ObjectValue, default_value
from repro.runtime.heap import Heap, TypeLayout
from repro.runtime.node import Node
from repro.runtime.stats import (
    CostModel,
    ExecStats,
    LatencyHistogram,
    LatencySeries,
)
from repro.runtime.interpreter import Interpreter

__all__ = [
    "ObjectValue",
    "default_value",
    "Heap",
    "TypeLayout",
    "Node",
    "CostModel",
    "ExecStats",
    "LatencyHistogram",
    "LatencySeries",
    "Interpreter",
]
