"""Runtime values: primitives and opaque objects.

Primitives map to Python ints/floats/bools/one-char strings. Opaque C++
objects (``String``, ``BorderInfo``, ...) become :class:`ObjectValue` —
a named bag of primitive members with value semantics (copied on
assignment and parameter passing, like the by-value objects in the
paper's language).
"""

from __future__ import annotations

from repro.errors import RuntimeFailure
from repro.ir.program import Program
from repro.ir.types import default_primitive, is_primitive


class ObjectValue:
    """A by-value opaque object (e.g. ``String`` with a ``Length``)."""

    __slots__ = ("class_name", "members")

    def __init__(self, class_name: str, members: dict):
        self.class_name = class_name
        self.members = members

    def copy(self) -> "ObjectValue":
        return ObjectValue(self.class_name, dict(self.members))

    def get(self, member: str):
        if member not in self.members:
            raise RuntimeFailure(
                f"object {self.class_name} has no member {member!r}"
            )
        return self.members[member]

    def set(self, member: str, value) -> None:
        if member not in self.members:
            raise RuntimeFailure(
                f"object {self.class_name} has no member {member!r}"
            )
        self.members[member] = value

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, ObjectValue)
            and self.class_name == other.class_name
            and self.members == other.members
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.members.items())
        return f"{self.class_name}({inner})"


def default_value(program: Program, type_name: str):
    """The zero value a default-constructed field holds."""
    if is_primitive(type_name):
        return default_primitive(type_name)
    opaque = program.opaque_classes.get(type_name)
    if opaque is not None:
        return ObjectValue(
            type_name,
            {
                name: default_primitive(field.type_name)
                for name, field in opaque.fields.items()
            },
        )
    raise RuntimeFailure(f"no default value for type {type_name!r}")


def copy_value(value):
    """Value-semantics copy used for parameter passing and assignment."""
    if isinstance(value, ObjectValue):
        return value.copy()
    return value
