"""Execution metrics and the instruction cost model.

The paper measures four quantities per experiment (§5): node visits,
instructions executed, cache misses and runtime. Here:

* **node visits** — incremented once per traversal-function invocation on
  a node; a fused function counts once however many member traversals it
  carries (that is the point of fusion).
* **instructions** — a deterministic cost model over executed IR
  operations. The *same* table prices unfused and fused code, and the
  fused overheads the paper describes (active-flag checks, call-flag
  packing, stub dispatch) are charged explicitly, so the "instruction
  overhead" effect is reproduced rather than assumed.
* **cache misses** — from :mod:`repro.cachesim` over the address trace.
* **runtime** — modeled cycles: instructions + miss penalties, plus
  wall-clock seconds reported separately for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cachesim.hierarchy import CacheHierarchy


@dataclass(frozen=True)
class CostModel:
    """Instruction-cost table (units are nominal 'instructions')."""

    call_overhead: int = 4        # frame setup + branch + ret
    per_argument: int = 1
    virtual_dispatch: int = 3     # vtable load + indirect branch
    flag_check: int = 1           # `if (active_flags & mask)`
    call_flag_pack: int = 2       # shift+or per member when forming call_flags
    return_stmt: int = 1
    new_node: int = 8             # allocation + header init
    delete_node: int = 4
    branch: int = 1               # if-statement overhead beyond its condition
    null_check: int = 1


@dataclass
class ExecStats:
    """Counters for one execution."""

    node_visits: int = 0
    instructions: int = 0
    field_reads: int = 0
    field_writes: int = 0
    truncations: int = 0
    cache: Optional[CacheHierarchy] = None
    cost: CostModel = field(default_factory=CostModel)

    # -- memory traffic ----------------------------------------------------

    def read(self, address: int) -> None:
        self.field_reads += 1
        if self.cache is not None:
            self.cache.access(address)

    def write(self, address: int) -> None:
        self.field_writes += 1
        if self.cache is not None:
            self.cache.access(address)

    # -- derived metrics -----------------------------------------------------

    def miss_counts(self) -> dict[str, int]:
        if self.cache is None:
            return {}
        return self.cache.miss_counts()

    def modeled_cycles(self) -> int:
        """Runtime metric: instruction count plus cache-miss penalties."""
        cycles = self.instructions
        if self.cache is not None:
            cycles += self.cache.penalty_cycles()
        return cycles

    def as_dict(self) -> dict:
        result = {
            "node_visits": self.node_visits,
            "instructions": self.instructions,
            "field_reads": self.field_reads,
            "field_writes": self.field_writes,
            "modeled_cycles": self.modeled_cycles(),
        }
        result.update(self.miss_counts())
        return result


@dataclass
class LatencySeries:
    """Latency samples with percentile summaries.

    The service's batch executor records one sample per executed tree
    (and per shard) and reports p50/p99 — the quantities a production
    traffic dashboard watches. Percentiles interpolate linearly
    between the two nearest order statistics (the numpy default), so
    p50 of an even-count series is the midpoint of the middle pair and
    summaries vary smoothly as samples arrive — the earlier
    nearest-rank method jumped a whole sample at a time and pinned
    every percentile of a two-sample series to its extremes.
    """

    samples: list[float] = field(default_factory=list)

    def record(self, seconds: float) -> None:
        self.samples.append(seconds)

    def merge(self, other: "LatencySeries") -> None:
        self.samples.extend(other.samples)

    def percentile(self, p: float) -> float:
        """Linearly interpolated percentile, ``p`` in [0, 100]; 0.0
        when empty. ``p=0`` is the minimum, ``p=100`` the maximum, and
        a single-sample series answers that sample for every ``p``."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        p = min(max(p, 0.0), 100.0)
        rank = (len(ordered) - 1) * p / 100.0
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def summary(self) -> dict[str, float]:
        if not self.samples:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                    "max": 0.0}
        return {
            "count": len(self.samples),
            "mean": sum(self.samples) / len(self.samples),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": max(self.samples),
        }


#: Historical name for :class:`LatencySeries` (the original docs called
#: the per-tree latency record a histogram; the summaries are the same).
LatencyHistogram = LatencySeries
