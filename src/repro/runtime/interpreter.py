"""The traversal interpreter.

Executes both original programs (dynamic dispatch on tree nodes, one
method invocation per node visit) and fused programs (fused units with
active-flag semantics, paper §3.4) over the same runtime trees, charging
the same instruction cost model and driving the same simulated cache —
the reproduction's stand-in for "compile both versions with clang -O2 and
read the hardware counters".
"""

from __future__ import annotations

from typing import Optional

from repro.errors import RuntimeFailure
from repro.fusion.fused_ir import (
    EntryGroup,
    FusedProgram,
    FusedUnit,
    GroupCall,
    GuardedStmt,
)
from repro.ir.access import AccessPath
from repro.ir.exprs import (
    BinOp,
    Const,
    DataAccess,
    Expr,
    PureCall,
    UnaryOp,
    expr_cost,
)
from repro.ir.method import TraversalMethod
from repro.ir.program import Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)
from repro.runtime.heap import Heap
from repro.runtime.node import Node
from repro.runtime.stats import ExecStats
from repro.runtime.values import ObjectValue, copy_value, default_value


class _ReturnSignal(Exception):
    """Raised by `return;` — truncates the current traversal frame."""


_RETURN = _ReturnSignal()

# Safety net for the §3.5 loop extension: traversal loops iterate over
# bounded local computations, so a huge trip count is a non-termination
# bug in the input program, not a workload.
_LOOP_LIMIT = 1_000_000


class Interpreter:
    def __init__(
        self,
        program: Program,
        heap: Heap,
        stats: Optional[ExecStats] = None,
    ):
        self.program = program
        self.heap = heap
        self.stats = stats if stats is not None else ExecStats()
        self.globals: dict[str, object] = {}
        for var in program.globals.values():
            self.globals[var.name] = default_value(program, var.type_name)

    # ==================================================================
    # entry points
    # ==================================================================

    def run_entry(self, root: Node) -> None:
        """Execute the original (unfused) entry sequence on *root*."""
        for call in self.program.entry:
            args = [self.eval_expr(a, root, {}) for a in call.args]
            self.call_method(root, call.method_name, args)

    def run_fused(self, fused: FusedProgram, root: Node) -> None:
        """Execute the fused program on *root*."""
        for group in fused.entry_groups:
            unit = group.dispatch.get(root.type_name)
            if unit is None:
                raise RuntimeFailure(
                    f"no fused entry for root type {root.type_name}"
                )
            member_args = []
            for arg_exprs in group.args_per_member:
                member_args.append(
                    tuple(self.eval_expr(a, root, {}) for a in arg_exprs)
                )
            self.call_fused(unit, root, member_args, (1 << unit.width) - 1)

    # ==================================================================
    # original (unfused) execution
    # ==================================================================

    def call_method(self, node: Node, method_name: str, args: list) -> None:
        if node is None:
            raise RuntimeFailure(f"traversal {method_name!r} called on null")
        method = self.program.resolve_method(node.type_name, method_name)
        stats = self.stats
        stats.node_visits += 1
        cost = stats.cost
        stats.instructions += cost.call_overhead + cost.per_argument * len(args)
        if method.virtual:
            stats.instructions += cost.virtual_dispatch
        frame: dict[str, object] = {}
        for param, value in zip(method.params, args):
            frame[param.name] = copy_value(value)
        try:
            for stmt in method.body:
                self.exec_stmt(stmt, node, frame)
        except _ReturnSignal:
            stats.truncations += 1

    # ==================================================================
    # fused execution (paper §3.4 semantics)
    # ==================================================================

    def call_fused(
        self,
        unit: FusedUnit,
        node: Node,
        member_args: list[tuple],
        active_flags: int,
    ) -> None:
        stats = self.stats
        cost = stats.cost
        stats.node_visits += 1
        # one stub dispatch + one call for the whole group
        stats.instructions += cost.call_overhead + cost.virtual_dispatch
        frames: list[dict[str, object]] = []
        for member, method in enumerate(unit.members):
            frame: dict[str, object] = {}
            args = member_args[member] if member < len(member_args) else ()
            stats.instructions += cost.per_argument * len(args)
            for param, value in zip(method.params, args):
                frame[param.name] = copy_value(value)
            frames.append(frame)
        for item in unit.body:
            if active_flags == 0:
                break
            stats.instructions += cost.flag_check
            if isinstance(item, GuardedStmt):
                if not active_flags & (1 << item.member):
                    continue
                try:
                    self.exec_stmt(item.stmt, node, frames[item.member])
                except _ReturnSignal:
                    active_flags &= ~(1 << item.member)
                    stats.truncations += 1
                    stats.instructions += cost.return_stmt
            else:
                self._exec_group_call(item, node, frames, active_flags)

    def _exec_group_call(
        self,
        group: GroupCall,
        node: Node,
        frames: list[dict],
        active_flags: int,
    ) -> None:
        stats = self.stats
        cost = stats.cost
        call_flags = 0
        child_args: list[tuple] = []
        for slot, member_call in enumerate(group.calls):
            stats.instructions += cost.call_flag_pack
            if not active_flags & (1 << member_call.member):
                child_args.append(())
                continue
            if member_call.guard is not None:
                frame = frames[member_call.member]
                stats.instructions += expr_cost(member_call.guard) + cost.branch
                if not self.eval_expr(member_call.guard, node, frame):
                    child_args.append(())
                    continue
            call_flags |= 1 << slot
            frame = frames[member_call.member]
            stats.instructions += expr_cost_of_args(member_call.args)
            child_args.append(
                tuple(self.eval_expr(a, node, frame) for a in member_call.args)
            )
        if call_flags == 0:
            return
        if group.receiver.is_this:
            child = node
        else:
            child = self._read_child(node, group.receiver.child.name)
            stats.instructions += cost.null_check
            if child is None:
                raise RuntimeFailure(
                    f"fused group call on null child "
                    f"{node.type_name}.{group.receiver.child.name}"
                )
        unit = group.dispatch.get(child.type_name)
        if unit is None:
            raise RuntimeFailure(
                f"no fused unit for dynamic type {child.type_name} in "
                f"group {group}"
            )
        self.call_fused(unit, child, child_args, call_flags)

    # ==================================================================
    # statements
    # ==================================================================

    def exec_stmt(self, stmt: Stmt, this: Node, frame: dict) -> None:
        stats = self.stats
        cost = stats.cost
        if isinstance(stmt, Assign):
            stats.instructions += expr_cost(stmt.value) + len(stmt.target.steps)
            value = self.eval_expr(stmt.value, this, frame)
            self.write_path(stmt.target, this, frame, value)
        elif isinstance(stmt, If):
            stats.instructions += expr_cost(stmt.cond) + cost.branch
            branch = (
                stmt.then_body
                if self.eval_expr(stmt.cond, this, frame)
                else stmt.else_body
            )
            for sub in branch:
                self.exec_stmt(sub, this, frame)
        elif isinstance(stmt, While):
            iterations = 0
            while True:
                stats.instructions += expr_cost(stmt.cond) + cost.branch
                if not self.eval_expr(stmt.cond, this, frame):
                    break
                for sub in stmt.body:
                    self.exec_stmt(sub, this, frame)
                iterations += 1
                if iterations > _LOOP_LIMIT:
                    raise RuntimeFailure(
                        f"while loop exceeded {_LOOP_LIMIT} iterations "
                        "(likely non-terminating)"
                    )
        elif isinstance(stmt, TraverseStmt):
            stats.instructions += expr_cost_of_args(stmt.args)
            args = [self.eval_expr(a, this, frame) for a in stmt.args]
            if stmt.receiver.is_this:
                target = this
            else:
                target = self._read_child(this, stmt.receiver.child.name)
                stats.instructions += cost.null_check
            self.call_method(target, stmt.method_name, args)
        elif isinstance(stmt, LocalDef):
            if stmt.init is not None:
                stats.instructions += expr_cost(stmt.init)
                frame[stmt.name] = copy_value(
                    self.eval_expr(stmt.init, this, frame)
                )
            else:
                frame[stmt.name] = default_value(self.program, stmt.type_name)
        elif isinstance(stmt, AliasDef):
            stats.instructions += len(stmt.target.steps)
            frame[stmt.name] = self._walk_tree_node(stmt.target, this, frame)
        elif isinstance(stmt, Return):
            stats.instructions += cost.return_stmt
            raise _RETURN
        elif isinstance(stmt, New):
            stats.instructions += cost.new_node + len(stmt.target.steps)
            parent, field_name = self._locate_child_slot(stmt.target, this, frame)
            fresh = Node.new(self.program, self.heap, stmt.type_name)
            layout = self.heap.layout(parent.type_name)
            stats.write(parent.address + layout.offset_of(field_name))
            parent.set(field_name, fresh)
        elif isinstance(stmt, Delete):
            stats.instructions += cost.delete_node + len(stmt.target.steps)
            parent, field_name = self._locate_child_slot(stmt.target, this, frame)
            layout = self.heap.layout(parent.type_name)
            stats.write(parent.address + layout.offset_of(field_name))
            parent.set(field_name, None)
        elif isinstance(stmt, PureStmt):
            stats.instructions += expr_cost(stmt.call)
            self.eval_expr(stmt.call, this, frame)
        else:  # pragma: no cover - defensive
            raise RuntimeFailure(f"unknown statement {type(stmt).__name__}")

    # ==================================================================
    # paths
    # ==================================================================

    def _read_child(self, node: Node, field_name: str):
        layout = self.heap.layout(node.type_name)
        self.stats.read(node.address + layout.offset_of(field_name))
        return node.get(field_name)

    def _walk_tree_node(self, path: AccessPath, this: Node, frame: dict) -> Node:
        """Evaluate a tree-node path (all child steps) to a node."""
        node = self._base_node(path, this, frame)
        for step in path.steps:
            node = self._read_child(node, step.field.name)
            if node is None:
                raise RuntimeFailure(f"null child in path {path}")
        return node

    def _locate_child_slot(
        self, path: AccessPath, this: Node, frame: dict
    ) -> tuple[Node, str]:
        """The (parent node, field name) a new/delete statement targets."""
        node = self._base_node(path, this, frame)
        for step in path.steps[:-1]:
            node = self._read_child(node, step.field.name)
            if node is None:
                raise RuntimeFailure(f"null child in path {path}")
        return node, path.steps[-1].field.name

    def _base_node(self, path: AccessPath, this: Node, frame: dict) -> Node:
        if path.base == "this":
            return this
        if path.is_local:
            value = frame.get(path.base_name)
            if not isinstance(value, Node):
                raise RuntimeFailure(
                    f"local {path.base_name!r} is not a tree alias"
                )
            return value
        raise RuntimeFailure(f"path {path} cannot start at a global")

    def read_path(self, path: AccessPath, this: Node, frame: dict):
        if path.is_global:
            return self._read_global(path)
        if path.is_local and (
            not path.steps or not isinstance(frame.get(path.base_name), Node)
        ):
            # data local (possibly with opaque member steps); registers only
            value = frame[path.base_name]
            for step in path.steps:
                value = value.get(step.field.name)
            return value
        # on-tree (this-based or via alias)
        node = self._base_node(path, this, frame)
        index = 0
        steps = path.steps
        while index < len(steps) and steps[index].field.is_child:
            node = self._read_child(node, steps[index].field.name)
            if node is None:
                raise RuntimeFailure(f"null child in path {path}")
            index += 1
        remaining = steps[index:]
        if not remaining:
            return node
        layout = self.heap.layout(node.type_name)
        field_name = remaining[0].field.name
        value = node.get(field_name)
        if len(remaining) == 1:
            self.stats.read(node.address + layout.offset_of(field_name))
            return value
        member_name = remaining[1].field.name
        self.stats.read(node.address + layout.offset_of(field_name, member_name))
        return value.get(member_name)

    def write_path(self, path: AccessPath, this: Node, frame: dict, value) -> None:
        if path.is_global:
            self._write_global(path, value)
            return
        if path.is_local and (
            not path.steps or not isinstance(frame.get(path.base_name), Node)
        ):
            if not path.steps:
                frame[path.base_name] = copy_value(value)
                return
            container = frame[path.base_name]
            for step in path.steps[:-1]:
                container = container.get(step.field.name)
            container.set(path.steps[-1].field.name, value)
            return
        node = self._base_node(path, this, frame)
        index = 0
        steps = path.steps
        while index < len(steps) and steps[index].field.is_child:
            # all-but-last child steps navigate; a final child step would
            # be a tree-node write, which assignment forbids
            if index == len(steps) - 1:
                raise RuntimeFailure(f"assignment to tree node {path}")
            node = self._read_child(node, steps[index].field.name)
            if node is None:
                raise RuntimeFailure(f"null child in path {path}")
            index += 1
        remaining = steps[index:]
        layout = self.heap.layout(node.type_name)
        field_name = remaining[0].field.name
        if len(remaining) == 1:
            self.stats.write(node.address + layout.offset_of(field_name))
            node.set(field_name, copy_value(value))
            return
        member_name = remaining[1].field.name
        self.stats.write(node.address + layout.offset_of(field_name, member_name))
        node.get(field_name).set(member_name, value)

    def _read_global(self, path: AccessPath):
        name = path.base_name
        if not path.steps:
            self.stats.read(self.heap.global_address(name))
            return self.globals[name]
        member = path.steps[0].field.name
        self.stats.read(self.heap.global_address(name, member))
        return self.globals[name].get(member)

    def _write_global(self, path: AccessPath, value) -> None:
        name = path.base_name
        if not path.steps:
            self.stats.write(self.heap.global_address(name))
            self.globals[name] = copy_value(value)
            return
        member = path.steps[0].field.name
        self.stats.write(self.heap.global_address(name, member))
        self.globals[name].set(member, value)

    # ==================================================================
    # expressions
    # ==================================================================

    def eval_expr(self, expr: Expr, this: Node, frame: dict):
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, DataAccess):
            return self.read_path(expr.path, this, frame)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, this, frame)
        if isinstance(expr, UnaryOp):
            operand = self.eval_expr(expr.operand, this, frame)
            if expr.op == "-":
                return -operand
            return not operand
        if isinstance(expr, PureCall):
            func = self.program.pure_functions[expr.func_name]
            args = [
                copy_value(self.eval_expr(a, this, frame)) for a in expr.args
            ]
            return func(*args)
        raise RuntimeFailure(f"unknown expression {type(expr).__name__}")

    def _eval_binop(self, expr: BinOp, this: Node, frame: dict):
        op = expr.op
        if op == "&&":
            return bool(
                self.eval_expr(expr.lhs, this, frame)
                and self.eval_expr(expr.rhs, this, frame)
            )
        if op == "||":
            return bool(
                self.eval_expr(expr.lhs, this, frame)
                or self.eval_expr(expr.rhs, this, frame)
            )
        lhs = self.eval_expr(expr.lhs, this, frame)
        rhs = self.eval_expr(expr.rhs, this, frame)
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return _cxx_div(lhs, rhs)
        if op == "%":
            return _cxx_mod(lhs, rhs)
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "==":
            return lhs == rhs
        if op == "!=":
            return lhs != rhs
        raise RuntimeFailure(f"unknown operator {op!r}")


def _cxx_div(lhs, rhs):
    """C++ division: integer division truncates toward zero."""
    if rhs == 0:
        raise RuntimeFailure("division by zero")
    if isinstance(lhs, bool) or isinstance(rhs, bool):
        lhs, rhs = int(lhs), int(rhs)
    if isinstance(lhs, int) and isinstance(rhs, int):
        quotient = abs(lhs) // abs(rhs)
        return quotient if (lhs < 0) == (rhs < 0) else -quotient
    return lhs / rhs


def _cxx_mod(lhs, rhs):
    """C++ %: result has the sign of the dividend."""
    if rhs == 0:
        raise RuntimeFailure("modulo by zero")
    return lhs - rhs * _cxx_div(lhs, rhs)


def expr_cost_of_args(args: tuple[Expr, ...]) -> int:
    return sum(expr_cost(a) for a in args)
