"""Runtime tree nodes."""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import RuntimeFailure
from repro.ir.program import Program
from repro.runtime.heap import Heap
from repro.runtime.values import ObjectValue, default_value


def default_fields(program: Program, type_name: str) -> dict:
    """A fresh field dict for one node of *type_name*: children ``None``,
    data fields at their declared or zero defaults. Shared between
    :meth:`Node.new` and the pooled layout's row allocator
    (:meth:`repro.layout.ForestPool.new`) so both backends agree on what
    a default-constructed node holds."""
    fields: dict = {}
    for field_name, field in program.fields_of(type_name).items():
        if field.is_child:
            fields[field_name] = None
        else:
            declared_default = _declared_default(program, type_name, field_name)
            if declared_default is not None:
                fields[field_name] = declared_default
            else:
                fields[field_name] = default_value(program, field.type_name)
    return fields


class Node:
    """One tree node: dynamic type, field values, heap address.

    Child fields hold ``Node`` or ``None``; data fields hold primitives or
    :class:`ObjectValue`. Use :meth:`Node.new` so defaults and the address
    come out consistent with the program's layouts.
    """

    __slots__ = ("type_name", "fields", "address")

    def __init__(self, type_name: str, fields: dict, address: int):
        self.type_name = type_name
        self.fields = fields
        self.address = address

    @staticmethod
    def new(program: Program, heap: Heap, type_name: str, **overrides) -> "Node":
        if type_name not in program.tree_types:
            raise RuntimeFailure(f"cannot instantiate unknown type {type_name!r}")
        if program.tree_types[type_name].abstract:
            raise RuntimeFailure(f"cannot instantiate abstract type {type_name}")
        fields = default_fields(program, type_name)
        for key, value in overrides.items():
            if key not in fields:
                raise RuntimeFailure(f"{type_name} has no field {key!r}")
            fields[key] = value
        return Node(type_name, fields, heap.allocate(type_name))

    def get(self, field_name: str):
        try:
            return self.fields[field_name]
        except KeyError:
            raise RuntimeFailure(
                f"node of type {self.type_name} has no field {field_name!r}"
            ) from None

    def set(self, field_name: str, value) -> None:
        if field_name not in self.fields:
            raise RuntimeFailure(
                f"node of type {self.type_name} has no field {field_name!r}"
            )
        self.fields[field_name] = value

    # -- tree utilities (used by workloads/tests) -------------------------

    def walk(self, program: Program) -> Iterator["Node"]:
        """Preorder walk of the subtree under this node. Iterative — a
        degenerate chain deeper than the interpreter's recursion limit
        (deep kd-trees) must still walk."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            children = [
                node.fields[field_name]
                for field_name, field in program.fields_of(
                    node.type_name
                ).items()
                if field.is_child and node.fields[field_name] is not None
            ]
            stack.extend(reversed(children))

    def count_nodes(self, program: Program) -> int:
        return sum(1 for _ in self.walk(program))

    def snapshot(self, program: Program) -> dict:
        """A structural copy of the subtree's data (for differential
        testing of fused vs unfused executions). Iterative, like
        :meth:`walk`: children are snapshotted bottom-up through an
        explicit stack so arbitrarily deep trees never hit the
        recursion limit."""
        done: dict[int, dict] = {}
        stack: list[tuple["Node", bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if not expanded:
                stack.append((node, True))
                for field_name, field in program.fields_of(
                    node.type_name
                ).items():
                    child = node.fields[field_name] if field.is_child else None
                    if field.is_child and child is not None:
                        stack.append((child, False))
                continue
            data = {"__type__": node.type_name}
            for field_name, field in program.fields_of(node.type_name).items():
                value = node.fields[field_name]
                if field.is_child:
                    data[field_name] = (
                        None if value is None else done[id(value)]
                    )
                elif isinstance(value, ObjectValue):
                    data[field_name] = (value.class_name, dict(value.members))
                else:
                    data[field_name] = value
            done[id(node)] = data
        return done[id(self)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.type_name}@{self.address:#x})"


def _declared_default(program: Program, type_name: str, field_name: str) -> Optional[object]:
    for owner_name in program.mro(type_name):
        owner = program.tree_types[owner_name]
        if field_name in owner.data_defaults:
            return owner.data_defaults[field_name]
        if field_name in owner.data or field_name in owner.children:
            return None
    return None
