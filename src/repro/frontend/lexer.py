"""Tokenizer for the Grafter surface syntax (a small C++ subset)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrontendError

KEYWORDS = {
    "class", "public", "virtual", "void", "if", "else", "while", "return",
    "delete", "new", "static_cast", "const", "true", "false", "this",
    "_tree_", "_child_", "_traversal_", "_pure_", "_abstract_",
}

# Multi-character punctuation, longest first so maximal munch works.
_PUNCT = [
    "...", "->", "::", "==", "!=", "<=", ">=", "&&", "||",
    "{", "}", "(", ")", ";", ",", "*", "<", ">", "=", ".",
    "+", "-", "/", "%", "!", ":",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'number', 'char', 'punct', 'eof'
    text: str
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*; raises FrontendError with position on bad input."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(source)

    def error(message: str) -> FrontendError:
        return FrontendError(message, line, column)

    while index < length:
        ch = source[index]
        # whitespace
        if ch in " \t\r":
            index += 1
            column += 1
            continue
        if ch == "\n":
            index += 1
            line += 1
            column = 1
            continue
        # comments
        if source.startswith("//", index):
            end = source.find("\n", index)
            index = length if end == -1 else end
            continue
        if source.startswith("/*", index):
            end = source.find("*/", index + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[index : end + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            index = end + 2
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                index += 1
            text = source[start:index]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, column))
            column += index - start
            continue
        # numbers (ints and floats; leading digit or .5 not supported)
        if ch.isdigit():
            start = index
            while index < length and source[index].isdigit():
                index += 1
            if index < length and source[index] == "." and not source.startswith("...", index):
                index += 1
                while index < length and source[index].isdigit():
                    index += 1
            if index < length and source[index] in "eE":
                index += 1
                if index < length and source[index] in "+-":
                    index += 1
                while index < length and source[index].isdigit():
                    index += 1
            text = source[start:index]
            tokens.append(Token("number", text, line, column))
            column += index - start
            continue
        # char literal
        if ch == "'":
            if index + 2 < length and source[index + 2] == "'":
                tokens.append(Token("char", source[index + 1], line, column))
                index += 3
                column += 3
                continue
            raise error("malformed character literal")
        # punctuation
        for punct in _PUNCT:
            if source.startswith(punct, index):
                tokens.append(Token("punct", punct, line, column))
                index += len(punct)
                column += len(punct)
                break
        else:
            raise error(f"unexpected character {ch!r}")
    tokens.append(Token("eof", "", line, column))
    return tokens
