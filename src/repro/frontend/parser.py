"""Recursive-descent parser: Grafter surface syntax -> resolved IR.

Parsing runs in two passes, mirroring how Clang resolves C++:

1. *Declarations*: tree classes (fields), opaque classes, globals and pure
   declarations are collected; traversal method bodies are captured as raw
   token spans. The type hierarchy is then frozen (``finalize_types``).
2. *Bodies*: each captured body is parsed with full member resolution
   against the frozen hierarchy, so forward references between tree types
   and mutually-recursive traversals work naturally.

``->`` and ``.`` are interchangeable member separators; resolution is by
name against the resolved static type of the value to the left.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import FrontendError, ValidationError
from repro.ir.access import AccessPath, Receiver
from repro.ir.builder import RawStep, ScopeInfo, resolve_member_chain
from repro.ir.exprs import BinOp, Const, DataAccess, Expr, PureCall, UnaryOp
from repro.ir.method import Param, PureFunction, TraversalMethod
from repro.ir.program import EntryCall, Program
from repro.ir.stmts import (
    AliasDef,
    Assign,
    Delete,
    If,
    LocalDef,
    New,
    PureStmt,
    Return,
    Stmt,
    TraverseStmt,
    While,
)
from repro.ir.types import OpaqueClass, TreeType, is_primitive
from repro.ir.validate import LanguageMode, validate_program
from repro.frontend.lexer import Token, tokenize

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3, "!=": 3,
    "<": 4, "<=": 4, ">": 4, ">=": 4,
    "+": 5, "-": 5,
    "*": 6, "/": 6, "%": 6,
}


@dataclass
class _PendingMethod:
    owner: str
    name: str
    params: tuple[Param, ...]
    virtual: bool
    body_tokens: list[Token]


@dataclass
class _Chain:
    """An unresolved postfix chain: base name (or ``this``), member steps,
    and — when the chain ends in ``(`` — the trailing call name.
    ``pending_cast`` carries a ``static_cast`` wrapping the chain so far;
    it is attached to the next member step parsed."""

    base: str  # "this" or an identifier
    steps: list[RawStep]
    call_name: Optional[str] = None
    pending_cast: Optional[str] = None


class _Cursor:
    """Token-stream navigation with positioned errors."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, text: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.text == text and token.kind != "eof"

    def at_kind(self, kind: str, offset: int = 0) -> bool:
        return self.peek(offset).kind == kind

    def accept(self, text: str) -> bool:
        if self.at(text):
            self.next()
            return True
        return False

    def expect(self, text: str) -> Token:
        token = self.peek()
        if not self.at(text):
            raise self.error(f"expected {text!r}, found {token.text!r}")
        return self.next()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error(f"expected identifier, found {token.text!r}")
        self.next()
        return token.text

    def error(self, message: str) -> FrontendError:
        token = self.peek()
        return FrontendError(message, token.line, token.column)


def parse_program(
    source: str,
    name: str = "program",
    pure_impls: Optional[dict[str, Callable]] = None,
    mode: LanguageMode = LanguageMode.GRAFTER,
    validate: bool = True,
) -> Program:
    """Parse Grafter surface syntax into a finalized (and by default
    validated) :class:`~repro.ir.program.Program`.

    ``pure_impls`` binds ``_pure_`` declarations to Python callables.
    """
    parser = _Parser(source, name, pure_impls or {}, mode)
    program = parser.parse()
    if validate:
        validate_program(program, mode)
    return program


class _Parser:
    def __init__(self, source: str, name: str, pure_impls: dict, mode: LanguageMode):
        self.cursor = _Cursor(tokenize(source))
        self.program = Program(name)
        self.pure_impls = pure_impls
        self.mode = mode
        self.pending_methods: list[_PendingMethod] = []
        self.main_tokens: Optional[list[Token]] = None

    # ==================================================================
    # pass 1: declarations
    # ==================================================================

    def parse(self) -> Program:
        cursor = self.cursor
        while not cursor.at_kind("eof"):
            if cursor.at("_abstract_") or cursor.at("_tree_"):
                self._parse_tree_class()
            elif cursor.at("class"):
                self._parse_opaque_class()
            elif cursor.at("_pure_"):
                self._parse_pure_decl()
            elif self._at_main():
                self._capture_main()
            else:
                self._parse_global()
        self.program.finalize_types()
        # Register every method signature first so that bodies can resolve
        # forward references and mutual recursion, then parse bodies.
        registered: list[TraversalMethod] = []
        for pending in self.pending_methods:
            method = TraversalMethod(
                name=pending.name,
                owner=pending.owner,
                params=pending.params,
                virtual=pending.virtual,
            )
            self.program.tree_types[pending.owner].add_method(method)
            registered.append(method)
        for pending, method in zip(self.pending_methods, registered):
            method.body = self._parse_method_body(pending)
        self._fixup_virtual_flags()
        if self.main_tokens is not None:
            self._parse_main()
        self.program.finalize()
        return self.program

    def _at_main(self) -> bool:
        return (
            self.cursor.at_kind("ident")
            or self.cursor.peek().text in ("int",)
        ) and self.cursor.peek(1).text == "main"

    def _parse_tree_class(self) -> None:
        cursor = self.cursor
        abstract = cursor.accept("_abstract_")
        cursor.expect("_tree_")
        cursor.expect("class")
        name = cursor.expect_ident()
        bases: list[str] = []
        if cursor.accept(":"):
            while True:
                cursor.expect("public")
                bases.append(cursor.expect_ident())
                if not cursor.accept(","):
                    break
        tree_type = self.program.add_tree_type(
            TreeType(name, bases=bases, abstract=abstract)
        )
        cursor.expect("{")
        while not cursor.at("}"):
            if cursor.accept("_child_"):
                child_type = cursor.expect_ident()
                cursor.expect("*")
                child_name = cursor.expect_ident()
                cursor.expect(";")
                tree_type.add_child(child_name, child_type)
            elif cursor.at("_traversal_"):
                self._parse_traversal_decl(name)
            else:
                field_type = self._expect_type_name()
                field_name = cursor.expect_ident()
                default = None
                if cursor.accept("="):
                    default = self._parse_const_literal()
                cursor.expect(";")
                tree_type.add_data(field_name, field_type, default=default)
        cursor.expect("}")
        cursor.expect(";")

    def _parse_traversal_decl(self, owner: str) -> None:
        cursor = self.cursor
        cursor.expect("_traversal_")
        virtual = cursor.accept("virtual")
        cursor.expect("void")
        method_name = cursor.expect_ident()
        params = self._parse_params()
        cursor.expect("{")
        body_tokens = self._capture_balanced_braces()
        self.pending_methods.append(
            _PendingMethod(
                owner=owner,
                name=method_name,
                params=params,
                virtual=virtual,
                body_tokens=body_tokens,
            )
        )

    def _parse_params(self) -> tuple[Param, ...]:
        cursor = self.cursor
        cursor.expect("(")
        params: list[Param] = []
        while not cursor.at(")"):
            type_name = self._expect_type_name()
            param_name = cursor.expect_ident()
            params.append(Param(param_name, type_name))
            if not cursor.accept(","):
                break
        cursor.expect(")")
        return tuple(params)

    def _capture_balanced_braces(self) -> list[Token]:
        """Consume tokens up to the matching '}' (exclusive); assumes the
        opening '{' was already consumed."""
        cursor = self.cursor
        depth = 1
        captured: list[Token] = []
        while depth > 0:
            token = cursor.next()
            if token.kind == "eof":
                raise cursor.error("unterminated body")
            if token.text == "{" and token.kind == "punct":
                depth += 1
            elif token.text == "}" and token.kind == "punct":
                depth -= 1
                if depth == 0:
                    break
            captured.append(token)
        captured.append(Token("eof", "", 0, 0))
        return captured

    def _parse_opaque_class(self) -> None:
        cursor = self.cursor
        cursor.expect("class")
        name = cursor.expect_ident()
        cls = self.program.add_opaque_class(OpaqueClass(name))
        cursor.expect("{")
        while not cursor.at("}"):
            field_type = self._expect_type_name()
            field_name = cursor.expect_ident()
            cursor.expect(";")
            cls.add_field(field_name, field_type)
        cursor.expect("}")
        cursor.expect(";")

    def _parse_pure_decl(self) -> None:
        cursor = self.cursor
        cursor.expect("_pure_")
        return_type = self._expect_type_name()
        name = cursor.expect_ident()
        params = self._parse_params()
        cursor.expect(";")
        impl = self.pure_impls.get(name)
        self.program.add_pure_function(
            PureFunction(name=name, params=params, return_type=return_type, impl=impl)
        )

    def _parse_global(self) -> None:
        cursor = self.cursor
        type_name = self._expect_type_name()
        name = cursor.expect_ident()
        cursor.expect(";")
        self.program.add_global(name, type_name)

    def _capture_main(self) -> None:
        cursor = self.cursor
        cursor.next()  # return type
        cursor.expect("main")
        cursor.expect("(")
        cursor.expect(")")
        cursor.expect("{")
        self.main_tokens = self._capture_balanced_braces()

    def _expect_type_name(self) -> str:
        token = self.cursor.peek()
        if token.kind == "ident":
            self.cursor.next()
            return token.text
        raise self.cursor.error(f"expected type name, found {token.text!r}")

    def _parse_const_literal(self):
        cursor = self.cursor
        token = cursor.peek()
        negate = False
        if cursor.at("-"):
            cursor.next()
            negate = True
            token = cursor.peek()
        if token.kind == "number":
            cursor.next()
            value = float(token.text) if "." in token.text or "e" in token.text.lower() else int(token.text)
            return -value if negate else value
        if token.text == "true":
            cursor.next()
            return True
        if token.text == "false":
            cursor.next()
            return False
        if token.kind == "char":
            cursor.next()
            return token.text
        raise cursor.error(f"expected constant, found {token.text!r}")

    # ==================================================================
    # virtual-flag fixup
    # ==================================================================

    def _fixup_virtual_flags(self) -> None:
        """A method overriding a virtual base method is itself virtual.
        Types are processed base-most first so flags propagate down."""
        order = sorted(
            self.program.tree_types,
            key=lambda name: len(self.program.mro(name)),
        )
        for type_name in order:
            tree_type = self.program.tree_types[type_name]
            for method in tree_type.methods.values():
                if method.virtual:
                    continue
                for ancestor_name in self.program.mro(type_name)[1:]:
                    ancestor = self.program.tree_types[ancestor_name]
                    base_method = ancestor.methods.get(method.name)
                    if base_method is not None and base_method.virtual:
                        method.virtual = True
                        break

    # ==================================================================
    # pass 2: method bodies
    # ==================================================================

    def _parse_method_body(self, pending: _PendingMethod) -> list[Stmt]:
        body_parser = _BodyParser(
            program=self.program,
            owner=pending.owner,
            params=pending.params,
            tokens=pending.body_tokens,
            mode=self.mode,
        )
        return body_parser.parse_body()

    # ==================================================================
    # main / entry sequence
    # ==================================================================

    def _parse_main(self) -> None:
        cursor = _Cursor(self.main_tokens)
        root_type = None
        root_name = None
        calls: list[EntryCall] = []
        while not cursor.at_kind("eof"):
            if cursor.at_kind("ident") and cursor.at("*", 1):
                root_type = cursor.expect_ident()
                cursor.expect("*")
                root_name = cursor.expect_ident()
                cursor.expect("=")
                cursor.expect("...")
                cursor.expect(";")
                continue
            if cursor.at_kind("ident"):
                name = cursor.expect_ident()
                if name != root_name:
                    raise cursor.error(
                        f"entry calls must target the root variable {root_name!r}"
                    )
                if cursor.accept("->") or cursor.accept("."):
                    method_name = cursor.expect_ident()
                else:
                    raise cursor.error("expected '->' in entry call")
                cursor.expect("(")
                args: list[Expr] = []
                while not cursor.at(")"):
                    args.append(self._parse_entry_arg(cursor))
                    if not cursor.accept(","):
                        break
                cursor.expect(")")
                cursor.expect(";")
                calls.append(EntryCall(method_name=method_name, args=tuple(args)))
                continue
            if cursor.at("return"):
                cursor.next()
                cursor.accept("0")
                cursor.expect(";")
                continue
            raise cursor.error(f"unexpected token {cursor.peek().text!r} in main")
        if root_type is None:
            raise cursor.error("main must declare the tree root: `T* root = ...;`")
        if root_type not in self.program.tree_types:
            raise ValidationError(f"main root type {root_type!r} is not a tree type")
        self.program.set_entry(root_type, calls)

    def _parse_entry_arg(self, cursor: _Cursor) -> Expr:
        token = cursor.peek()
        negate = cursor.accept("-")
        token = cursor.peek()
        if token.kind == "number":
            cursor.next()
            if "." in token.text or "e" in token.text.lower():
                value = float(token.text)
                return Const(-value if negate else value, "double")
            value = int(token.text)
            return Const(-value if negate else value, "int")
        if token.text in ("true", "false"):
            cursor.next()
            return Const(token.text == "true", "bool")
        raise cursor.error("entry-call arguments must be constants")


class _BodyParser:
    """Parses one traversal body with scope tracking and path resolution."""

    def __init__(self, program: Program, owner: str, params, tokens, mode):
        self.program = program
        self.owner = owner
        self.mode = mode
        self.cursor = _Cursor(tokens)
        self.scope = ScopeInfo()
        for param in params:
            self.scope.locals[param.name] = param.type_name

    # -- entry ----------------------------------------------------------

    def parse_body(self) -> list[Stmt]:
        body: list[Stmt] = []
        while not self.cursor.at_kind("eof"):
            body.append(self._parse_stmt())
        return body

    def _parse_block_or_single(self) -> list[Stmt]:
        if self.cursor.accept("{"):
            body: list[Stmt] = []
            while not self.cursor.at("}"):
                if self.cursor.at_kind("eof"):
                    raise self.cursor.error("unterminated block")
                body.append(self._parse_stmt())
            self.cursor.expect("}")
            return body
        return [self._parse_stmt()]

    # -- statements -------------------------------------------------------

    def _parse_stmt(self) -> Stmt:
        cursor = self.cursor
        if cursor.at("if"):
            return self._parse_if()
        if cursor.at("while"):
            return self._parse_while()
        if cursor.accept("return"):
            cursor.expect(";")
            return Return()
        if cursor.accept("delete"):
            chain = self._parse_chain(allow_call=False)
            cursor.expect(";")
            return Delete(target=self._resolve_chain(chain))
        if cursor.at("this") or cursor.at("static_cast"):
            return self._parse_access_stmt()
        if cursor.at_kind("ident"):
            return self._parse_ident_stmt()
        raise cursor.error(f"unexpected token {cursor.peek().text!r}")

    def _parse_if(self) -> If:
        cursor = self.cursor
        cursor.expect("if")
        cursor.expect("(")
        cond = self._parse_expr()
        cursor.expect(")")
        then_body = self._parse_block_or_single()
        else_body: list[Stmt] = []
        if cursor.accept("else"):
            else_body = self._parse_block_or_single()
        return If(cond=cond, then_body=then_body, else_body=else_body)

    def _parse_while(self) -> While:
        cursor = self.cursor
        cursor.expect("while")
        cursor.expect("(")
        cond = self._parse_expr()
        cursor.expect(")")
        body = self._parse_block_or_single()
        return While(cond=cond, body=body)

    def _parse_ident_stmt(self) -> Stmt:
        """Statement starting with an identifier: local/alias definition,
        pure call, assignment through a local/alias/global, or nothing we
        know about."""
        cursor = self.cursor
        name = cursor.peek().text
        # alias definition: T* const l = <tree-node>;
        if name in self.program.tree_types and cursor.at("*", 1):
            cursor.next()
            cursor.expect("*")
            cursor.expect("const")
            alias_name = cursor.expect_ident()
            cursor.expect("=")
            chain = self._parse_chain(allow_call=False)
            cursor.expect(";")
            target = self._resolve_chain(chain)
            stmt = AliasDef(name=alias_name, type_name=name, target=target)
            self.scope.aliases[alias_name] = name
            return stmt
        # local definition: prim/opaque IDENT [= expr];
        if (
            is_primitive(name) or name in self.program.opaque_classes
        ) and cursor.at_kind("ident", 1):
            cursor.next()
            local_name = cursor.expect_ident()
            init = None
            if cursor.accept("="):
                init = self._parse_expr()
            cursor.expect(";")
            self.scope.locals[local_name] = name
            return LocalDef(name=local_name, type_name=name, init=init)
        # pure call statement: p(args);
        if name in self.program.pure_functions and cursor.at("(", 1):
            cursor.next()  # consume the function name
            call = self._parse_pure_call(name)
            cursor.expect(";")
            return PureStmt(call=call)
        return self._parse_access_stmt()

    def _parse_access_stmt(self) -> Stmt:
        """Assignment, new-statement or traverse call, all of which start
        with a postfix chain."""
        cursor = self.cursor
        chain = self._parse_chain(allow_call=True)
        if chain.call_name is not None:
            args: list[Expr] = []
            cursor.expect("(")
            while not cursor.at(")"):
                args.append(self._parse_expr())
                if not cursor.accept(","):
                    break
            cursor.expect(")")
            cursor.expect(";")
            return self._make_traverse(chain, tuple(args))
        cursor.expect("=")
        if cursor.accept("new"):
            type_name = cursor.expect_ident()
            cursor.expect("(")
            cursor.expect(")")
            cursor.expect(";")
            return New(target=self._resolve_chain(chain), type_name=type_name)
        value = self._parse_expr()
        cursor.expect(";")
        return Assign(target=self._resolve_chain(chain), value=value)

    def _make_traverse(self, chain: _Chain, args: tuple[Expr, ...]) -> TraverseStmt:
        if chain.base != "this":
            raise self.cursor.error(
                "traversal calls must be invoked on `this` or a direct child"
            )
        if len(chain.steps) == 0:
            receiver = Receiver(child=None)
            receiver_type = self.owner
        elif len(chain.steps) == 1:
            field = self.program.resolve_field(self.owner, chain.steps[0].name)
            if not field.is_child:
                raise self.cursor.error(
                    f"{chain.steps[0].name!r} is not a child field"
                )
            receiver = Receiver(child=field)
            receiver_type = field.type_name
        else:
            raise self.cursor.error(
                "traversal receivers are `this` or one child hop (rule 7)"
            )
        if not self.program.has_method(receiver_type, chain.call_name):
            raise self.cursor.error(
                f"type {receiver_type} has no traversal {chain.call_name!r}"
            )
        return TraverseStmt(
            receiver=receiver, method_name=chain.call_name, args=args
        )

    # -- chains -----------------------------------------------------------

    def _parse_chain(self, allow_call: bool) -> _Chain:
        """Parse a postfix chain. When ``allow_call`` and a member is
        followed by ``(``, that member becomes the chain's call name."""
        cursor = self.cursor
        chain = self._parse_chain_base()
        while cursor.at("->") or cursor.at("."):
            cursor.next()
            member = cursor.expect_ident()
            if allow_call and cursor.at("("):
                chain.call_name = member
                return chain
            chain.steps.append(RawStep(name=member, pre_cast=chain_pending_cast(chain)))
        return chain

    def _parse_chain_base(self) -> _Chain:
        cursor = self.cursor
        if cursor.accept("this"):
            return _Chain(base="this", steps=[])
        if cursor.at("static_cast"):
            return self._parse_cast_chain()
        name = cursor.expect_ident()
        return _Chain(base=name, steps=[])

    def _parse_cast_chain(self) -> _Chain:
        cursor = self.cursor
        cursor.expect("static_cast")
        cursor.expect("<")
        cast_type = cursor.expect_ident()
        cursor.expect("*")
        cursor.expect(">")
        cursor.expect("(")
        inner = self._parse_chain(allow_call=False)
        cursor.expect(")")
        inner.pending_cast = cast_type
        return inner

    def _resolve_chain(self, chain: _Chain) -> AccessPath:
        if chain.base == "this":
            return resolve_member_chain(
                self.program, "this", self.owner, chain.steps, start_is_tree=True
            )
        name = chain.base
        if name in self.scope.aliases:
            return resolve_member_chain(
                self.program,
                f"local:{name}",
                self.scope.aliases[name],
                chain.steps,
                start_is_tree=True,
            )
        if name in self.scope.locals:
            return resolve_member_chain(
                self.program,
                f"local:{name}",
                self.scope.locals[name],
                chain.steps,
                start_is_tree=False,
            )
        if name in self.program.globals:
            return resolve_member_chain(
                self.program,
                f"global:{name}",
                self.program.globals[name].type_name,
                chain.steps,
                start_is_tree=False,
            )
        raise self.cursor.error(f"unknown name {name!r}")

    # -- expressions --------------------------------------------------------

    def _parse_expr(self, min_precedence: int = 1) -> Expr:
        lhs = self._parse_unary()
        while True:
            op = self.cursor.peek().text
            precedence = _PRECEDENCE.get(op)
            if (
                precedence is None
                or precedence < min_precedence
                or self.cursor.peek().kind != "punct"
            ):
                return lhs
            self.cursor.next()
            rhs = self._parse_expr(precedence + 1)
            lhs = BinOp(op=op, lhs=lhs, rhs=rhs)

    def _parse_unary(self) -> Expr:
        cursor = self.cursor
        if cursor.accept("!"):
            return UnaryOp(op="!", operand=self._parse_unary())
        if cursor.at("-") and cursor.peek().kind == "punct":
            cursor.next()
            return UnaryOp(op="-", operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        cursor = self.cursor
        token = cursor.peek()
        if token.kind == "number":
            cursor.next()
            if "." in token.text or "e" in token.text.lower():
                return Const(float(token.text), "double")
            return Const(int(token.text), "int")
        if token.text == "true":
            cursor.next()
            return Const(True, "bool")
        if token.text == "false":
            cursor.next()
            return Const(False, "bool")
        if token.kind == "char":
            cursor.next()
            return Const(token.text, "char")
        if cursor.accept("("):
            inner = self._parse_expr()
            cursor.expect(")")
            return inner
        if token.text == "this" or token.text == "static_cast":
            chain = self._parse_chain(allow_call=False)
            return DataAccess(path=self._resolve_chain(chain))
        if token.kind == "ident":
            if token.text in self.program.pure_functions and cursor.at("(", 1):
                cursor.next()
                return self._parse_pure_call(token.text)
            chain = self._parse_chain(allow_call=False)
            return DataAccess(path=self._resolve_chain(chain))
        raise cursor.error(f"unexpected token {token.text!r} in expression")

    def _parse_pure_call(self, name: str) -> PureCall:
        cursor = self.cursor
        cursor.expect("(")
        args: list[Expr] = []
        while not cursor.at(")"):
            args.append(self._parse_expr())
            if not cursor.accept(","):
                break
        cursor.expect(")")
        return PureCall(func_name=name, args=tuple(args))


def chain_pending_cast(chain: _Chain) -> Optional[str]:
    """Pop a pending cast recorded by ``static_cast<T*>(...)`` wrapping."""
    pending = chain.pending_cast
    chain.pending_cast = None
    return pending
