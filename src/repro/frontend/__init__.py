"""Textual frontend for the Grafter surface syntax.

The original Grafter is a Clang tool operating on annotated C++ (paper §4).
This frontend accepts the same surface style — ``_tree_`` classes with
``_child_`` pointers, ``_traversal_`` methods, ``_pure_`` declarations, a
``main`` with the entry traversal sequence — and produces the resolved IR.

Example (paper Fig. 2, abbreviated)::

    from repro.frontend import parse_program

    program = parse_program('''
        int CHAR_WIDTH;
        class String { int Length; };
        _tree_ class Element {
            _child_ Element* Next;
            int Width = 0;
            _traversal_ virtual void computeWidth() {}
        };
        _tree_ class TextBox : public Element {
            String Text;
            _traversal_ void computeWidth() {
                this->Next->computeWidth();
                this->Width = this->Text.Length;
            }
        };
        int main() {
            Element* root = ...;
            root->computeWidth();
        }
    ''')
"""

from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse_program

__all__ = ["Token", "tokenize", "parse_program"]
