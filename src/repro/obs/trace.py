"""Request-scoped tracing: spans, a context-local current span, and a
bounded ring buffer of finished spans.

One :class:`Tracer` per process. A **span** is a timed, attributed
operation (``obs.span("fusion.grouping", width=3)``); spans nest through
a :mod:`contextvars` current-span variable, so one trace ID minted at
the root — ``Session.compile()``, the service's ``/submit`` — follows
the request through the pass manager, every storage-tier lookup, and
executor dispatch without any call site threading IDs by hand.

The recording decision is made once, at the root:

* with the tracer **disabled** (the default) and no active parent,
  :func:`span` returns the shared :data:`NOOP_SPAN` — no allocation, no
  clock reads, nothing buffered. Instrumentation left in hot paths
  costs one function call and a context-variable read.
* with the tracer **enabled**, roots are sampled at ``sample`` (a
  deterministic rate accumulator, not a PRNG — ``sample=0.5`` records
  exactly every other root) and every descendant of a recorded root is
  recorded, even across threads and processes: :func:`current_context`
  serializes the active span to a picklable ``(trace_id, span_id)``
  pair and :func:`span_from` reparents under it on the far side.
* ``force=True`` records one root regardless of the switch — the
  ``CompileOptions(trace=True)`` knob.

Finished spans land in the tracer's ring buffer (capacity
``REPRO_TRACE_BUFFER``, default 8192) as plain dicts — picklable and
JSON-ready for the exporters in :mod:`repro.obs.export`. Worker pools
use :func:`collect_spans` to divert a task's spans into a local list
that travels back with the result and is re-ingested by the parent
(:func:`ingest`), so process-pool shards appear in the parent's trace.

Environment: ``REPRO_TRACE`` enables tracing process-wide (``1``/
``true``, or a sample rate like ``0.25``); ``REPRO_TRACE_BUFFER`` sets
the ring capacity.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import secrets
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Optional

#: A serialized span context: the picklable ``(trace_id, span_id)``
#: pair :func:`current_context` hands out and :func:`span_from` accepts.
SpanContext = tuple

_CURRENT: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)
_SINK: "contextvars.ContextVar[Optional[list]]" = contextvars.ContextVar(
    "repro_obs_span_sink", default=None
)

# span ids are unique per process *and* distinguishable across the
# process-pool boundary: a per-process random tag plus a counter
_PROC_TAG = secrets.token_hex(4)
_ids = itertools.count(1)


def _new_span_id() -> str:
    return f"{_PROC_TAG}.{next(_ids)}"


def _new_trace_id() -> str:
    return secrets.token_hex(8)


class _NoopSpan:
    """The shared do-nothing span instrumentation sites get when
    tracing is off: one instance, no state, every method a no-op."""

    __slots__ = ()
    recorded = False
    trace_id = None
    span_id = None
    parent_id = None
    context: Optional[SpanContext] = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed operation within a trace.

    Use as a context manager: ``__enter__`` makes it the context-local
    current span (children parent to it automatically), ``__exit__``
    stamps the duration and hands the exported record to the tracer.
    ``set(**attrs)`` adds attributes mid-flight — tier hit/miss flags,
    cache outcomes, sizes.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "attrs",
        "start_wall",
        "duration",
        "_start_perf",
        "_token",
        "_tracer",
    )
    recorded = True

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: str, parent_id: Optional[str], attrs: dict):
        self.name = name
        self.trace_id = trace_id
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_wall = time.time()
        self.duration = 0.0
        self._start_perf = time.perf_counter()
        self._token = None
        self._tracer = tracer

    @property
    def context(self) -> SpanContext:
        """The picklable ``(trace_id, span_id)`` pair children parent
        to — what crosses thread/process-pool boundaries."""
        return (self.trace_id, self.span_id)

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)

    def export(self) -> dict:
        """The finished-span record: plain JSON-ready dict."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start_wall,
            "duration": self.duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "attrs": dict(self.attrs),
        }

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start_perf
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer._finish(self.export())
        return False


class Tracer:
    """Process tracer: the on/off switch, root sampling, and the
    bounded ring buffer of finished spans (see module doc)."""

    def __init__(self, capacity: int = 8192):
        self.enabled = False
        self.sample = 1.0
        self._acc = 0.0
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=max(1, capacity))

    @property
    def capacity(self) -> int:
        return self._spans.maxlen

    def configure(
        self,
        enabled: Optional[bool] = None,
        sample: Optional[float] = None,
        capacity: Optional[int] = None,
    ) -> None:
        """Adjust the switch, the root sample rate, and/or the ring
        capacity (resizing keeps the newest spans)."""
        if enabled is not None:
            self.enabled = enabled
        if sample is not None:
            self.sample = min(max(float(sample), 0.0), 1.0)
        if capacity is not None:
            with self._lock:
                self._spans = deque(self._spans, maxlen=max(1, capacity))

    # -- recording decision --------------------------------------------

    def _sample_root(self) -> bool:
        if not self.enabled:
            return False
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        # deterministic rate accumulator: sample=1/N records every Nth
        # root exactly, with no PRNG state to seed in tests
        with self._lock:
            self._acc += self.sample
            if self._acc >= 1.0:
                self._acc -= 1.0
                return True
            return False

    # -- span construction ---------------------------------------------

    def span(self, name: str, *, force: bool = False, **attrs):
        """A child of the context-local current span, or — with no
        active parent — a sampled (or ``force``-recorded) new root.
        Returns :data:`NOOP_SPAN` when nothing is recording."""
        parent = _CURRENT.get()
        if parent is not None:
            return Span(self, name, parent.trace_id, parent.span_id, attrs)
        if force or self._sample_root():
            return Span(self, name, _new_trace_id(), None, attrs)
        return NOOP_SPAN

    def span_from(self, ctx: Optional[SpanContext], name: str, **attrs):
        """A span reparented under a serialized context — the far side
        of a thread/process-pool dispatch. ``ctx=None`` falls back to
        :meth:`span` (the ambient parent, or sampling)."""
        if ctx is None:
            return self.span(name, **attrs)
        trace_id, parent_id = ctx
        return Span(self, name, trace_id, parent_id, attrs)

    # -- finished spans -------------------------------------------------

    def _finish(self, exported: dict) -> None:
        sink = _SINK.get()
        if sink is not None:
            sink.append(exported)
            return
        with self._lock:
            self._spans.append(exported)

    def ingest(self, exported: Iterable[dict]) -> None:
        """Adopt spans recorded elsewhere (a worker's
        :func:`collect_spans` bucket) into this tracer's buffer."""
        sink = _SINK.get()
        if sink is not None:
            sink.extend(exported)
            return
        with self._lock:
            self._spans.extend(exported)

    def spans(self, trace_id: Optional[str] = None) -> list[dict]:
        """Buffered finished spans, oldest first; optionally filtered
        to one trace."""
        with self._lock:
            out = list(self._spans)
        if trace_id is not None:
            out = [s for s in out if s["trace_id"] == trace_id]
        return out

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in the buffer, oldest first."""
        seen: dict[str, None] = {}
        for record in self.spans():
            seen.setdefault(record["trace_id"], None)
        return list(seen)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._acc = 0.0

    @contextmanager
    def collect(self):
        """Divert this context's finished spans into a fresh list —
        how a pool worker gathers its shard's spans to ship back."""
        bucket: list = []
        token = _SINK.set(bucket)
        try:
            yield bucket
        finally:
            _SINK.reset(token)


# ===========================================================================
# the process tracer + module-level convenience API
# ===========================================================================


def _capacity_from_env() -> int:
    raw = os.environ.get("REPRO_TRACE_BUFFER", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 8192


_TRACER = Tracer(capacity=_capacity_from_env())


def _configure_from_env(tracer: Tracer) -> None:
    raw = os.environ.get("REPRO_TRACE", "").strip().lower()
    if not raw or raw in ("0", "false", "off", "no"):
        return
    if raw in ("1", "true", "on", "yes"):
        tracer.configure(enabled=True, sample=1.0)
        return
    try:
        rate = float(raw)
    except ValueError:
        rate = 1.0
    if rate > 0:
        tracer.configure(enabled=True, sample=rate)


_configure_from_env(_TRACER)


def get_tracer() -> Tracer:
    """The process tracer."""
    return _TRACER


def span(name: str, *, force: bool = False, **attrs):
    """Open a span on the process tracer (see :meth:`Tracer.span`)."""
    return _TRACER.span(name, force=force, **attrs)


def span_from(ctx: Optional[SpanContext], name: str, **attrs):
    """Open a span under a serialized context (see
    :meth:`Tracer.span_from`)."""
    return _TRACER.span_from(ctx, name, **attrs)


def current_context() -> Optional[SpanContext]:
    """The active span's picklable ``(trace_id, span_id)``, or ``None``
    when nothing is recording in this context."""
    cur = _CURRENT.get()
    if cur is None:
        return None
    return cur.context


def enable(sample: float = 1.0) -> None:
    """Turn process-wide tracing on at the given root sample rate."""
    _TRACER.configure(enabled=True, sample=sample)


def disable() -> None:
    """Turn process-wide tracing off (buffered spans stay readable)."""
    _TRACER.configure(enabled=False)


@contextmanager
def collect_spans(enabled: bool = True):
    """Divert this context's spans into a list (``None`` when
    ``enabled`` is false — the no-tracing fast path keeps one shape at
    the call site)."""
    if not enabled:
        yield None
        return
    with _TRACER.collect() as bucket:
        yield bucket


def ingest(spans: Optional[Iterable[dict]]) -> None:
    """Adopt worker-collected spans into the process tracer."""
    if spans:
        _TRACER.ingest(spans)
