"""Trace exporters: Chrome ``trace_event`` JSON, JSONL, and the CLI's
indented flame summary.

All exporters consume the plain finished-span dicts the tracer buffers
(:meth:`repro.obs.trace.Span.export`), so anything that can hand over a
list of spans — the process ring buffer, a ``/trace/<id>`` response
body, a JSONL file read back — can be exported again.

* :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format (complete ``"ph": "X"`` events, microsecond
  timestamps): load the file at ``chrome://tracing`` or
  https://ui.perfetto.dev to see the request as a flame chart, one
  track per pid/tid — process-pool shards land on their own track.
* :func:`write_jsonl` / :func:`read_jsonl` — one span dict per line,
  the archival/streaming form.
* :func:`span_tree` / :func:`render_tree` — parent/child reassembly
  and the indented per-span ms summary ``repro trace`` prints.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional


def to_chrome_trace(spans: Iterable[dict]) -> dict:
    """Spans as a Chrome ``trace_event`` document (see module doc)."""
    events = []
    for record in spans:
        args = {
            "trace_id": record["trace_id"],
            "span_id": record["span_id"],
            "parent_id": record["parent_id"],
        }
        args.update(record.get("attrs") or {})
        events.append(
            {
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": record["start"] * 1e6,
                "dur": max(record["duration"], 0.0) * 1e6,
                "pid": record.get("pid", 0),
                "tid": record.get("tid", 0),
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Iterable[dict], path: str) -> None:
    """Write the Chrome trace JSON for ``chrome://tracing``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(spans), handle)


def write_jsonl(spans: Iterable[dict], path: str) -> None:
    """One span dict per line."""
    with open(path, "w") as handle:
        for record in spans:
            handle.write(json.dumps(record))
            handle.write("\n")


def read_jsonl(path: str) -> list[dict]:
    """Load spans written by :func:`write_jsonl`."""
    out = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def span_tree(spans: Iterable[dict]) -> list[dict]:
    """Reassemble parent/child structure: a list of root nodes, each
    ``{"span": record, "children": [nodes sorted by start]}``. A span
    whose parent is absent (e.g. the buffer evicted it, or only one
    trace's spans were passed) becomes a root."""
    records = list(spans)
    by_id = {r["span_id"]: {"span": r, "children": []} for r in records}
    roots = []
    for record in records:
        node = by_id[record["span_id"]]
        parent = record.get("parent_id")
        if parent is not None and parent in by_id:
            by_id[parent]["children"].append(node)
        else:
            roots.append(node)
    for node in by_id.values():
        node["children"].sort(key=lambda n: n["span"]["start"])
    roots.sort(key=lambda n: n["span"]["start"])
    return roots


def render_tree(spans: Iterable[dict], max_attrs: int = 4) -> str:
    """The indented flame summary ``repro trace`` prints: one line per
    span, depth-indented, with duration in ms and the first few
    attributes inline."""
    lines: list[str] = []

    def walk(node: dict, depth: int) -> None:
        record = node["span"]
        attrs = record.get("attrs") or {}
        shown = ", ".join(
            f"{key}={value}"
            for key, value in list(attrs.items())[:max_attrs]
        )
        if len(attrs) > max_attrs:
            shown += ", ..."
        indent = "  " * depth
        label = f"{indent}{record['name']}"
        lines.append(
            f"{label:<44} {record['duration'] * 1e3:>9.2f} ms"
            + (f"    {shown}" if shown else "")
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(spans):
        walk(root, 0)
    return "\n".join(lines)
