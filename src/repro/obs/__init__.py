"""Unified observability: request-scoped tracing, the metrics
registry, and trace/metric exporters.

One import serves every layer (``from repro import obs``):

* **tracing** — ``obs.span("fusion.grouping", width=3)`` context
  managers with a context-local current span; one trace ID minted at
  ``Session.compile()`` or the service's ``/submit`` follows the
  request through the pass manager, every storage-tier lookup (tier
  hit/miss as span attributes), and executor dispatch — across
  thread/process pools via ``obs.current_context()`` /
  ``obs.span_from(ctx, ...)``. Disabled (the default) it costs one
  function call per site; enable with ``obs.enable()``, the
  ``REPRO_TRACE`` environment variable, ``CompileOptions(trace=True)``,
  or the service/CLI tracing flags. See :mod:`repro.obs.trace`.
* **metrics** — ``obs.REGISTRY``: typed counters/gauges/histograms the
  pipeline, storage tiers, and executor register into, plus
  compatibility views over the legacy ``stats()`` dicts; exported as a
  JSON snapshot or Prometheus text (``GET /metrics``). See
  :mod:`repro.obs.metrics`.
* **export** — Chrome ``trace_event`` JSON for ``chrome://tracing``,
  JSONL, and the CLI flame summary. See :mod:`repro.obs.export`.
"""

from repro.obs.export import (
    read_jsonl,
    render_tree,
    span_tree,
    to_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    SpanContext,
    Tracer,
    collect_spans,
    current_context,
    disable,
    enable,
    get_tracer,
    ingest,
    span,
    span_from,
)

__all__ = [
    "NOOP_SPAN",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanContext",
    "Tracer",
    "collect_spans",
    "current_context",
    "disable",
    "enable",
    "get_tracer",
    "ingest",
    "read_jsonl",
    "render_tree",
    "span",
    "span_from",
    "span_tree",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
