"""The metrics registry: typed counters/gauges/histograms plus
compatibility views over the legacy ``stats()`` dicts.

Before this module the system's runtime counters lived in five
incompatible shapes — ``PassTiming.detail`` dicts, per-tier
``stats()``, ``BatchExecutor`` attributes, ``BatchMetrics`` records,
and ``LatencySeries`` summaries. They all still exist (every legacy
``stats()`` key keeps working), but they now *also* land in one
queryable namespace:

* **instruments** — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram`, created once per process through
  :data:`REGISTRY` (``REGISTRY.counter("repro_exec_trees_total")``),
  optionally labelled (``.labels(pass_name="fusion").inc()``), updated
  at event sites (the pass manager, the tiered store, the executor).
* **views** — named callbacks over the stateful legacy dicts
  (``REGISTRY.register_view("repro_cache", GLOBAL_CACHE.stats)``),
  polled at export time and flattened to numeric gauges. Registering a
  view costs nothing per event, so the tiers keep their own counters
  and the registry reads them on demand.

Exports: :meth:`MetricsRegistry.snapshot` (one JSON-ready dict — the
programmatic face) and :meth:`MetricsRegistry.render_prometheus` (the
text exposition format behind the service's ``GET /metrics``).

Instruments are cheap (one lock + one float op) and always on; the
<2% tracing-overhead gate in ``benchmarks/test_obs_overhead.py``
covers the instrumented warm path.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Optional, Sequence

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """Prometheus-legal metric name (everything else becomes ``_``)."""
    return _NAME_RE.sub("_", name)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down."""

    kind = "gauge"
    __slots__ = ("_lock", "_value")

    def __init__(self):
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


#: Latency-shaped default buckets (seconds), Prometheus style.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Histogram:
    """Fixed-bucket distribution (cumulative on export, like
    Prometheus): per-bucket counts plus sum/count."""

    kind = "histogram"
    __slots__ = ("buckets", "_lock", "_counts", "_sum", "_count")

    def __init__(self, buckets: Optional[Sequence[float]] = None):
        self.buckets = tuple(sorted(buckets or DEFAULT_BUCKETS))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # +1: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs ending at +Inf."""
        with self._lock:
            counts = list(self._counts)
        out = []
        running = 0
        for bound, n in zip(self.buckets, counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def summary(self) -> dict:
        with self._lock:
            count, total = self._count, self._sum
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """One named metric with zero or more label dimensions; children
    are created on first use of a label combination. A label-less
    family proxies its single child, so ``REGISTRY.counter(n).inc()``
    works without a ``labels()`` hop."""

    def __init__(self, name: str, kind: str, help_text: str = "",
                 label_names: Sequence[str] = (),
                 buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = tuple(label_names)
        self._buckets = tuple(buckets) if buckets else None
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, **labels):
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"metric {self.name!r} takes labels "
                f"{sorted(self.label_names)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make()
            return child

    def samples(self) -> list[tuple[tuple, object]]:
        """``(label_values, instrument)`` pairs, insertion order."""
        with self._lock:
            return list(self._children.items())

    # -- label-less convenience ----------------------------------------

    def _default(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value


def _flatten_numeric(prefix: str, value, out: dict) -> None:
    """Flatten a legacy stats dict to dotted numeric leaves (strings,
    lists, and other shapes are dropped — they have no metric form)."""
    if isinstance(value, bool):
        out[prefix] = int(value)
    elif isinstance(value, (int, float)):
        out[prefix] = value
    elif isinstance(value, dict):
        for key, sub in value.items():
            _flatten_numeric(f"{prefix}_{key}" if prefix else str(key),
                             sub, out)


class MetricsRegistry:
    """One queryable namespace of instruments and legacy-dict views."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, Family] = {}
        self._views: dict[str, Callable[[], dict]] = {}

    # -- instrument creation (idempotent per name) ----------------------

    def _family(self, name: str, kind: str, help_text: str,
                labels: Sequence[str],
                buckets: Optional[Sequence[float]] = None) -> Family:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind}, not {kind}"
                    )
                if family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered with labels "
                        f"{family.label_names}, not {tuple(labels)}"
                    )
                return family
            family = Family(name, kind, help_text, labels, buckets)
            self._families[name] = family
            return family

    def counter(self, name: str, help_text: str = "",
                labels: Sequence[str] = ()) -> Family:
        return self._family(name, "counter", help_text, labels)

    def gauge(self, name: str, help_text: str = "",
              labels: Sequence[str] = ()) -> Family:
        return self._family(name, "gauge", help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  labels: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Family:
        return self._family(name, "histogram", help_text, labels, buckets)

    # -- legacy-dict views ----------------------------------------------

    def register_view(self, name: str,
                      producer: Callable[[], dict]) -> None:
        """(Re-)register a named callback whose dict is flattened to
        gauges at export time — the compatibility face of the legacy
        ``stats()`` surfaces. Last registration under a name wins (a
        restarted service re-registers its tiers)."""
        with self._lock:
            self._views[name] = producer

    def unregister_view(self, name: str) -> None:
        with self._lock:
            self._views.pop(name, None)

    def _view_values(self) -> dict[str, float]:
        with self._lock:
            views = list(self._views.items())
        out: dict[str, float] = {}
        for name, producer in views:
            try:
                produced = producer()
            except Exception:  # a dead view must not break a scrape
                continue
            _flatten_numeric(name, produced, out)
        return out

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-ready dict of everything: instruments by name (with
        ``name{label=value}`` keys for labelled children, histograms as
        count/sum/mean summaries) plus the flattened views."""
        with self._lock:
            families = list(self._families.values())
        out: dict = {}
        for family in families:
            for label_values, instrument in family.samples():
                key = family.name
                if family.label_names:
                    rendered = ",".join(
                        f"{n}={v}" for n, v in
                        zip(family.label_names, label_values)
                    )
                    key = f"{family.name}{{{rendered}}}"
                if family.kind == "histogram":
                    out[key] = instrument.summary()
                else:
                    out[key] = instrument.value
        out.update(self._view_values())
        return out

    def render_prometheus(self) -> str:
        """The text exposition format (``GET /metrics``)."""
        with self._lock:
            families = list(self._families.values())
        lines: list[str] = []

        def escape(value) -> str:
            return str(value).replace("\\", "\\\\").replace('"', '\\"')

        def label_text(names, values, extra=()):
            pairs = [f'{n}="{escape(v)}"' for n, v in zip(names, values)]
            pairs.extend(extra)
            return "{" + ",".join(pairs) + "}" if pairs else ""

        for family in families:
            name = sanitize_metric_name(family.name)
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for label_values, instrument in family.samples():
                labels = family.label_names
                if family.kind == "histogram":
                    for bound, count in instrument.cumulative():
                        le = "+Inf" if bound == float("inf") else repr(bound)
                        le_pair = 'le="' + le + '"'
                        lines.append(
                            f"{name}_bucket"
                            f"{label_text(labels, label_values, [le_pair])}"
                            f" {count}"
                        )
                    lines.append(
                        f"{name}_sum{label_text(labels, label_values)}"
                        f" {instrument.sum}"
                    )
                    lines.append(
                        f"{name}_count{label_text(labels, label_values)}"
                        f" {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{name}{label_text(labels, label_values)}"
                        f" {instrument.value}"
                    )
        view_values = self._view_values()
        for key in sorted(view_values):
            name = sanitize_metric_name(key)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {view_values[key]}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument and view (tests only — production
        metrics are process-lifetime)."""
        with self._lock:
            self._families.clear()
            self._views.clear()


#: The process registry every subsystem registers into.
REGISTRY = MetricsRegistry()
