"""Deprecation plumbing for the pre-Workload entry points.

The unified workload API (PR 3) made :class:`repro.api.Workload` the one
way to bundle a program with its impls, globals and tree builder. The
old spellings — ``pipeline.compile(source, pure_impls=...)`` and direct
``ExecRequest(source=..., build_tree=...)`` construction — keep working
as thin shims, but each emits a :class:`DeprecationWarning` so callers
migrate.

The shims themselves are still what the *internal* plumbing executes
(the executor replays requests, the runner builds them in bulk), and
internal traffic must not spam warnings the user cannot act on. Those
call sites wrap themselves in :func:`suppress_legacy_warnings`; the flag
is thread-local because the executor constructs requests from its
dispatcher and worker threads concurrently with user code.
"""

from __future__ import annotations

import threading
import warnings
from contextlib import contextmanager

_STATE = threading.local()


@contextmanager
def suppress_legacy_warnings():
    """Mark the current thread as internal plumbing: legacy-entry-point
    shims stay silent inside this context."""
    previous = getattr(_STATE, "internal", 0)
    _STATE.internal = previous + 1
    try:
        yield
    finally:
        _STATE.internal = previous


def legacy_warnings_suppressed() -> bool:
    return getattr(_STATE, "internal", 0) > 0


def warn_legacy(message: str, *, stacklevel: int = 3) -> None:
    """Emit one :class:`DeprecationWarning` unless the caller is marked
    as internal plumbing."""
    if not legacy_warnings_suppressed():
        warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
