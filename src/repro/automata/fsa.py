"""Core NFA representation used for access summaries.

Labels are plain strings (field identities such as ``"Group.Content"``, the
traversed-node marker, global names, ...). Two sentinel labels get special
treatment by the algebra in :mod:`repro.automata.ops`:

* :data:`EPSILON` — the silent transition used when gluing machines together.
* :data:`ANY` — a wildcard transition that stands for *every* concrete
  member label. The paper introduces it for accesses that may touch any
  field below a location: whole-object reads of opaque C++ values, and the
  ``new``/``delete`` statements that (de)allocate entire subtrees.
"""

from __future__ import annotations

from typing import Iterable, Iterator

EPSILON = "ε"  # ε
ANY = "⊤"  # ⊤ — matches any concrete label


def labels_compatible(a: str, b: str) -> bool:
    """True if transitions labeled *a* and *b* can fire on a common symbol."""
    if a == EPSILON or b == EPSILON:
        return False
    return a == b or a == ANY or b == ANY


def _merged_label(a: str, b: str) -> str:
    """The label of the product transition for compatible labels *a*, *b*."""
    if a == ANY:
        return b
    return a


class Automaton:
    """A mutable NFA over string labels.

    States are dense integers allocated by :meth:`add_state`. The automaton
    has a single start state and a set of accepting states. The language is
    the set of label sequences (never containing ``EPSILON``; possibly
    containing ``ANY`` which denotes the union over all concrete labels).
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._num_states = 1
        self.start = 0
        self.accepting: set[int] = set()
        # transitions[state] -> {label -> set(successor states)}
        self._transitions: list[dict[str, set[int]]] = [{}]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_state(self, accepting: bool = False) -> int:
        state = self._num_states
        self._num_states += 1
        self._transitions.append({})
        if accepting:
            self.accepting.add(state)
        return state

    def add_transition(self, src: int, label: str, dst: int) -> None:
        self._transitions[src].setdefault(label, set()).add(dst)

    def set_accepting(self, state: int, accepting: bool = True) -> None:
        if accepting:
            self.accepting.add(state)
        else:
            self.accepting.discard(state)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    @property
    def num_states(self) -> int:
        return self._num_states

    def transitions_from(self, state: int) -> dict[str, set[int]]:
        return self._transitions[state]

    def all_transitions(self) -> Iterator[tuple[int, str, int]]:
        for src in range(self._num_states):
            for label, dsts in self._transitions[src].items():
                for dst in dsts:
                    yield src, label, dst

    def alphabet(self) -> set[str]:
        """Concrete labels appearing on transitions (excludes sentinels)."""
        result: set[str] = set()
        for _, label, _ in self.all_transitions():
            if label not in (EPSILON, ANY):
                result.add(label)
        return result

    def is_trivially_empty(self) -> bool:
        """True when no accepting state exists at all (cheap pre-check)."""
        return not self.accepting

    # ------------------------------------------------------------------
    # simulation
    # ------------------------------------------------------------------

    def epsilon_closure(self, states: Iterable[int]) -> frozenset[int]:
        stack = list(states)
        seen = set(stack)
        while stack:
            state = stack.pop()
            for dst in self._transitions[state].get(EPSILON, ()):
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
        return frozenset(seen)

    def step(self, states: Iterable[int], symbol: str) -> frozenset[int]:
        """One subset-construction step on a *concrete* input symbol.

        ``ANY`` transitions fire on every concrete symbol.
        """
        next_states: set[int] = set()
        for state in states:
            table = self._transitions[state]
            next_states.update(table.get(symbol, ()))
            next_states.update(table.get(ANY, ()))
        return self.epsilon_closure(next_states)

    def accepts(self, path: Iterable[str]) -> bool:
        """Whether the automaton accepts the given concrete label sequence."""
        current = self.epsilon_closure([self.start])
        for symbol in path:
            current = self.step(current, symbol)
            if not current:
                return False
        return any(state in self.accepting for state in current)

    # ------------------------------------------------------------------
    # composition helpers used by the access-summary builders
    # ------------------------------------------------------------------

    def attach(self, other: "Automaton", at_state: int) -> dict[int, int]:
        """Copy *other* into this automaton, gluing other's start to *at_state*.

        Returns the state remapping (other's state id -> new id here). The
        glue is an epsilon transition so that anything accepted by *other*
        is accepted as a suffix at ``at_state``. Used when attaching simple
        statement automata onto labeled call-graph nodes (paper Fig. 5b).
        """
        mapping: dict[int, int] = {}
        for state in range(other.num_states):
            mapping[state] = self.add_state(accepting=state in other.accepting)
        for src, label, dst in other.all_transitions():
            self.add_transition(mapping[src], label, mapping[dst])
        self.add_transition(at_state, EPSILON, mapping[other.start])
        return mapping

    def copy(self) -> "Automaton":
        clone = Automaton(self.name)
        clone._num_states = self._num_states
        clone.start = self.start
        clone.accepting = set(self.accepting)
        clone._transitions = [
            {label: set(dsts) for label, dsts in table.items()}
            for table in self._transitions
        ]
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Automaton({self.name!r}, states={self._num_states}, "
            f"accepting={sorted(self.accepting)})"
        )

    def to_dot(self) -> str:
        """Graphviz rendering, for debugging and documentation."""
        lines = ["digraph automaton {", "  rankdir=LR;"]
        for state in range(self._num_states):
            shape = "doublecircle" if state in self.accepting else "circle"
            lines.append(f'  {state} [shape={shape}];')
        lines.append(f"  __start [shape=point];")
        lines.append(f"  __start -> {self.start};")
        for src, label, dst in self.all_transitions():
            lines.append(f'  {src} -> {dst} [label="{label}"];')
        lines.append("}")
        return "\n".join(lines)


def from_path(
    labels: list[str],
    accept_prefixes: bool,
    any_suffix: bool = False,
    name: str = "",
) -> Automaton:
    """Build a primitive access-path automaton (paper §3.2.1).

    * ``accept_prefixes=True`` builds a *read* automaton: every non-empty
      prefix of the path is accepted (reading ``a.b.c`` reads ``a`` and
      ``a.b`` as well).
    * ``accept_prefixes=False`` builds a *write* automaton: only the full
      path is accepted.
    * ``any_suffix=True`` appends an ``ANY`` self-loop on the final state,
      used for whole-object accesses and for ``new``/``delete`` statements
      that touch every location below the manipulated node.
    """
    automaton = Automaton(name)
    current = automaton.start
    for index, label in enumerate(labels):
        is_last = index == len(labels) - 1
        accepting = accept_prefixes or is_last
        nxt = automaton.add_state(accepting=accepting)
        automaton.add_transition(current, label, nxt)
        current = nxt
    if not labels:
        automaton.set_accepting(current)
    if any_suffix:
        automaton.add_transition(current, ANY, current)
    return automaton
