"""Automaton algebra: union, intersection, emptiness, enumeration.

The dependence test of the paper (§3.2.1, "Finding dependences between
statements") is: intersect the write automaton of one statement with the
read/write automata of another and check emptiness. :func:`intersects`
implements that check directly on the product space without materializing
the product machine; :func:`intersect` materializes it (used by tests and
by diagnostics that want to show a witness access path).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.automata.fsa import ANY, EPSILON, Automaton, labels_compatible, _merged_label


def union(automata: Iterable[Automaton], name: str = "") -> Automaton:
    """Language union: a fresh start state with epsilon edges to each part."""
    result = Automaton(name)
    for automaton in automata:
        result.attach(automaton, result.start)
    return result


def _product_moves(
    a: Automaton, b: Automaton, pa: int, pb: int
) -> Iterator[tuple[str, int, int]]:
    """All joint moves of the product automaton from pair ``(pa, pb)``.

    Epsilon moves advance one side at a time; labeled moves advance both
    sides on compatible labels (``ANY`` matches anything concrete).
    """
    for label, dsts in a.transitions_from(pa).items():
        if label == EPSILON:
            for dst in dsts:
                yield EPSILON, dst, pb
    for label, dsts in b.transitions_from(pb).items():
        if label == EPSILON:
            for dst in dsts:
                yield EPSILON, pa, dst
    for label_a, dsts_a in a.transitions_from(pa).items():
        if label_a == EPSILON:
            continue
        for label_b, dsts_b in b.transitions_from(pb).items():
            if label_b == EPSILON:
                continue
            if not labels_compatible(label_a, label_b):
                continue
            merged = _merged_label(label_a, label_b)
            for dst_a in dsts_a:
                for dst_b in dsts_b:
                    yield merged, dst_a, dst_b


def intersects(a: Automaton, b: Automaton) -> bool:
    """Emptiness test of the intersection language (the dependence check).

    Performs a BFS over reachable product states and returns True as soon
    as a jointly-accepting pair is found.
    """
    if a.is_trivially_empty() or b.is_trivially_empty():
        return False
    start = (a.start, b.start)
    seen = {start}
    queue: deque[tuple[int, int]] = deque([start])
    while queue:
        pa, pb = queue.popleft()
        if pa in a.accepting and pb in b.accepting:
            return True
        for _, na, nb in _product_moves(a, b, pa, pb):
            pair = (na, nb)
            if pair not in seen:
                seen.add(pair)
                queue.append(pair)
    return False


def intersect(a: Automaton, b: Automaton, name: str = "") -> Automaton:
    """Materialized product automaton (used by tests and diagnostics)."""
    result = Automaton(name)
    start = (a.start, b.start)
    state_map: dict[tuple[int, int], int] = {start: result.start}
    if a.start in a.accepting and b.start in b.accepting:
        result.set_accepting(result.start)
    queue: deque[tuple[int, int]] = deque([start])
    while queue:
        pair = queue.popleft()
        pa, pb = pair
        src = state_map[pair]
        for label, na, nb in _product_moves(a, b, pa, pb):
            nxt = (na, nb)
            if nxt not in state_map:
                accepting = na in a.accepting and nb in b.accepting
                state_map[nxt] = result.add_state(accepting=accepting)
                queue.append(nxt)
            result.add_transition(src, label, state_map[nxt])
    return prune(result, name=name)


def prune(automaton: Automaton, name: str = "") -> Automaton:
    """Drop states that are unreachable or cannot reach an accepting state."""
    forward = _reachable_forward(automaton)
    backward = _reachable_backward(automaton)
    keep = forward & backward
    result = Automaton(name or automaton.name)
    if automaton.start not in keep:
        # Empty language: a single non-accepting start state.
        return result
    mapping = {automaton.start: result.start}
    if automaton.start in automaton.accepting:
        result.set_accepting(result.start)
    for state in sorted(keep):
        if state == automaton.start:
            continue
        mapping[state] = result.add_state(accepting=state in automaton.accepting)
    for src, label, dst in automaton.all_transitions():
        if src in keep and dst in keep:
            result.add_transition(mapping[src], label, mapping[dst])
    return result


def _reachable_forward(automaton: Automaton) -> set[int]:
    seen = {automaton.start}
    stack = [automaton.start]
    while stack:
        state = stack.pop()
        for _, dsts in automaton.transitions_from(state).items():
            for dst in dsts:
                if dst not in seen:
                    seen.add(dst)
                    stack.append(dst)
    return seen


def _reachable_backward(automaton: Automaton) -> set[int]:
    predecessors: dict[int, set[int]] = {}
    for src, _, dst in automaton.all_transitions():
        predecessors.setdefault(dst, set()).add(src)
    seen = set(automaton.accepting)
    stack = list(automaton.accepting)
    while stack:
        state = stack.pop()
        for src in predecessors.get(state, ()):
            if src not in seen:
                seen.add(src)
                stack.append(src)
    return seen


def enumerate_paths(
    automaton: Automaton,
    alphabet: Iterable[str],
    max_length: int,
) -> set[tuple[str, ...]]:
    """All concrete accepted label sequences up to ``max_length``.

    ``ANY`` transitions are expanded over the supplied alphabet. Exponential
    in ``max_length`` — strictly a testing utility for cross-checking the
    automaton algebra against brute force.
    """
    alphabet = sorted(set(alphabet))
    results: set[tuple[str, ...]] = set()
    start = automaton.epsilon_closure([automaton.start])

    def explore(states: frozenset[int], path: tuple[str, ...]) -> None:
        if any(state in automaton.accepting for state in states):
            results.add(path)
        if len(path) >= max_length:
            return
        for symbol in alphabet:
            nxt = automaton.step(states, symbol)
            if nxt:
                explore(nxt, path + (symbol,))

    explore(start, ())
    return results
