"""Finite-automata substrate for access summaries.

The original Grafter prototype uses OpenFST to represent the sets of access
paths a statement (or a transitively-reachable traversal call) may touch, and
decides dependences by intersecting those automata and testing for emptiness
(paper §3.2). This package is a small, dependency-free replacement providing
exactly the operations Grafter needs:

* :class:`Automaton` — a nondeterministic finite automaton over string
  labels, with two special labels: :data:`EPSILON` (silent transition) and
  :data:`ANY` (wildcard that matches every concrete label, used for
  whole-object and whole-subtree accesses, paper §3.2.1).
* :func:`union` — language union (used to combine primitive access-path
  automata into statement summaries).
* :func:`intersect` / :func:`intersects` — product construction respecting
  the ``ANY`` wildcard; :func:`intersects` is the emptiness test that
  implements the paper's dependence check.
* :func:`enumerate_paths` — bounded language enumeration, used by the test
  suite to cross-check automaton algebra against brute force.
"""

from repro.automata.fsa import ANY, EPSILON, Automaton, from_path
from repro.automata.ops import (
    enumerate_paths,
    intersect,
    intersects,
    prune,
    union,
)

__all__ = [
    "ANY",
    "EPSILON",
    "Automaton",
    "from_path",
    "union",
    "intersect",
    "intersects",
    "prune",
    "enumerate_paths",
]
