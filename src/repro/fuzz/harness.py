"""Differential fuzzing harness: interpreter vs compiled, object vs
pooled.

A :class:`FuzzCase` is a fully serialized experiment — seed, program
source, tree (as a snapshot-style dict), and initial globals — so any
failure replays byte-identically from a JSON file (``repro fuzz
--replay``). :func:`run_case` executes the case six ways:

====================  ==========================================
label                 executor
====================  ==========================================
``interp/object``     :class:`repro.interp.InterpretedModule` (baseline)
``interp/pooled``     same, through a ``ForestPool`` view
``unfused/object``    ``compile_program`` → generated Python
``fused/object``      ``fuse_program`` + ``compile_fused``
``unfused/pooled``    ``compile_pooled_program`` (SoA columns)
``fused/pooled``      ``compile_pooled_fused``
====================  ==========================================

and diffs every execution against the interpreter/object baseline on
snapshot + globals + write-set (:func:`repro.interp.diff_report`). The
reference interpreter is the semantics; everything else is an
optimization that must be observationally invisible.

On divergence, :func:`minimize_case` shrinks the tree (subtree →
``Leaf``) and then the program (dropping body statements) while the
divergence persists, so the committed repro is small enough to read.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.fuzz.generators import (
    build_tree_from_dict,
    random_globals,
    random_program_source,
    random_tree_dict,
)
from repro.interp import (
    ExecutionRecord,
    InterpretedModule,
    diff_report,
    make_record,
)
from repro.runtime.heap import Heap

BASELINE = "interp/object"
LABELS = (
    BASELINE,
    "interp/pooled",
    "unfused/object",
    "fused/object",
    "unfused/pooled",
    "fused/pooled",
)


@dataclass
class FuzzCase:
    """One fully replayable differential experiment."""

    seed: int
    source: str
    tree: dict
    globals_map: dict
    max_depth: int = 4

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "max_depth": self.max_depth,
                "globals": self.globals_map,
                "tree": self.tree,
                "source": self.source,
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "FuzzCase":
        data = json.loads(text)
        return cls(
            seed=data["seed"],
            source=data["source"],
            tree=data["tree"],
            globals_map=data["globals"],
            max_depth=data.get("max_depth", 4),
        )


def generate_case(seed: int, max_depth: int = 4) -> FuzzCase:
    """Deterministic: the same seed always yields the same case."""
    rng = random.Random(seed)
    return FuzzCase(
        seed=seed,
        source=random_program_source(rng),
        tree=random_tree_dict(rng, max_depth=max_depth),
        globals_map=random_globals(rng),
        max_depth=max_depth,
    )


@dataclass
class CaseResult:
    """Outcome of running one case across the execution matrix."""

    case: FuzzCase
    records: dict = field(default_factory=dict)  # label -> ExecutionRecord
    errors: dict = field(default_factory=dict)  # label -> error text
    divergences: list = field(default_factory=list)  # (label, report)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def report(self) -> str:
        if self.ok:
            return f"seed {self.case.seed}: OK"
        lines = [f"seed {self.case.seed}: {len(self.divergences)} divergence(s)"]
        for label, text in self.divergences:
            lines.append(f"--- {BASELINE} vs {label} ---")
            lines.append(text)
        return "\n".join(lines)


def _execute(program, case: FuzzCase, label: str) -> ExecutionRecord:
    """One execution of *case* under *label*'s executor; records
    snapshot + final globals + derived write-set."""
    heap = Heap(program)
    root = build_tree_from_dict(program, heap, case.tree)
    before = root.snapshot(program)
    globals_map = dict(case.globals_map)
    mode, layout = label.split("/")
    if mode == "interp":
        module = InterpretedModule(program, layout=layout)
        context = module.run_entry(heap, root, globals_map)
    elif mode == "unfused":
        if layout == "object":
            from repro.codegen import compile_program

            module = compile_program(program)
        else:
            from repro.codegen.pooled_backend import compile_pooled_program

            module = compile_pooled_program(program)
        context = module.run_entry(heap, root, globals_map)
    else:  # fused
        from repro.fusion import fuse_program

        fused = fuse_program(program)
        if layout == "object":
            from repro.codegen import compile_fused

            module = compile_fused(fused)
        else:
            from repro.codegen.pooled_backend import compile_pooled_fused

            module = compile_pooled_fused(fused)
        context = module.run_fused(heap, root, globals_map)
    return make_record(
        label,
        before,
        root.snapshot(program),
        case.globals_map,
        context.globals,
    )


def run_case(case: FuzzCase) -> CaseResult:
    """Run the full execution matrix and diff everything against the
    interpreter/object baseline. An executor error is itself a
    divergence (unless the baseline fails identically — then the case
    is reported as a baseline error and nothing is compared)."""
    from repro.frontend import parse_program

    result = CaseResult(case)
    program = parse_program(case.source, name=f"fuzz-{case.seed}")
    for label in LABELS:
        try:
            result.records[label] = _execute(program, case, label)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            result.errors[label] = f"{type(exc).__name__}: {exc}"
    baseline = result.records.get(BASELINE)
    baseline_error = result.errors.get(BASELINE)
    for label in LABELS[1:]:
        if label in result.errors:
            # error *presence* must agree; the failure detail is
            # implementation-defined (the interpreter raises a clean
            # RuntimeFailure where generated code may surface a
            # TypeError from the same null dereference)
            if baseline_error is None:
                result.divergences.append(
                    (
                        label,
                        f"{label} raised {result.errors[label]} but "
                        f"{BASELINE} succeeded",
                    )
                )
            continue
        if baseline is None:
            result.divergences.append(
                (
                    label,
                    f"{BASELINE} raised {baseline_error} but {label} "
                    "succeeded",
                )
            )
            continue
        report = diff_report(baseline, result.records[label])
        if report is not None:
            result.divergences.append((label, report))
    return result


def case_diverges(case: FuzzCase) -> bool:
    return not run_case(case).ok


# ===========================================================================
# minimization
# ===========================================================================


def _leaf_dict() -> dict:
    return {
        "__type__": "Leaf",
        "d0": 0,
        "d1": 0,
        "d2": 0,
        "c0": None,
        "c1": None,
    }


def _subtree_slots(tree: dict, prefix: tuple = ()) -> list[tuple]:
    """Paths (as key tuples) of every non-Leaf subtree, deepest last so
    shrinking walks bottom-up replacements after trying the big cuts."""
    slots: list[tuple] = []
    for key, value in tree.items():
        if isinstance(value, dict):
            child = prefix + (key,)
            if value.get("__type__") != "Leaf":
                slots.append(child)
            slots.extend(_subtree_slots(value, child))
    return slots


def _replace_subtree(tree: dict, path: tuple, replacement: dict) -> dict:
    clone = json.loads(json.dumps(tree))
    target = clone
    for key in path[:-1]:
        target = target[key]
    target[path[-1]] = replacement
    return clone


_BODY_STMT = re.compile(r"^        \S")


def _source_variants(source: str):
    """Smaller programs: drop one body statement line at a time (the
    only lines a generated program has at 8-space indent)."""
    lines = source.split("\n")
    for index, line in enumerate(lines):
        if _BODY_STMT.match(line):
            yield "\n".join(lines[:index] + lines[index + 1 :])


def minimize_case(
    case: FuzzCase,
    diverges: Callable[[FuzzCase], bool] = case_diverges,
) -> FuzzCase:
    """Greedy shrink: prune the tree subtree-by-subtree, then drop body
    statements, keeping every variant that still diverges. ``diverges``
    is injectable for tests."""
    from repro.frontend import parse_program

    current = case
    # 1. tree: replace whole subtrees with a bare Leaf
    changed = True
    while changed:
        changed = False
        for path in _subtree_slots(current.tree):
            candidate = FuzzCase(
                seed=current.seed,
                source=current.source,
                tree=_replace_subtree(current.tree, path, _leaf_dict()),
                globals_map=current.globals_map,
                max_depth=current.max_depth,
            )
            if diverges(candidate):
                current = candidate
                changed = True
                break
    # 2. source: drop statements while the program still parses and the
    # divergence persists
    changed = True
    while changed:
        changed = False
        for variant in _source_variants(current.source):
            try:
                parse_program(variant, name=f"fuzz-{current.seed}-min")
            except Exception:  # noqa: BLE001 - invalid shrink, skip
                continue
            candidate = FuzzCase(
                seed=current.seed,
                source=variant,
                tree=current.tree,
                globals_map=current.globals_map,
                max_depth=current.max_depth,
            )
            if diverges(candidate):
                current = candidate
                changed = True
                break
    return current


# ===========================================================================
# campaigns + repro files
# ===========================================================================


def save_repro(case: FuzzCase, path: str) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(case.to_json() + "\n")
    return path


def load_repro(path: str) -> FuzzCase:
    with open(path, "r", encoding="utf-8") as handle:
        return FuzzCase.from_json(handle.read())


def run_campaign(
    count: int,
    start_seed: int = 0,
    max_depth: int = 4,
    minimize: bool = True,
    progress: Optional[Callable[[CaseResult], None]] = None,
) -> list[CaseResult]:
    """Run *count* seeded cases; return the failing results (with their
    cases already minimized unless ``minimize=False``)."""
    failures: list[CaseResult] = []
    for seed in range(start_seed, start_seed + count):
        result = run_case(generate_case(seed, max_depth=max_depth))
        if not result.ok:
            if minimize:
                small = minimize_case(result.case)
                result = run_case(small)
                if result.ok:  # shrink raced away the bug; keep original
                    result = run_case(generate_case(seed, max_depth=max_depth))
            failures.append(result)
        if progress is not None:
            progress(result)
    return failures
