"""Differential fuzzing: generated programs + trees, executed by every
backend, diffed against the reference interpreter.

See :mod:`repro.fuzz.harness` for the execution matrix and
:mod:`repro.fuzz.generators` for the seeded program/tree generators
(including the hazard classes shared with ``tests/generators.py``).
"""

from repro.fuzz.generators import (
    build_tree_from_dict,
    hazard_statements,
    random_globals,
    random_program_source,
    random_tree_dict,
)
from repro.fuzz.harness import (
    BASELINE,
    LABELS,
    CaseResult,
    FuzzCase,
    case_diverges,
    generate_case,
    load_repro,
    minimize_case,
    run_campaign,
    run_case,
    save_repro,
)

__all__ = [
    "BASELINE",
    "CaseResult",
    "FuzzCase",
    "LABELS",
    "build_tree_from_dict",
    "case_diverges",
    "generate_case",
    "hazard_statements",
    "load_repro",
    "minimize_case",
    "random_globals",
    "random_program_source",
    "random_tree_dict",
    "run_campaign",
    "run_case",
    "save_repro",
]
