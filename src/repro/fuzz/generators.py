"""Seeded random program/tree generation for differential fuzzing.

Self-contained (the ``repro fuzz`` CLI must work without the test
tree), but deliberately the same program shape as
``tests/generators.py``: a 4-type hierarchy (abstract ``N``, concrete
``A``/``B``/``Leaf``), data fields ``d0..d2``, children ``c0``/``c1``,
virtual traversals ``f0..f2`` with an int parameter, globals
``G0``/``G1``, and an entry schedule of 2–3 root calls.

On top of the base shapes it *always* draws from the hazard classes
that have actually shipped bugs:

* **global-reading call arguments after a global write** — the seed-765
  fusion soundness gap: grouping two calls on one receiver must not
  hoist a later call's argument evaluation over an earlier member's
  global writes (``grouping._argument_hazard``).
* **truncation after mutation** — ``return;`` *mid-body*, after fields
  (or topology) changed, so fused active-flag clearing must preserve
  everything the member already did.

Trees are generated as plain snapshot-style dicts (``{"__type__":
"A", "d0": 3, "c0": {...}, ...}``) rather than built ``Node`` graphs,
so a fuzz case serializes to JSON and replays byte-identically
(:func:`build_tree_from_dict` realizes them — module-level, picklable,
usable as an ``ExecRequest.build_tree``).
"""

from __future__ import annotations

import random

from repro.errors import RuntimeFailure
from repro.runtime.heap import Heap
from repro.runtime.node import Node

DATA = ("d0", "d1", "d2")
CHILDREN = ("c0", "c1")
METHODS = ("f0", "f1", "f2")
CONCRETE = ("A", "B", "Leaf")


def random_expr(rng: random.Random, extra: str, depth: int = 0) -> str:
    atoms = [
        f"this->{rng.choice(DATA)}",
        f"this->{extra}",
        "p0",
        str(rng.randint(-3, 9)),
        "G0",
        "G1",
    ]
    if depth >= 2 or rng.random() < 0.4:
        return rng.choice(atoms)
    op = rng.choice(["+", "-", "*"])
    return (
        f"({random_expr(rng, extra, depth + 1)} {op} "
        f"{random_expr(rng, extra, depth + 1)})"
    )


def hazard_statements(rng: random.Random, extra: str) -> list[str]:
    """One statement run from a known-shipped hazard class (see module
    doc). Shared with ``tests/generators.py`` so the test-suite
    generator and the fuzzer cover the same bug classes."""
    shape = rng.random()
    if shape < 0.5:
        # seed-765 class: write a global, then pass it (possibly inside
        # a larger expression) as a child call's argument — unfused
        # execution evaluates the argument only after the earlier
        # call's whole subtree ran
        which = rng.choice(["G0", "G1"])
        child = rng.choice(CHILDREN)
        method = rng.choice(METHODS)
        arg = (
            which
            if rng.random() < 0.5
            else f"({which} + {random_expr(rng, extra)})"
        )
        return [
            f"{which} = {which} + {random_expr(rng, extra)};",
            f"this->{child}->{method}({arg});",
        ]
    # truncation after mutation: mutate state (field, global, or
    # topology), then conditionally return mid-body
    target = rng.choice(DATA)
    mutation = rng.random()
    if mutation < 0.6:
        mutate = f"this->{target} = {random_expr(rng, extra)};"
    elif mutation < 0.8:
        which = rng.choice(["G0", "G1"])
        mutate = f"{which} = {which} + {random_expr(rng, extra)};"
    else:
        child = rng.choice(CHILDREN)
        mutate = (
            f"delete this->{child}; this->{child} = new Leaf(); "
            f"this->{child}->d0 = {rng.randint(0, 9)};"
        )
    cond_field = rng.choice(DATA)
    return [
        mutate,
        f"if (this->{cond_field} > {rng.randint(1, 5)}) return;",
    ]


def _random_body(rng: random.Random, extra: str) -> list[str]:
    stmts: list[str] = []
    if rng.random() < 0.25:
        stmts.append(
            f"if (this->{rng.choice(DATA)} > {rng.randint(2, 6)}) return;"
        )
    n = rng.randint(1, 4)
    for _ in range(n):
        kind = rng.random()
        if kind < 0.35:
            target = rng.choice(DATA + (extra,))
            stmts.append(f"this->{target} = {random_expr(rng, extra)};")
        elif kind < 0.5:
            which = rng.choice(["G0", "G1"])
            stmts.append(
                f"{which} = {which} + {random_expr(rng, extra)};"
            )
        elif kind < 0.62:
            cond_field = rng.choice(DATA)
            target = rng.choice(DATA)
            stmts.append(
                f"if (this->{cond_field} == {rng.randint(0, 3)}) "
                f"{{ this->{target} = {random_expr(rng, extra)}; }}"
            )
        elif kind < 0.78:
            child = rng.choice(CHILDREN)
            method = rng.choice(METHODS)
            stmts.append(
                f"this->{child}->{method}({random_expr(rng, extra)});"
            )
        elif kind < 0.88:
            stmts.extend(hazard_statements(rng, extra))
        else:
            child = rng.choice(CHILDREN)
            cond_field = rng.choice(DATA)
            stmts.append(
                f"if (this->{cond_field} > {rng.randint(3, 7)}) {{ "
                f"delete this->{child}; this->{child} = new Leaf(); "
                f"this->{child}->d0 = {rng.randint(0, 9)}; }}"
            )
    return stmts


def random_program_source(rng: random.Random) -> str:
    """A random valid Grafter program over the 4-type hierarchy, with
    the hazard classes in the statement mix."""
    lines = ["int G0;", "int G1;"]
    lines.append("_abstract_ _tree_ class N {")
    for child in CHILDREN:
        lines.append(f"    _child_ N* {child};")
    for data in DATA:
        lines.append(f"    int {data} = 0;")
    for method in METHODS:
        lines.append(
            f"    _traversal_ virtual void {method}(int p0) {{}}"
        )
    lines.append("};")
    for type_name in ("A", "B"):
        lines.append(f"_tree_ class {type_name} : public N {{")
        extra = f"x{type_name}"
        lines.append(f"    int {extra} = 0;")
        for method in METHODS:
            if rng.random() < 0.85:
                body = _random_body(rng, extra)
                lines.append(
                    f"    _traversal_ void {method}(int p0) {{"
                )
                lines.extend(f"        {stmt}" for stmt in body)
                lines.append("    }")
        lines.append("};")
    lines.append("_tree_ class Leaf : public N { };")
    lines.append("int main() {")
    lines.append("    N* root = ...;")
    for _ in range(rng.randint(2, 3)):
        method = rng.choice(METHODS)
        lines.append(f"    root->{method}({rng.randint(0, 5)});")
    lines.append("}")
    return "\n".join(lines)


def random_tree_dict(
    rng: random.Random, max_depth: int = 4
) -> dict:
    """A random full tree as a snapshot-style dict: every child slot of
    the inner types filled, ``Leaf`` terminating every path (its
    inherited traversals are no-ops, so its null children are never
    dereferenced)."""

    def build(depth: int) -> dict:
        if depth >= max_depth:
            type_name = "Leaf"
        else:
            type_name = rng.choice(["A", "B", "A", "Leaf"])
        node: dict = {"__type__": type_name}
        for data in DATA:
            node[data] = rng.randint(0, 8)
        if type_name in ("A", "B"):
            node[f"x{type_name}"] = rng.randint(0, 8)
        for child in CHILDREN:
            node[child] = (
                build(depth + 1) if type_name != "Leaf" else None
            )
        return node

    return build(0)


def build_tree_from_dict(program, heap: Heap, spec: dict) -> Node:
    """Realize a snapshot-style dict as a ``Node`` tree (the replay
    half of :func:`random_tree_dict`; module-level so it pickles)."""
    type_name = spec["__type__"]
    overrides = {}
    children = []
    for name, field in program.fields_of(type_name).items():
        if name not in spec:
            continue
        value = spec[name]
        if field.is_child:
            if value is not None:
                children.append((name, value))
        else:
            if isinstance(value, (list, tuple)):
                raise RuntimeFailure(
                    f"opaque values are not replayable: {name}"
                )
            overrides[name] = value
    node = Node.new(program, heap, type_name, **overrides)
    for name, child_spec in children:
        node.set(name, build_tree_from_dict(program, heap, child_spec))
    return node


def random_globals(rng: random.Random) -> dict:
    return {"G0": rng.randint(-2, 5), "G1": rng.randint(-2, 5)}
