"""Legacy setup shim.

The evaluation environment is offline with no ``wheel`` package, so PEP 660
editable installs are unavailable; this file lets ``pip install -e .`` fall
back to ``setup.py develop``. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
