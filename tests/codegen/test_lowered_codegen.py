"""Codegen over TreeFuser-lowered programs: conditional call blocks that
survive ungrouped must compile through the fallback dispatch path."""

import random

import pytest

from repro.codegen import compile_fused, compile_program
from repro.frontend import parse_program
from repro.fusion import fuse_program
from repro.runtime import Heap, Interpreter
from repro.treefuser import lower_program, lower_tree

from tests.generators import random_program_source, random_tree


@pytest.mark.parametrize("seed", range(6))
def test_lowered_triple_differential(seed):
    source = random_program_source(random.Random(seed))
    program = parse_program(source, name=f"lowcg{seed}")
    lowered = lower_program(program)

    def lowered_tree():
        src_heap = Heap(program)
        het_root = random_tree(program, src_heap, random.Random(seed + 99), 3)
        heap = Heap(lowered.program)
        return heap, lower_tree(program, lowered, heap, het_root)

    # interpreter (unfused, lowered)
    heap_a, root_a = lowered_tree()
    interp = Interpreter(lowered.program, heap_a)
    interp.run_entry(root_a)
    snap = root_a.snapshot(lowered.program)

    # compiled unfused
    compiled = compile_program(lowered.program)
    heap_b, root_b = lowered_tree()
    ctx_b = compiled.run_entry(heap_b, root_b)
    assert snap == root_b.snapshot(lowered.program)

    # compiled fused (guard-merged slots + possible fallback calls)
    fused = fuse_program(lowered.program)
    compiled_fused = compile_fused(fused)
    heap_c, root_c = lowered_tree()
    ctx_c = compiled_fused.run_fused(heap_c, root_c)
    assert snap == root_c.snapshot(lowered.program)
    assert interp.globals == ctx_b.globals == ctx_c.globals


def test_render_lowered_codegen_matches():
    from repro.workloads.render import (
        build_document, render_program, replicated_pages_spec,
    )
    from repro.workloads.render.schema import DEFAULT_GLOBALS

    program = render_program()
    lowered = lower_program(program)
    spec = replicated_pages_spec(2)

    def lowered_tree():
        heap = Heap(lowered.program)
        src = Heap(program)
        return heap, lower_tree(
            program, lowered, heap, build_document(program, src, spec)
        )

    heap_a, root_a = lowered_tree()
    interp = Interpreter(lowered.program, heap_a)
    interp.globals.update(DEFAULT_GLOBALS)
    interp.run_entry(root_a)
    snap = root_a.snapshot(lowered.program)

    fused = fuse_program(lowered.program)
    compiled = compile_fused(fused)
    heap_b, root_b = lowered_tree()
    compiled.run_fused(heap_b, root_b, DEFAULT_GLOBALS)
    assert snap == root_b.snapshot(lowered.program)
